"""Per-file analysis context shared by all rules.

One :class:`FileContext` is built per linted file.  It owns the parsed
tree, a parent/field map filled during the engine's single depth-first
walk (so any rule can ask "which ``if`` branch am I in?"), the module's
import alias table for resolving dotted call names, and the finding
sink.

Module identity
---------------
Rules scope themselves by *module path*: the file's path from its
top-most package directory down, in POSIX form --
``repro/core/incremental.py`` regardless of where the repository is
checked out or which directory the linter was invoked from.  Files
outside any package (fixture snippets, scripts) use their bare file
name.  Patterns match with :func:`fnmatch.fnmatch` against the module
path, the full POSIX path, and any suffix of it.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding

__all__ = ["FileContext", "module_path_of", "path_matches"]


def module_path_of(path: Path) -> str:
    """Return the package-rooted POSIX path of ``path`` (see module doc)."""
    resolved = path.resolve()
    top = resolved.parent
    package_root: Optional[Path] = None
    while (top / "__init__.py").exists():
        package_root = top
        top = top.parent
    if package_root is None:
        return resolved.name
    return resolved.relative_to(package_root.parent).as_posix()


def path_matches(pattern: str, module_path: str, posix_path: str) -> bool:
    """Return whether one fnmatch pattern hits a file's identity."""
    return (
        fnmatch(module_path, pattern)
        or fnmatch(posix_path, pattern)
        or fnmatch(posix_path, f"*/{pattern}")
    )


class FileContext:
    """Everything a rule can see while walking one file."""

    def __init__(self, path: Path, display_path: str, source: str, tree: ast.Module):
        self.path = path
        #: Path string used in findings (as the caller spelled it).
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.module_path = module_path_of(path)
        self.findings: List[Finding] = []
        #: ``node -> (parent, field)`` filled by the engine's walk before
        #: any rule sees the node, so ancestors are always available.
        self._parents: Dict[ast.AST, Tuple[ast.AST, str]] = {}
        self._imports = _import_aliases(tree)

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------
    def set_parent(self, node: ast.AST, parent: ast.AST, field: str) -> None:
        """Record one parent link (engine use only)."""
        self._parents[node] = (parent, field)

    def parent_of(self, node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        """Return ``(parent, field)`` or ``None`` at the module root."""
        return self._parents.get(node)

    def ancestry(self, node: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST, str]]:
        """Yield ``(ancestor, child_on_path, field)`` from the node up.

        ``field`` is the ancestor's field holding ``child_on_path``
        (e.g. ``"body"`` / ``"orelse"`` for an ``ast.If``).
        """
        current = node
        link = self._parents.get(current)
        while link is not None:
            parent, field = link
            yield parent, current, field
            current = parent
            link = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        """Return the nearest enclosing function/lambda node, if any."""
        for ancestor, _child, _field in self.ancestry(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return ancestor
        return None

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    @property
    def import_aliases(self) -> Dict[str, str]:
        """Local name -> dotted import target for this module (read-only
        view consumed by the whole-program symbol table)."""
        return self._imports

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a dotted name through import aliases.

        ``_dt.datetime.now`` with ``import datetime as _dt`` resolves to
        ``datetime.datetime.now``; ``randint`` with ``from random import
        randint`` resolves to ``random.randint``.  Returns ``None`` for
        expressions that are not plain name/attribute chains.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        root = self._imports.get(parts[0])
        if root is not None:
            parts[0:1] = root.split(".")
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        """Emit one finding anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
            )
        )


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import x.y as z`` -> ``{"z": "x.y"}``; ``from a.b import c`` ->
    ``{"c": "a.b.c"}``.  Relative imports are skipped (they can only
    name in-package modules, never the stdlib modules the rules ban).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases
