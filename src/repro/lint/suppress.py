"""Inline suppression comments.

Two spellings, both line-scoped:

* ``x = foo()  # reprolint: disable=REP001`` -- suppress the named
  rule(s) on this line;
* ``# reprolint: disable-next-line=REP001,REP005`` -- suppress on the
  following line (for statements too long to carry a trailing comment).

``disable=all`` suppresses every rule.  Comments are found with
:mod:`tokenize`, so ``# reprolint:`` text inside string literals never
counts as a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["ALL_RULES", "suppressed_lines"]

#: Sentinel rule id meaning "every rule" in a suppression set.
ALL_RULES = "all"

_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable(?P<next>-next-line)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Return ``{line: suppressed rule ids}`` for one file's source.

    Unparseable source yields no suppressions (the engine reports the
    syntax error separately).  Rule ids are normalized to upper case;
    the :data:`ALL_RULES` sentinel stays lower case.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if match is None:
                continue
            rules = frozenset(
                ALL_RULES if atom.strip().lower() == ALL_RULES
                else atom.strip().upper()
                for atom in match.group("rules").split(",")
                if atom.strip()
            )
            if not rules:
                continue
            line = token.start[0] + (1 if match.group("next") else 0)
            suppressions[line] = suppressions.get(line, frozenset()) | rules
    except tokenize.TokenizeError:
        return {}
    return suppressions
