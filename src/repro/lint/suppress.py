"""Inline suppression comments.

Two spellings, both line-scoped:

* ``x = foo()  # reprolint: disable=REP001`` -- suppress the named
  rule(s) on this line;
* ``# reprolint: disable-next-line=REP001,REP005`` -- suppress on the
  following line (for statements too long to carry a trailing comment).

``disable=all`` suppresses every *syntactic* rule.  Comments are found
with :mod:`tokenize`, so ``# reprolint:`` text inside string literals
never counts as a suppression.

Whole-program analysis rules (:data:`REASON_REQUIRED_RULES`, REP008+)
hold findings that are expensive to re-derive by eye -- a lock-state or
exception-flow fact spanning several call edges -- so suppressing one
requires a recorded justification::

    self._flush_locked()  # reprolint: disable=REP008 -- caller holds
                          # the shard registry lock via attach()

A *bare* suppression of an analysis rule (no ``-- reason`` tail) does
not suppress anything; the engine turns it into a finding of its own.
``disable=all`` never covers analysis rules either -- each one must be
named, with a reason.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

__all__ = [
    "ALL_RULES",
    "REASON_REQUIRED_RULES",
    "Suppression",
    "suppressed_lines",
    "suppression_details",
]

#: Sentinel rule id meaning "every syntactic rule" in a suppression set.
ALL_RULES = "all"

#: Analysis rules whose suppressions must carry a ``-- reason`` tail and
#: are never covered by ``disable=all``.
REASON_REQUIRED_RULES = frozenset({"REP008", "REP009", "REP010", "REP011"})

_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable(?P<next>-next-line)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>\S.*))?$"
)


class Suppression:
    """One rule suppressed on one line, with its optional reason."""

    __slots__ = ("rule_id", "reason", "comment_line")

    def __init__(
        self, rule_id: str, reason: Optional[str], comment_line: int
    ):
        self.rule_id = rule_id
        #: Justification text after ``--`` (``None`` on bare comments).
        self.reason = reason
        #: Line carrying the comment itself (differs from the suppressed
        #: line for the ``disable-next-line`` spelling).
        self.comment_line = comment_line


def suppression_details(source: str) -> Dict[int, Dict[str, Suppression]]:
    """Return ``{suppressed line: {rule id: Suppression}}`` for a file.

    Unparseable source yields no suppressions (the engine reports the
    syntax error separately).  Rule ids are normalized to upper case;
    the :data:`ALL_RULES` sentinel stays lower case.
    """
    out: Dict[int, Dict[str, Suppression]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if match is None:
                continue
            reason = match.group("reason")
            rules = {
                ALL_RULES if atom.strip().lower() == ALL_RULES
                else atom.strip().upper()
                for atom in match.group("rules").split(",")
                if atom.strip()
            }
            if not rules:
                continue
            line = token.start[0] + (1 if match.group("next") else 0)
            per_line = out.setdefault(line, {})
            for rule_id in rules:
                per_line[rule_id] = Suppression(
                    rule_id, reason, token.start[0]
                )
    except tokenize.TokenizeError:
        return {}
    return out


def suppressed_lines(source: str) -> Dict[int, FrozenSet[str]]:
    """Return ``{line: suppressed rule ids}`` (reason-blind view).

    Kept for callers that only need the classic line/rule sets; the
    engine itself uses :func:`suppression_details` so it can enforce
    the reason requirement of analysis rules.
    """
    return {
        line: frozenset(per_line)
        for line, per_line in suppression_details(source).items()
    }
