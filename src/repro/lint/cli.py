"""Command-line front end for :mod:`repro.lint`.

Reached as ``repro lint ...`` (a subcommand of the main CLI) or via
``scripts/run_lint.py``.  Exit codes: 0 clean, 1 findings, 2 usage or
parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence, TextIO

from repro.errors import LintError
from repro.lint.config import LintConfig, find_pyproject
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, get_rule
from repro.lint.report import render_json, render_sarif, render_text

__all__ = ["add_lint_arguments", "main", "run"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with the main CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format (default: text); sarif targets GitHub "
             "code scanning",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="pyproject.toml to read [tool.reprolint] from "
             "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--call-graph-out", default=None, metavar="JSON",
        help="write the deterministic call-graph dump of the analysis "
             "pass to this file (debug aid)",
    )
    parser.add_argument(
        "--call-graph-cache", default=None, metavar="PICKLE",
        help="pickle cache for the call graph, keyed on a content hash "
             "of the linted tree (scripts/run_lint.py sets this)",
    )


def _list_rules(stream: TextIO) -> int:
    for rule in all_rules():
        stream.write(f"{rule.rule_id}  {rule.title}\n")
        stream.write(f"        {rule.rationale}\n")
        if rule.default_scope:
            stream.write(f"        scope: {', '.join(rule.default_scope)}\n")
        if rule.default_allow:
            stream.write(f"        allow: {', '.join(rule.default_allow)}\n")
    return 0


def run(args: argparse.Namespace, stream: Optional[TextIO] = None) -> int:
    """Execute a parsed lint invocation; return the exit code."""
    out = stream if stream is not None else sys.stdout
    if args.list_rules:
        return _list_rules(out)
    try:
        paths = [Path(raw) for raw in args.paths]
        if args.config is not None:
            config = LintConfig.from_pyproject(Path(args.config))
        else:
            anchor = paths[0] if paths else Path.cwd()
            pyproject = find_pyproject(anchor if anchor.exists() else Path.cwd())
            config = (
                LintConfig.from_pyproject(pyproject)
                if pyproject is not None
                else LintConfig()
            )
        rules = None
        if args.select:
            rules = [
                get_rule(rule_id.strip().upper())
                for rule_id in args.select.split(",")
                if rule_id.strip()
            ]
            if not rules:
                raise LintError("--select named no rules")
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    # getattr defaults keep hand-built Namespace objects (tests, embedders
    # predating these options) working.
    graph_out = getattr(args, "call_graph_out", None)
    graph_cache = getattr(args, "call_graph_cache", None)
    result = lint_paths(
        paths,
        config,
        rules,
        cache_path=Path(graph_cache) if graph_cache else None,
        call_graph_out=Path(graph_out) if graph_out else None,
    )
    if args.format == "json":
        out.write(render_json(result))
    elif args.format == "sarif":
        out.write(render_sarif(result))
    else:
        out.write(render_text(result) + "\n")
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli`` / scripts)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the validation stack.",
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
