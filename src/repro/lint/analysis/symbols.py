"""Project-wide symbol table: modules, classes, functions, methods.

Built once per lint run from the already-parsed
:class:`~repro.lint.context.FileContext` objects, so indexing adds no
second parse.  Identity is the *dotted module path* derived from the
file's package-rooted module path (``repro/net/server.py`` ->
``repro.net.server``; an out-of-package file keeps its bare stem), which
makes resolution independent of checkout location -- the same property
the per-file rules rely on for scoping.

Method resolution walks the project-defined base-class chain in
definition order (a depth-first approximation of the MRO that is exact
for the single-inheritance hierarchies this repository uses).  Bases
that resolve to nothing in the project (stdlib/third-party classes)
contribute no methods.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import FileContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "SymbolTable",
    "dotted_module_name",
]


def dotted_module_name(module_path: str) -> str:
    """Map a module path to its dotted name (see module docstring)."""
    trimmed = module_path[:-3] if module_path.endswith(".py") else module_path
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    #: Fully dotted name, e.g. ``repro.net.server.AdmissionServer.flush``.
    qualname: str
    #: Dotted module the definition lives in.
    module: str
    #: Bare definition name (``flush``).
    name: str
    #: Owning class qualname for methods, ``None`` for plain functions.
    owner: Optional[str]
    node: ast.AST
    is_async: bool
    #: Display path of the defining file (as given on the command line).
    path: str
    lineno: int


@dataclass
class ClassInfo:
    """One class definition with its directly defined methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Base-class names resolved through the module's import aliases
    #: (dotted strings; may or may not name a project class).
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One linted file as a module: identity, aliases, members."""

    #: Dotted module name (``repro.net.server``).
    name: str
    #: Display path used in findings.
    path: str
    #: Local name -> dotted target, from the module's import statements.
    aliases: Dict[str, str]
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


class SymbolTable:
    """Index of every module/class/function in one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Every function/method by qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Every class by qualified name.
        self.classes: Dict[str, ClassInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: List[FileContext]) -> "SymbolTable":
        """Index the given file contexts (sorted by display path)."""
        table = cls()
        for ctx in sorted(contexts, key=lambda c: c.display_path):
            table._index_module(ctx)
        return table

    def _index_module(self, ctx: FileContext) -> None:
        module_name = dotted_module_name(ctx.module_path)
        module = ModuleInfo(
            name=module_name,
            path=ctx.display_path,
            aliases=dict(ctx.import_aliases),
        )
        # Last definition wins on duplicate names, matching runtime
        # rebinding semantics.
        self.modules[module_name] = module
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function(module, node, owner=None, path=ctx.display_path)
                module.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node, ctx)

    def _index_class(
        self, module: ModuleInfo, node: ast.ClassDef, ctx: FileContext
    ) -> None:
        qualname = f"{module.name}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            resolved = ctx.qualified_name(base)
            if resolved is not None:
                # A bare base name qualifies against this module only if
                # the module actually defines it (classes must precede
                # their subclasses at runtime); otherwise it is a builtin
                # like Exception and stays bare.
                if (
                    "." not in resolved
                    and resolved not in module.aliases
                    and resolved in module.classes
                ):
                    resolved = f"{module.name}.{resolved}"
                bases.append(resolved)
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            node=node,
            bases=tuple(bases),
        )
        module.classes[node.name] = info
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._function(
                    module, stmt, owner=qualname, path=ctx.display_path
                )
                info.methods[stmt.name] = method

    def _function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        owner: Optional[str],
        path: str,
    ) -> FunctionInfo:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        prefix = owner if owner is not None else module.name
        info = FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            module=module.name,
            name=node.name,
            owner=owner,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            path=path,
            lineno=node.lineno,
        )
        self.functions[info.qualname] = info
        return info

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_function(self, dotted: str) -> Optional[FunctionInfo]:
        """Resolve a dotted name to a project function, if confident.

        Accepts ``module.func``, ``module.Class.method`` (resolved
        through the project class hierarchy), and in-module shorthand
        already expanded by the caller.  Returns ``None`` otherwise.
        """
        direct = self.functions.get(dotted)
        if direct is not None:
            return direct
        # module-prefix + Class.method, with inherited-method lookup.
        head, _, member = dotted.rpartition(".")
        if not head:
            return None
        owner = self.classes.get(head)
        if owner is not None:
            return self.resolve_method(owner, member)
        return None

    def resolve_method(
        self, owner: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Find ``name`` on ``owner`` or its project-defined bases."""
        for cls_info in self.class_chain(owner):
            method = cls_info.methods.get(name)
            if method is not None:
                return method
        return None

    def class_chain(self, owner: ClassInfo) -> Iterator[ClassInfo]:
        """Yield ``owner`` then its project bases, depth-first."""
        seen: Set[str] = set()
        stack = [owner.qualname]
        while stack:
            qualname = stack.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            cls_info = self.classes.get(qualname)
            if cls_info is None:
                continue
            yield cls_info
            stack.extend(cls_info.bases)

    def class_of(self, node: ast.ClassDef, module: str) -> Optional[ClassInfo]:
        """Return the indexed info of a class node seen during a walk."""
        return self.classes.get(f"{module}.{node.name}")
