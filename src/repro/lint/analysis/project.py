"""The :class:`Project` façade handed to whole-program analysis rules.

Built once per lint run from every parsed file context, it owns the
symbol table, the call graph (optionally revived from a pickle cache
keyed on a content hash of the linted tree), and the lazily constructed
escape analysis.  Analysis rules report through the same per-file
:class:`~repro.lint.context.FileContext` sinks the syntactic rules use,
so sorting and suppression handling stay in one place in the engine.

Cache notes: only the :class:`~repro.lint.analysis.callgraph.CallGraph`
is cached -- it is pure data.  The symbol table holds live AST nodes and
is rebuilt each run (a single pass over already-parsed trees).  The
cache key is the SHA-256 of every ``(display path, source bytes)`` pair
in display-path order, so any edit, rename, addition, or removal misses.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lint.analysis.callgraph import (
    GRAPH_VERSION,
    CallGraph,
    build_call_graph,
)
from repro.lint.analysis.exceptions import EscapeAnalysis
from repro.lint.analysis.symbols import FunctionInfo, SymbolTable
from repro.lint.config import LintConfig
from repro.lint.context import FileContext
from repro.lint.registry import Rule

__all__ = ["Project", "tree_digest"]


def tree_digest(contexts: List[FileContext]) -> str:
    """Return the content hash identifying one linted source tree."""
    digest = hashlib.sha256()
    for ctx in sorted(contexts, key=lambda c: c.display_path):
        digest.update(ctx.display_path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(ctx.source.encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


def _load_cached_graph(cache_path: Path, digest: str) -> Optional[CallGraph]:
    """Revive a cached call graph if it matches version and digest."""
    try:
        with open(cache_path, "rb") as stream:
            payload = pickle.load(stream)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != GRAPH_VERSION:
        return None
    if payload.get("digest") != digest:
        return None
    graph = payload.get("graph")
    return graph if isinstance(graph, CallGraph) else None


def _store_cached_graph(
    cache_path: Path, digest: str, graph: CallGraph
) -> None:
    """Best-effort write of the pickle cache (failures are silent --
    the cache is an optimization, never a correctness input)."""
    payload = {"version": GRAPH_VERSION, "digest": digest, "graph": graph}
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = cache_path.with_name(cache_path.name + ".tmp")
        with open(tmp_path, "wb") as stream:
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
        tmp_path.replace(cache_path)
    except OSError:
        return


class Project:
    """Whole-program view of one lint run (see module docstring)."""

    def __init__(
        self,
        contexts: List[FileContext],
        config: LintConfig,
        cache_path: Optional[Path] = None,
    ):
        self.config = config
        #: Every parsed file, keyed by display path.
        self.contexts: Dict[str, FileContext] = {
            ctx.display_path: ctx for ctx in contexts
        }
        ordered = [self.contexts[key] for key in sorted(self.contexts)]
        self.table: SymbolTable = SymbolTable.build(ordered)
        self.digest: str = tree_digest(ordered)
        self.graph_from_cache: bool = False
        graph: Optional[CallGraph] = None
        if cache_path is not None:
            graph = _load_cached_graph(cache_path, self.digest)
            self.graph_from_cache = graph is not None
        if graph is None:
            graph = build_call_graph(self.table)
            if cache_path is not None:
                _store_cached_graph(cache_path, self.digest, graph)
        self.graph: CallGraph = graph
        self._escapes: Optional[EscapeAnalysis] = None

    # ------------------------------------------------------------------
    # Derived analyses
    # ------------------------------------------------------------------
    @property
    def escapes(self) -> EscapeAnalysis:
        """The (lazily built) escaping-exception analysis."""
        if self._escapes is None:
            self._escapes = EscapeAnalysis(self.table, self.graph)
        return self._escapes

    # ------------------------------------------------------------------
    # Scoping and reporting helpers
    # ------------------------------------------------------------------
    def in_scope(self, rule: Type[Rule], ctx: FileContext) -> bool:
        """Return whether one rule applies to one file under the active
        configuration (scope/allow, same semantics as syntactic rules)."""
        return self.config.rule_applies(
            rule, ctx.module_path, ctx.path.as_posix()
        )

    def context_of(self, fn: FunctionInfo) -> Optional[FileContext]:
        """Return the file context a function was indexed from."""
        return self.contexts.get(fn.path)

    def functions_in_scope(
        self, rule: Type[Rule]
    ) -> Iterator[Tuple[FunctionInfo, FileContext]]:
        """Yield ``(function, context)`` for every indexed function whose
        defining file is in the rule's scope, in qualname order."""
        for qualname in sorted(self.table.functions):
            fn = self.table.functions[qualname]
            ctx = self.contexts.get(fn.path)
            if ctx is not None and self.in_scope(rule, ctx):
                yield fn, ctx
