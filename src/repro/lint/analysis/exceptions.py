"""Raised-exception-set propagation across project call edges.

:class:`EscapeAnalysis` computes, per project function, the set of
exception types (dotted names) that may *escape* it: explicit ``raise``
statements plus everything escaping confidently resolved callees, minus
whatever enclosing ``try``/``except`` handlers catch.  Catching honors
subsumption: ``except ServiceError`` catches ``ServiceOverloadedError``
through the project class hierarchy, ``except Exception`` catches every
Exception-derived type, and builtin subsumption is answered from a
bundled parent table (``ConnectionResetError`` -> ``ConnectionError``
-> ``OSError`` -> ``Exception``).

Soundness caveats (deliberate, documented in DESIGN.md):

* Calls that do not resolve to a project function contribute nothing --
  stdlib raisers (``writer.drain`` raising ``ConnectionError``) are
  invisible unless the caller re-raises them explicitly.
* ``assert`` statements are ignored (they encode invariants and vanish
  under ``-O``).
* Nested function/lambda bodies are skipped -- they raise at their own
  (locally dispatched, hence unresolved) call sites.
* A bare ``raise`` outside an ``except`` block contributes nothing
  (it is a runtime error anyway); inside one it re-raises the types the
  handler could have caught.

The analysis is cycle-safe (recursion through the call graph bottoms
out on an in-progress marker) and memoized per function.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.analysis.callgraph import CallGraph, CallSite
from repro.lint.analysis.symbols import FunctionInfo, SymbolTable

__all__ = ["EscapeAnalysis", "is_exception_subtype"]

#: Builtin exception -> direct parent (enough of the stdlib hierarchy to
#: answer the subsumption questions wire/server code actually poses).
_BUILTIN_BASES: Dict[str, str] = {
    "ArithmeticError": "Exception",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BrokenPipeError": "ConnectionError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionError": "OSError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "EOFError": "Exception",
    "Exception": "BaseException",
    "FileNotFoundError": "OSError",
    "GeneratorExit": "BaseException",
    "IOError": "OSError",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "KeyboardInterrupt": "BaseException",
    "LookupError": "Exception",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "OverflowError": "ArithmeticError",
    "PermissionError": "OSError",
    "RuntimeError": "Exception",
    "StopAsyncIteration": "Exception",
    "StopIteration": "Exception",
    "SystemExit": "BaseException",
    "TimeoutError": "OSError",
    "TypeError": "Exception",
    "UnicodeDecodeError": "ValueError",
    "ValueError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "asyncio.CancelledError": "BaseException",
    "asyncio.IncompleteReadError": "EOFError",
    "asyncio.TimeoutError": "TimeoutError",
}


def _base_chain(name: str, table: SymbolTable) -> List[str]:
    """Return ``name`` followed by its ancestors, project-first."""
    chain: List[str] = []
    frontier = [name]
    seen: Set[str] = set()
    while frontier:
        current = frontier.pop(0)
        if current in seen:
            continue
        seen.add(current)
        chain.append(current)
        cls_info = table.classes.get(current)
        if cls_info is not None:
            frontier.extend(cls_info.bases)
        elif current in _BUILTIN_BASES:
            frontier.append(_BUILTIN_BASES[current])
        elif "." not in current and current != "BaseException":
            # Unknown bare name: assume a plain Exception subclass --
            # the conservative direction for "does anything catch it".
            frontier.append("Exception")
    return chain


def is_exception_subtype(name: str, ancestor: str, table: SymbolTable) -> bool:
    """Return whether exception ``name`` is ``ancestor`` or derives
    from it (project hierarchy + builtin parent table)."""
    return ancestor in _base_chain(name, table)


class EscapeAnalysis:
    """Per-function escaping-exception sets over one project."""

    def __init__(self, table: SymbolTable, graph: CallGraph):
        self._table = table
        self._graph = graph
        self._memo: Dict[str, FrozenSet[str]] = {}
        self._active: Set[str] = set()
        #: (function qualname) -> {(line, col): CallSite}
        self._site_index: Dict[str, Dict[Tuple[int, int], CallSite]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def escaping(self, qualname: str) -> FrozenSet[str]:
        """Return the exception types that may escape ``qualname``."""
        cached = self._memo.get(qualname)
        if cached is not None:
            return cached
        if qualname in self._active:
            return frozenset()  # cycle: the outer activation owns it
        fn = self._table.functions.get(qualname)
        if fn is None:
            return frozenset()
        self._active.add(qualname)
        try:
            assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            result = frozenset(
                self._stmts(fn, fn.node.body, reraise=(), handler_var=None)
            )
        finally:
            self._active.discard(qualname)
        self._memo[qualname] = result
        return result

    def catches(self, handler_type: str, exc: str) -> bool:
        """Return whether one handler type name catches one exception."""
        return is_exception_subtype(exc, handler_type, self._table)

    # ------------------------------------------------------------------
    # Statement walk
    # ------------------------------------------------------------------
    def _stmts(
        self,
        fn: FunctionInfo,
        stmts: Sequence[ast.stmt],
        reraise: Tuple[str, ...],
        handler_var: Optional[str],
    ) -> Set[str]:
        out: Set[str] = set()
        for stmt in stmts:
            out |= self._stmt(fn, stmt, reraise, handler_var)
        return out

    def _stmt(
        self,
        fn: FunctionInfo,
        node: ast.stmt,
        reraise: Tuple[str, ...],
        handler_var: Optional[str],
    ) -> Set[str]:
        if isinstance(node, ast.Raise):
            return self._raise(fn, node, reraise, handler_var)
        if isinstance(node, ast.Try):
            return self._try(fn, node, reraise, handler_var)
        out: Set[str]
        if isinstance(node, (ast.If, ast.While)):
            out = self._expr_calls(fn, node.test)
            out |= self._stmts(fn, node.body, reraise, handler_var)
            out |= self._stmts(fn, node.orelse, reraise, handler_var)
            return out
        if isinstance(node, (ast.For, ast.AsyncFor)):
            out = self._expr_calls(fn, node.iter)
            out |= self._stmts(fn, node.body, reraise, handler_var)
            out |= self._stmts(fn, node.orelse, reraise, handler_var)
            return out
        if isinstance(node, (ast.With, ast.AsyncWith)):
            out = set()
            for item in node.items:
                out |= self._expr_calls(fn, item.context_expr)
            out |= self._stmts(fn, node.body, reraise, handler_var)
            return out
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return set()  # nested definitions raise at their call sites
        if isinstance(node, ast.Assert):
            return set()  # invariants, not failure paths (see docstring)
        # Leaf statements: every call in the expression tree may raise.
        return self._expr_calls(fn, node)

    def _raise(
        self,
        fn: FunctionInfo,
        node: ast.Raise,
        reraise: Tuple[str, ...],
        handler_var: Optional[str],
    ) -> Set[str]:
        exc = node.exc
        if exc is None:
            return set(reraise)
        out = self._expr_calls(fn, exc)  # the constructor itself may raise
        spelled = self._spell(fn, exc)
        if spelled is not None:
            out.add(spelled)
            return out
        if (
            isinstance(exc, ast.Name)
            and handler_var is not None
            and exc.id == handler_var
        ):
            return out | set(reraise)
        out.add("Exception")  # dynamic raise: conservatively catchable
        return out

    def _try(
        self,
        fn: FunctionInfo,
        node: ast.Try,
        reraise: Tuple[str, ...],
        handler_var: Optional[str],
    ) -> Set[str]:
        remaining = self._stmts(fn, node.body, reraise, handler_var)
        out: Set[str] = set()
        for handler in node.handlers:
            types = self._handler_types(fn, handler)
            if types is None:  # bare except: catches everything
                caught = set(remaining)
                declared: Tuple[str, ...] = ("Exception",)
            else:
                caught = {
                    exc
                    for exc in remaining
                    if any(self.catches(t, exc) for t in types)
                }
                declared = tuple(types)
            remaining -= caught
            handler_reraise = tuple(sorted(caught)) if caught else declared
            out |= self._stmts(
                fn, handler.body, handler_reraise, handler.name
            )
        out |= self._stmts(fn, node.orelse, reraise, handler_var)
        out |= self._stmts(fn, node.finalbody, reraise, handler_var)
        return out | remaining

    def _handler_types(
        self, fn: FunctionInfo, handler: ast.ExceptHandler
    ) -> Optional[List[str]]:
        """Spell a handler's caught types; ``None`` means bare except."""
        if handler.type is None:
            return None
        nodes = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        types: List[str] = []
        for type_node in nodes:
            spelled = self._spell(fn, type_node)
            types.append(spelled if spelled is not None else "BaseException")
        return types

    # ------------------------------------------------------------------
    # Expression helpers
    # ------------------------------------------------------------------
    def _expr_calls(self, fn: FunctionInfo, node: ast.AST) -> Set[str]:
        """Union the escape sets of resolved calls inside an expression
        (or leaf statement), skipping nested function/lambda bodies."""
        sites = self._sites_of(fn)
        out: Set[str] = set()
        stack: List[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(current, ast.Call):
                site = sites.get((current.lineno, current.col_offset))
                if site is not None and site.target is not None:
                    out |= self.escaping(site.target)
            stack.extend(ast.iter_child_nodes(current))
        return out

    def _sites_of(self, fn: FunctionInfo) -> Dict[Tuple[int, int], CallSite]:
        index = self._site_index.get(fn.qualname)
        if index is None:
            index = {
                (site.line, site.col): site
                for site in self._graph.callees(fn.qualname)
            }
            self._site_index[fn.qualname] = index
        return index

    def _spell(self, fn: FunctionInfo, node: ast.AST) -> Optional[str]:
        """Spell an exception expression as a dotted type name.

        ``raise ServiceError(...)`` and ``raise ServiceError`` both
        spell to the (import-resolved) class name; anything that is not
        a name/attribute chain (or a call on one) returns ``None``.
        """
        target = node.func if isinstance(node, ast.Call) else node
        parts: List[str] = []
        current = target
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        module = self._table.modules.get(fn.module)
        if module is None:
            return ".".join(parts)
        root = module.aliases.get(parts[0])
        if root is not None:
            parts = root.split(".") + parts[1:]
        elif parts[0] in module.classes:
            parts = module.name.split(".") + parts
        return ".".join(parts)
    # reprolint note: handler-bound variables that are re-raised under a
    # different name ("err = exc; raise err") degrade to "Exception".
