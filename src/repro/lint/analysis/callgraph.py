"""Import-resolved call graph over the project symbol table.

One :class:`CallSite` is recorded per ``ast.Call`` inside every indexed
function body (nested helpers and lambdas attribute their calls to the
enclosing indexed function).  Each site carries:

``name``
    The dotted spelling of the callee after import-alias expansion
    (``protocol.encode_frame`` -> ``repro.net.protocol.encode_frame``,
    ``self.service.drain`` stays ``self.service.drain``) -- what
    pattern-based checks (entropy bans, blocking-call matchers) match
    against.  ``None`` when the callee is not a name/attribute chain.
``target``
    The qualified name of the *project* function the call confidently
    resolves to, or ``None``.  Confident means: a plain/module-qualified
    name indexing a project function, a project class constructor
    (edges to ``Class.__init__``), or a ``self.``/``cls.`` method found
    on the enclosing class or its project-defined bases.  Calls on
    arbitrary object attributes stay unresolved on purpose -- the
    analyses stay silent rather than guess (see package docstring).
``in_executor``
    Whether the site sits syntactically inside the arguments of an
    executor dispatch (``loop.run_in_executor`` / ``asyncio.to_thread``)
    -- the sanctioned blocking-call escape hatch REP009 honors.

The graph is pure data (no AST references), picklable for the
content-hash cache, and renders to deterministic JSON for the CLI's
``--call-graph-out`` debug dump.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

__all__ = ["CallGraph", "CallSite", "build_call_graph"]

#: Dump/pickle schema version (bump on any shape change; the cache
#: discards mismatching payloads).
GRAPH_VERSION = 1

#: Callee spellings that dispatch their argument to a worker thread.
_EXECUTOR_SUFFIXES = ("run_in_executor", "to_thread")


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one project function."""

    line: int
    col: int
    name: Optional[str]
    target: Optional[str]
    in_executor: bool

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON payload of this site."""
        return {
            "line": self.line,
            "col": self.col,
            "name": self.name,
            "target": self.target,
            "in_executor": self.in_executor,
        }


@dataclass(frozen=True)
class _FunctionMeta:
    """Picklable per-function metadata mirrored from the symbol table."""

    path: str
    lineno: int
    is_async: bool


class CallGraph:
    """Per-function call sites plus just enough function metadata to
    answer reachability queries without the (unpicklable) ASTs."""

    def __init__(self) -> None:
        self.sites: Dict[str, Tuple[CallSite, ...]] = {}
        self.meta: Dict[str, _FunctionMeta] = {}
        self.version: int = GRAPH_VERSION

    def callees(self, qualname: str) -> Tuple[CallSite, ...]:
        """Return the call sites inside one function (source order)."""
        return self.sites.get(qualname, ())

    def to_payload(self) -> Dict[str, object]:
        """Return the deterministic JSON-able dump of the whole graph."""
        return {
            "version": self.version,
            "functions": {
                qualname: {
                    "path": meta.path,
                    "line": meta.lineno,
                    "async": meta.is_async,
                }
                for qualname, meta in sorted(self.meta.items())
            },
            "calls": {
                qualname: [site.to_dict() for site in sites]
                for qualname, sites in sorted(self.sites.items())
                if sites
            },
        }


def _dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """Return the ``a.b.c`` parts of a name/attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def _spell_callee(
    parts: List[str], module: ModuleInfo
) -> str:
    """Expand the chain's root through the module's import aliases."""
    root = module.aliases.get(parts[0])
    if root is not None:
        parts = root.split(".") + parts[1:]
    elif parts[0] not in ("self", "cls") and (
        parts[0] in module.functions or parts[0] in module.classes
    ):
        # A bare in-module name qualifies against its own module.
        parts = module.name.split(".") + parts
    return ".".join(parts)


def _resolve_target(
    name: str,
    parts: List[str],
    owner: Optional[ClassInfo],
    table: SymbolTable,
) -> Optional[str]:
    """Map a spelled callee to a project function, if confident."""
    if parts[0] in ("self", "cls"):
        if owner is None or len(parts) != 2:
            return None
        method = table.resolve_method(owner, parts[1])
        return method.qualname if method is not None else None
    resolved = table.resolve_function(name)
    if resolved is not None:
        return resolved.qualname
    # Constructor call: edge to the class initializer when one exists.
    cls_info = table.classes.get(name)
    if cls_info is not None:
        init = table.resolve_method(cls_info, "__init__")
        return init.qualname if init is not None else None
    return None


def _collect_sites(
    fn: FunctionInfo,
    module: ModuleInfo,
    owner: Optional[ClassInfo],
    table: SymbolTable,
) -> Tuple[CallSite, ...]:
    sites: List[CallSite] = []

    def visit(node: ast.AST, in_executor: bool) -> None:
        if isinstance(node, ast.Call):
            parts = _dotted_chain(node.func)
            name: Optional[str] = None
            target: Optional[str] = None
            dispatches = False
            if parts is not None:
                name = _spell_callee(list(parts), module)
                target = _resolve_target(name, parts, owner, table)
                dispatches = name.rsplit(".", 1)[-1] in _EXECUTOR_SUFFIXES
            sites.append(
                CallSite(
                    line=node.lineno,
                    col=node.col_offset,
                    name=name,
                    target=target,
                    in_executor=in_executor,
                )
            )
            visit(node.func, in_executor)
            for arg in node.args:
                visit(arg, in_executor or dispatches)
            for keyword in node.keywords:
                visit(keyword.value, in_executor or dispatches)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, in_executor)

    assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for stmt in fn.node.body:
        visit(stmt, False)
    return tuple(sites)


def build_call_graph(table: SymbolTable) -> CallGraph:
    """Resolve every call site of every indexed function."""
    graph = CallGraph()
    for qualname in sorted(table.functions):
        fn = table.functions[qualname]
        module = table.modules[fn.module]
        owner = table.classes.get(fn.owner) if fn.owner is not None else None
        graph.meta[qualname] = _FunctionMeta(
            path=fn.path, lineno=fn.lineno, is_async=fn.is_async
        )
        graph.sites[qualname] = _collect_sites(fn, module, owner, table)
    return graph
