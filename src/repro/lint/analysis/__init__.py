"""Whole-program analysis layer under the :mod:`repro.lint` rules.

The file-local rules (REP001-REP007) see one AST at a time; the modules
here give the interprocedural rules (REP008+) the project-wide picture:

* :mod:`~repro.lint.analysis.symbols` -- a symbol table indexing every
  module, class, and function of the linted tree, with method resolution
  over project-defined class hierarchies;
* :mod:`~repro.lint.analysis.callgraph` -- an import-resolved call graph
  (one :class:`~repro.lint.analysis.callgraph.CallSite` per ``ast.Call``,
  carrying the resolved target where resolution is confident), with a
  deterministic JSON rendering and a content-hash-keyed pickle cache;
* :mod:`~repro.lint.analysis.exceptions` -- raised-exception-set
  propagation with try/except narrowing and class-hierarchy subsumption;
* :mod:`~repro.lint.analysis.project` -- :class:`Project`, the façade the
  engine builds once per run and hands to every analysis rule.

Soundness stance (shared by all rules built on this layer): resolution
is *confident-or-silent*.  A call that cannot be resolved through import
aliases, ``self``/``cls`` method dispatch, or a project-qualified dotted
name contributes no edge and no facts -- the analyses may miss
violations routed through dynamic dispatch, but they never invent one.
DESIGN.md "Static analysis & typing" records the caveats in detail.
"""

from repro.lint.analysis.callgraph import CallGraph, CallSite, build_call_graph
from repro.lint.analysis.project import Project
from repro.lint.analysis.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "SymbolTable",
    "build_call_graph",
]
