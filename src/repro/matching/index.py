"""Vectorized instance matching over a pre-built dimension index.

For bulk workloads (the experiments insert tens of thousands of log
records) the per-license Python loop of
:class:`~repro.matching.matcher.BruteForceMatcher` dominates.  This module
pre-extracts every pool license's constraints into numpy arrays once, then
answers each containment query with a handful of vectorized comparisons:

* interval axis: license contains query iff
  ``lows <= q.low  AND  q.high <= highs`` (two array comparisons);
* discrete axis: license's atom set is a superset of the query's iff the
  license contains *every* query atom -- evaluated by AND-ing the
  per-atom membership columns.

Both matchers return identical sets (see property tests); this one is the
default inside the workload pipeline.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Tuple

import numpy as np

from repro.errors import DimensionMismatchError
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool

__all__ = ["IndexedMatcher"]


class IndexedMatcher:
    """Instance matcher backed by per-dimension numpy indexes.

    The index is built once from the pool (O(N·M) setup); each query costs
    O(N·M) vectorized element operations with tiny constants instead of a
    Python-level loop over licenses.
    """

    def __init__(self, pool: LicensePool):
        self._pool = pool
        self._n = len(pool)
        boxes = pool.boxes()
        if not boxes:
            self._dims: List[Tuple[str, Any]] = []
            return
        self._dims = []
        dimensions = boxes[0].dimensions
        for axis in range(dimensions):
            extent = boxes[0].extent(axis)
            if isinstance(extent, Interval):
                lows = np.array([box.extent(axis).low for box in boxes])
                highs = np.array([box.extent(axis).high for box in boxes])
                self._dims.append(("interval", (lows, highs)))
            else:
                membership: Dict[Any, np.ndarray] = {}
                for position, box in enumerate(boxes):
                    for atom in box.extent(axis).atoms:  # type: ignore[union-attr]
                        column = membership.get(atom)
                        if column is None:
                            column = np.zeros(self._n, dtype=bool)
                            membership[atom] = column
                        column[position] = True
                self._dims.append(("discrete", membership))

    @property
    def pool(self) -> LicensePool:
        """Return the pool being matched against."""
        return self._pool

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def match(self, issued: UsageLicense) -> FrozenSet[int]:
        """Return the 1-based indexes of pool licenses containing ``issued``.

        Scope (content/permission) is checked against the pool once per
        query, mirroring :meth:`RedistributionLicense.can_instance_validate`.
        """
        if self._n == 0:
            return frozenset()
        first = self._pool[1]
        if not first.same_scope(issued):
            return frozenset()
        if issued.box.dimensions != len(self._dims):
            raise DimensionMismatchError(
                f"query has {issued.box.dimensions} axes, index has {len(self._dims)}"
            )
        alive = np.ones(self._n, dtype=bool)
        for axis, (kind, data) in enumerate(self._dims):
            extent = issued.box.extent(axis)
            if kind == "interval":
                if not isinstance(extent, Interval):
                    raise DimensionMismatchError(
                        f"axis {axis}: index expects an interval extent"
                    )
                lows, highs = data
                alive &= (lows <= extent.low) & (extent.high <= highs)
            else:
                if not isinstance(extent, DiscreteSet):
                    raise DimensionMismatchError(
                        f"axis {axis}: index expects a discrete extent"
                    )
                for atom in extent.atoms:
                    column = data.get(atom)
                    if column is None:
                        # No pool license allows this atom at all.
                        return frozenset()
                    alive &= column
            if not alive.any():
                return frozenset()
        return frozenset(int(i) + 1 for i in np.nonzero(alive)[0])

    def is_instance_valid(self, issued: UsageLicense) -> bool:
        """Return ``True`` if the match set is non-empty."""
        return bool(self.match(issued))
