"""Instance-based matching of issued licenses against a license pool."""

from repro.matching.audit import MatcherDisagreement, cross_check
from repro.matching.index import IndexedMatcher
from repro.matching.matcher import BruteForceMatcher
from repro.matching.sorted_index import SortedCandidateMatcher

__all__ = [
    "BruteForceMatcher",
    "IndexedMatcher",
    "MatcherDisagreement",
    "SortedCandidateMatcher",
    "cross_check",
]
