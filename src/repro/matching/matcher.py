"""Brute-force instance matching.

*Instance-based validation* (Section 3.1): for an issued license, find the
set ``S`` of redistribution licenses whose constraint hyper-rectangles fully
contain the issued license's hyper-rectangle.  An empty ``S`` means the
issued license violates instance constraints and is invalid outright
(like ``L_U^2`` in Figure 2 of the paper).

This module is the reference implementation: test every pool license
directly via box containment.  :mod:`repro.matching.index` offers a
vectorized matcher for bulk workloads; both must agree (property-tested).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool

__all__ = ["BruteForceMatcher"]


class BruteForceMatcher:
    """Match issued licenses against a pool by direct containment tests.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> scenario = example1()
    >>> matcher = BruteForceMatcher(scenario.pool)
    >>> sorted(matcher.match(scenario.usages[0]))   # L_U^1 -> {L_D^1, L_D^2}
    [1, 2]
    """

    def __init__(self, pool: LicensePool):
        self._pool = pool

    @property
    def pool(self) -> LicensePool:
        """Return the pool being matched against."""
        return self._pool

    def match(self, issued: UsageLicense) -> FrozenSet[int]:
        """Return the paper's set ``S``: 1-based indexes of all pool
        licenses that instance-validate ``issued``."""
        return self._pool.matching_indexes(issued)

    def is_instance_valid(self, issued: UsageLicense) -> bool:
        """Return ``True`` if at least one redistribution license contains
        the issued license (a necessary condition for validity)."""
        return any(
            lic.can_instance_validate(issued) for lic in self._pool
        )
