"""Cross-matcher consistency auditing.

The library ships three instance matchers that must be extensionally
identical -- :class:`~repro.matching.matcher.BruteForceMatcher` (the
reference: direct closed-interval box containment),
:class:`~repro.matching.index.IndexedMatcher` (vectorized numpy
comparisons), and
:class:`~repro.matching.sorted_index.SortedCandidateMatcher` (bisect
pruning over sorted bounds).  The risky inputs are *boundary-touching*
boxes: containment is closed (``lows <= q.low`` / ``q.high <= highs``),
so a query edge exactly on a license edge must match, and each matcher
realizes the comparison differently (Python ``<=``, numpy broadcast
``<=``, ``bisect_right``/``bisect_left`` cut points).

:func:`cross_check` runs all three on the same queries and reports every
disagreement; the randomized regression test in
``tests/matching/test_boundary_consistency.py`` drives it with grids of
exactly-touching probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool
from repro.matching.index import IndexedMatcher
from repro.matching.matcher import BruteForceMatcher
from repro.matching.sorted_index import SortedCandidateMatcher

__all__ = ["EVENT_AUDIT_MISMATCH", "MatcherDisagreement", "cross_check"]


@dataclass(frozen=True)
class MatcherDisagreement:
    """One query on which the matchers returned different sets."""

    usage_id: str
    brute_force: FrozenSet[int]
    indexed: FrozenSet[int]
    sorted_candidates: FrozenSet[int]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.usage_id}: brute-force {sorted(self.brute_force)}, "
            f"indexed {sorted(self.indexed)}, "
            f"sorted {sorted(self.sorted_candidates)}"
        )


#: Event kind journaled for each matcher disagreement (see
#: :mod:`repro.obs.events`).
EVENT_AUDIT_MISMATCH = "audit_mismatch"


def cross_check(
    pool: LicensePool, queries: Iterable[UsageLicense], events=None
) -> Tuple[int, List[MatcherDisagreement]]:
    """Run every query through all three matchers; report disagreements.

    Returns ``(queries_checked, disagreements)``; an empty disagreement
    list is the audit passing.  The brute-force matcher is the semantic
    reference, but the report keeps all three answers so a failure shows
    *which* implementation diverged.

    ``events`` (an optional :class:`repro.obs.events.EventLog`) receives
    one ``audit_mismatch`` event per disagreement, so a production audit
    sweep leaves a machine-readable trail even when nobody keeps the
    returned list.
    """
    brute = BruteForceMatcher(pool)
    indexed = IndexedMatcher(pool)
    sorted_matcher = SortedCandidateMatcher(pool)
    checked = 0
    disagreements: List[MatcherDisagreement] = []
    for usage in queries:
        checked += 1
        reference = brute.match(usage)
        vectorized = indexed.match(usage)
        pruned = sorted_matcher.match(usage)
        if not (reference == vectorized == pruned):
            disagreements.append(
                MatcherDisagreement(
                    usage.license_id, reference, vectorized, pruned
                )
            )
            if events is not None:
                events.emit(
                    EVENT_AUDIT_MISMATCH,
                    usage_id=usage.license_id,
                    brute_force=sorted(reference),
                    indexed=sorted(vectorized),
                    sorted_candidates=sorted(pruned),
                )
    return checked, disagreements
