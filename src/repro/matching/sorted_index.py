"""Candidate-pruning instance matcher over sorted per-dimension indexes.

A third matching strategy (besides brute force and the fully vectorized
numpy index): build, per constraint dimension, structures that bound the
candidate set cheaply --

* interval axes: licenses sorted by their lower bound and by their upper
  bound, so ``bisect`` counts how many satisfy each half of the
  containment test (``license.low <= q.low`` and ``q.high <= license.high``);
* discrete axes: an inverted index from atom to the licenses allowing it.

Each query picks the dimension with the *smallest* candidate estimate,
materializes only that candidate list, and verifies full containment per
candidate.  On selective dimensions this touches a handful of licenses
instead of all ``N`` -- the classic pick-the-most-selective-index plan of
a database optimizer, in miniature.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, FrozenSet, List, Tuple

from repro.errors import DimensionMismatchError
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool

__all__ = ["SortedCandidateMatcher"]


class SortedCandidateMatcher:
    """Instance matcher that prunes via the most selective dimension."""

    def __init__(self, pool: LicensePool):
        self._pool = pool
        self._n = len(pool)
        boxes = pool.boxes()
        self._dims: List[Tuple[str, Any]] = []
        if not boxes:
            return
        for axis in range(boxes[0].dimensions):
            extent = boxes[0].extent(axis)
            if isinstance(extent, Interval):
                by_low = sorted(
                    (box.extent(axis).low, index + 1)
                    for index, box in enumerate(boxes)
                )
                by_high = sorted(
                    (box.extent(axis).high, index + 1)
                    for index, box in enumerate(boxes)
                )
                lows = [low for low, _ in by_low]
                highs = [high for high, _ in by_high]
                self._dims.append(("interval", (lows, by_low, highs, by_high)))
            else:
                membership: Dict[Any, List[int]] = {}
                for index, box in enumerate(boxes, start=1):
                    for atom in box.extent(axis).atoms:  # type: ignore[union-attr]
                        membership.setdefault(atom, []).append(index)
                self._dims.append(("discrete", membership))

    @property
    def pool(self) -> LicensePool:
        """Return the pool being matched against."""
        return self._pool

    # ------------------------------------------------------------------
    # Candidate estimation
    # ------------------------------------------------------------------
    def _candidates_for_axis(self, axis: int, extent) -> "List[int] | None":
        """Return candidate license indexes for one axis, or ``None`` when
        this axis cannot prune below N (cheaper to let another axis try)."""
        kind, data = self._dims[axis]
        if kind == "interval":
            if not isinstance(extent, Interval):
                raise DimensionMismatchError(
                    f"axis {axis}: index expects an interval extent"
                )
            lows, by_low, highs, by_high = data
            # Licenses with low <= q.low are a prefix of by_low.
            low_count = bisect.bisect_right(lows, extent.low)
            # Licenses with high >= q.high are a suffix of by_high.
            high_start = bisect.bisect_left(highs, extent.high)
            high_count = self._n - high_start
            if low_count <= high_count:
                return [index for _, index in by_low[:low_count]]
            return [index for _, index in by_high[high_start:]]
        if not isinstance(extent, DiscreteSet):
            raise DimensionMismatchError(
                f"axis {axis}: index expects a discrete extent"
            )
        best: "List[int] | None" = None
        for atom in extent.atoms:
            members = data.get(atom)
            if members is None:
                return []  # no license allows this atom at all
            if best is None or len(members) < len(best):
                best = members
        return best if best is not None else []

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, issued: UsageLicense) -> FrozenSet[int]:
        """Return the 1-based indexes of pool licenses containing ``issued``."""
        if self._n == 0:
            return frozenset()
        if not self._pool[1].same_scope(issued):
            return frozenset()
        if issued.box.dimensions != len(self._dims):
            raise DimensionMismatchError(
                f"query has {issued.box.dimensions} axes, index has {len(self._dims)}"
            )
        best_candidates: "List[int] | None" = None
        for axis in range(len(self._dims)):
            candidates = self._candidates_for_axis(axis, issued.box.extent(axis))
            if candidates is not None and (
                best_candidates is None or len(candidates) < len(best_candidates)
            ):
                best_candidates = candidates
                if not best_candidates:
                    return frozenset()
        assert best_candidates is not None
        return frozenset(
            index
            for index in best_candidates
            if self._pool[index].box.contains(issued.box)
        )

    def is_instance_valid(self, issued: UsageLicense) -> bool:
        """Return ``True`` if the match set is non-empty."""
        return bool(self.match(issued))
