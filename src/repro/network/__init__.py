"""Multi-level DRM distribution networks (owner -> distributors -> consumers)."""

from repro.network.network import DistributionNetwork
from repro.network.node import DistributorNode, NodeOutcome

__all__ = ["DistributionNetwork", "DistributorNode", "NodeOutcome"]
