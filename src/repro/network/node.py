"""A distributor node in a multi-level DRM distribution network.

The paper's setting (Section 1): the owner issues redistribution licenses
to distributors; each distributor uses its *received* licenses to generate
new redistribution licenses for sub-distributors and usage licenses for
consumers.  Newly generated licenses must be validated against the
received pool -- instance constraints within range, aggregates within
capacity -- which is exactly the machinery of this library.

A :class:`DistributorNode` owns:

* its received license pool (growing as new licenses are granted),
* the issuance log the validation authority keeps for it,
* a lazily rebuilt :class:`~repro.core.validator.GroupedValidator`
  (the group structure changes when the pool changes).

Generated *redistribution* licenses consume their whole ``aggregate`` from
the parent pool's capacity (the counts they may later distribute);
generated *usage* licenses consume their ``count``.  Both are accepted iff
the log stays feasible -- checked via the group-restricted headroom query.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import LicenseError, ValidationError
from repro.core.validator import GroupedValidator
from repro.licenses.license import (
    LicenseBase,
    RedistributionLicense,
    UsageLicense,
)
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.validation.report import ValidationReport

__all__ = ["DistributorNode", "NodeOutcome"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class NodeOutcome:
    """Verdict of a node on one generated license."""

    license_id: str
    counts: int
    license_set: Tuple[int, ...]
    accepted: bool
    #: "instance" (no containing license) or "equation" (accepting would
    #: violate a validation equation) on rejection; None when accepted.
    rejection_reason: Optional[str] = None


class DistributorNode:
    """One distributor in the network (see module docstring)."""

    def __init__(self, name: str):
        if not name:
            raise LicenseError("node name must be non-empty")
        self.name = name
        self._pool = LicensePool()
        self._log = ValidationLog()
        self._matcher: Optional[IndexedMatcher] = None
        self._validator: Optional[GroupedValidator] = None
        #: Monitor of the most recent monitored serve_stream (if any).
        self._monitor = None

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def receive(self, lic: RedistributionLicense) -> int:
        """Accept a granted redistribution license into the received pool.

        Returns the license's 1-based index.  Invalidates the cached
        matcher/validator (the overlap structure may change).
        """
        index = self._pool.add(lic)
        self._matcher = None
        self._validator = None
        return index

    @property
    def pool(self) -> LicensePool:
        """Return the received license pool."""
        return self._pool

    @property
    def log(self) -> ValidationLog:
        """Return the node's issuance log (accepted licenses only)."""
        return self._log

    def _require_matcher(self) -> IndexedMatcher:
        if self._matcher is None:
            self._matcher = IndexedMatcher(self._pool)
        return self._matcher

    def validator(self) -> GroupedValidator:
        """Return (building lazily) the grouped validator for the pool."""
        if not self._pool:
            raise ValidationError(f"node {self.name!r} has received no licenses")
        if self._validator is None:
            self._validator = GroupedValidator.from_pool(self._pool)
        return self._validator

    # ------------------------------------------------------------------
    # Issuance
    # ------------------------------------------------------------------
    def _charge(self, generated: LicenseBase, counts: int) -> NodeOutcome:
        """Shared validation path for generated licenses."""
        if not self._pool:
            return NodeOutcome(generated.license_id, counts, (), False, "instance")
        matched = tuple(sorted(self._require_matcher().match(
            # Matching needs a UsageLicense-shaped probe; a generated
            # redistribution license is matched by its own box/scope.
            generated if isinstance(generated, UsageLicense)
            else UsageLicense(
                license_id=generated.license_id,
                content_id=generated.content_id,
                permission=generated.permission,
                box=generated.box,
                count=counts,
            )
        )))
        if not matched:
            return NodeOutcome(
                generated.license_id, counts, matched, False, "instance"
            )
        headroom = self.validator().headroom(self._log, matched)
        if headroom < counts:
            logger.info(
                "node %s rejected %s: %d counts > headroom %d for set %s",
                self.name,
                generated.license_id,
                counts,
                headroom,
                list(matched),
            )
            return NodeOutcome(
                generated.license_id, counts, matched, False, "equation"
            )
        self._log.record(matched, counts, generated.license_id)
        return NodeOutcome(generated.license_id, counts, matched, True)

    def issue_usage(self, usage: UsageLicense) -> NodeOutcome:
        """Validate and record a consumer usage license."""
        return self._charge(usage, usage.count)

    def issue_redistribution(self, lic: RedistributionLicense) -> NodeOutcome:
        """Validate and record a sub-distributor redistribution license.

        The full ``aggregate`` of the generated license is debited from
        this node's capacity (those counts may all be distributed
        downstream, so the parent must cover them -- the paper's aggregate
        constraint semantics for generated redistribution licenses).
        """
        return self._charge(lic, lic.aggregate)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_stream(
        self, usages, config=None, *, tracer=None, events=None, monitor=None,
        transport="local", address=None,
    ):
        """Serve a stream of usage licenses through the validation service.

        With ``transport="local"`` (the default) this builds a
        :class:`repro.service.ValidationService` over this node's
        pool, replays the node's existing log into it (so service
        decisions see everything already issued), runs the stream with
        batched group-sharded admission, and folds the accepted
        issuances back into the node's log.

        With ``transport="tcp"`` the node delegates admission to a remote
        :class:`repro.net.server.AdmissionServer` at ``address=(host,
        port)`` instead of validating locally: the stream is pipelined
        over one :class:`repro.net.client.AdmissionClient` connection and
        the *remote* verdicts are folded into this node's log (the server
        validates against its own pool and log -- the paper's validation
        authority as a network service).  The return value is then
        ``(outcomes, None)``: there is no local service whose metrics to
        hand back.  ``config``/``tracer``/``events``/``monitor`` apply to
        the local path only.

        ``tracer``/``events`` (optional
        :class:`repro.obs.trace.Tracer` /
        :class:`repro.obs.events.EventLog`) are handed to the service so
        a node-level serve leaves the same span trees and structured
        journal a standalone service would.  ``monitor`` (optional
        :class:`repro.obs.monitor.Monitor`) likewise rides along; the
        node remembers it so :meth:`health_probe` can answer from its
        latest state after the serve finishes.

        Returns ``(outcomes, service)`` -- the per-request verdicts in
        stream order plus the (closed) service, whose metrics registry
        holds the traffic accounting.

        For one-off licenses :meth:`issue_usage` stays the low-latency
        path; this is the bulk/serving path a distributor fronting heavy
        consumer traffic would run.
        """
        if transport == "tcp":
            return self._serve_stream_tcp(usages, address)
        if transport != "local":
            raise ValidationError(
                f"unknown transport {transport!r}; choose 'local' or 'tcp'"
            )
        from repro.service.service import ValidationService

        with ValidationService(
            self._pool, config, initial_log=self._log,
            tracer=tracer, events=events, monitor=monitor,
        ) as service:
            outcomes = service.process(usages)
            for record in service.log:
                self._log.append(record)
        if monitor is not None:
            self._monitor = monitor
        logger.info(
            "node %s served %d request(s): %d accepted",
            self.name,
            len(outcomes),
            sum(outcome.accepted for outcome in outcomes),
        )
        return outcomes, service

    def _serve_stream_tcp(self, usages, address):
        """Delegate a stream to a remote admission server (see above)."""
        import asyncio

        from repro.net.client import AdmissionClient

        if not address or len(address) != 2:
            raise ValidationError(
                "transport='tcp' needs address=(host, port)"
            )
        host, port = address

        async def _run():
            async with AdmissionClient(host, int(port)) as client:
                return await client.request_many(list(usages))

        outcomes = asyncio.run(_run())
        for outcome in outcomes:
            if outcome.accepted:
                self._log.record(
                    outcome.license_set, outcome.count, outcome.usage_id
                )
        logger.info(
            "node %s served %d request(s) via %s:%s: %d accepted",
            self.name,
            len(outcomes),
            host,
            port,
            sum(outcome.accepted for outcome in outcomes),
        )
        return outcomes, None

    def health_probe(self) -> dict:
        """Answer a health-probe message from the latest monitor state.

        Returns a JSON-friendly dict an operator (or
        :meth:`repro.network.network.DistributionNetwork.probe_all`) can
        aggregate across the tree::

            {"node": ..., "status": ..., "monitored": ...,
             "pool_size": ..., "log_size": ...,
             "indicators": [...], "slos": [...], "alerts": {...}}

        Nodes that have never run a monitored :meth:`serve_stream`
        answer ``status="unknown"`` with the pool/log basics only --
        probing is always safe, never an error.
        """
        probe: dict = {
            "node": self.name,
            "status": "unknown",
            "monitored": self._monitor is not None,
            "pool_size": len(self._pool),
            "log_size": len(self._log),
        }
        if self._monitor is not None:
            snapshot = self._monitor.snapshot()
            probe["status"] = snapshot["status"]
            probe["indicators"] = snapshot["indicators"]
            probe["slos"] = snapshot["slos"]
            probe["alerts"] = snapshot["alerts"]
        return probe

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit(self) -> ValidationReport:
        """Run full offline grouped validation over this node's log."""
        return self.validator().validate(self._log)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DistributorNode({self.name!r}, pool={len(self._pool)}, "
            f"log={len(self._log)})"
        )
