"""The multi-level distribution network: owner -> distributors -> consumers.

Wires :class:`~repro.network.node.DistributorNode` objects into the
owner-rooted tree of the paper's Section 1.  The owner is the licensor: it
*grants* root redistribution licenses without validation (it owns the
content).  Every downstream generation -- distributor to sub-distributor,
distributor to consumer -- is validated at the generating node before the
license is delivered.

The network also exposes a global audit that runs the offline grouped
validation at every node, which is how the rights-violation detection of
the paper would be deployed across a real distribution hierarchy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import LicenseError, ValidationError
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.network.node import DistributorNode, NodeOutcome
from repro.validation.report import ValidationReport

__all__ = ["DistributionNetwork"]

#: Reserved name for the content owner (the licensing root).
OWNER = "owner"


class DistributionNetwork:
    """An owner-rooted tree of distributor nodes.

    Examples
    --------
    >>> network = DistributionNetwork()
    >>> network.add_distributor("emea")
    >>> "emea" in network
    True
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, DistributorNode] = {}
        self._parent: Dict[str, str] = {}
        self._deliveries: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_distributor(self, name: str, parent: str = OWNER) -> None:
        """Register a distributor under ``parent`` (default: the owner)."""
        if name == OWNER:
            raise LicenseError(f"{OWNER!r} is reserved for the content owner")
        if name in self._nodes:
            raise LicenseError(f"duplicate distributor name: {name!r}")
        if parent != OWNER and parent not in self._nodes:
            raise LicenseError(f"unknown parent distributor: {parent!r}")
        self._nodes[name] = DistributorNode(name)
        self._parent[name] = parent

    def node(self, name: str) -> DistributorNode:
        """Return a distributor node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise LicenseError(f"unknown distributor: {name!r}") from None

    def parent_of(self, name: str) -> str:
        """Return the parent name (the owner for top-level distributors)."""
        self.node(name)
        return self._parent[name]

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[DistributorNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # License movement
    # ------------------------------------------------------------------
    def grant(self, to: str, lic: RedistributionLicense) -> int:
        """Owner grant: deliver a root license to a TOP-LEVEL distributor
        without validation (the owner licenses its own content).

        Returns the license's index in the receiving pool.
        """
        if self._parent.get(to) != OWNER:
            raise ValidationError(
                f"owner grants go to top-level distributors; {to!r} has "
                f"parent {self._parent.get(to)!r}"
            )
        index = self.node(to).receive(lic)
        self._deliveries.append((OWNER, to, lic.license_id))
        return index

    def redistribute(
        self, sender: str, receiver: str, lic: RedistributionLicense
    ) -> NodeOutcome:
        """Validate ``lic`` at ``sender``; deliver to ``receiver`` if valid.

        ``receiver`` must be a registered child of ``sender`` -- licenses
        flow down the distribution tree.
        """
        if self._parent.get(receiver) != sender:
            raise ValidationError(
                f"{receiver!r} is not a registered sub-distributor of {sender!r}"
            )
        outcome = self.node(sender).issue_redistribution(lic)
        if outcome.accepted:
            self.node(receiver).receive(lic)
            self._deliveries.append((sender, receiver, lic.license_id))
        return outcome

    def sell(self, seller: str, usage: UsageLicense) -> NodeOutcome:
        """Validate a consumer usage license at ``seller``."""
        return self.node(seller).issue_usage(usage)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def probe_all(self) -> Dict[str, dict]:
        """Health-probe every node (see
        :meth:`~repro.network.node.DistributorNode.health_probe`).

        Returns ``{node name: probe dict}``; nodes without a monitored
        serve history answer ``status="unknown"`` rather than failing,
        so the fleet-wide sweep always completes.
        """
        return {
            name: node.health_probe() for name, node in self._nodes.items()
        }

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit_all(self) -> Dict[str, Optional[ValidationReport]]:
        """Offline-validate every node's log; ``None`` for empty pools."""
        results: Dict[str, Optional[ValidationReport]] = {}
        for name, node in self._nodes.items():
            results[name] = node.audit() if node.pool else None
        return results

    @property
    def deliveries(self) -> Tuple[Tuple[str, str, str], ...]:
        """Return every accepted delivery as ``(from, to, license_id)``."""
        return tuple(self._deliveries)
