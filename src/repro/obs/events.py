"""Structured event log: append-only JSONL with bounded rotation.

Every operationally interesting service transition becomes one JSON
object on its own line -- the auditable request journal the OMA-style
deployments require, and the operational version of the "explainable
derivation" that formal license semantics ask of every permission
decision:

* ``admission`` -- a request was accepted (which group, how many counts);
* ``rejection`` -- a request was refused, with the machine reason code
  (``instance``/``equation``/``capacity``) *and* the human detail string;
* ``backpressure`` -- a shard queue pushed back (shard id, depth);
* ``cache_eviction`` -- the match cache dropped an entry;
* ``epoch_change`` -- the pool's group partition changed (split/merge);
* ``alert`` -- a monitor alert rule changed lifecycle state
  (``pending`` -> ``firing`` -> ``resolved``);
* ``conn_open`` / ``conn_close`` -- a wire client connected to /
  disconnected from the :class:`repro.net.server.AdmissionServer`
  (peer address, and on close the per-connection request count);
* ``drain`` -- the wire server completed a graceful drain: it stopped
  accepting, flushed every in-flight request, and is about to close its
  remaining connections (in-flight count flushed, totals served).

The log is bounded: when the active file would exceed ``max_bytes`` the
existing files rotate (``events.jsonl`` -> ``events.jsonl.1`` -> ...)
and a fresh active file is started *before* the new line is written, so
the newest events are always intact in the active file and the oldest
rotation is what gets dropped.  A small in-memory ring buffer keeps the
most recent events queryable without touching disk (and is the only
storage when no path is configured).

All mutation happens under one lock -- safe to share across the service
coordinator and executor worker threads.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.errors import ServiceError

__all__ = [
    "EVENT_ADMISSION",
    "EVENT_ALERT",
    "EVENT_BACKPRESSURE",
    "EVENT_CACHE_EVICTION",
    "EVENT_CONN_CLOSE",
    "EVENT_CONN_OPEN",
    "EVENT_DRAIN",
    "EVENT_EPOCH_CHANGE",
    "EVENT_REJECTION",
    "EventLog",
]

EVENT_ADMISSION = "admission"
EVENT_REJECTION = "rejection"
EVENT_BACKPRESSURE = "backpressure"
EVENT_CACHE_EVICTION = "cache_eviction"
EVENT_EPOCH_CHANGE = "epoch_change"
#: Alert lifecycle transition (rule, from_state, to_state, value, at)
#: appended by :class:`repro.obs.monitor.Monitor`.
EVENT_ALERT = "alert"
#: Wire connection opened (peer) -- emitted by
#: :class:`repro.net.server.AdmissionServer`.
EVENT_CONN_OPEN = "conn_open"
#: Wire connection closed (peer, requests served on it).
EVENT_CONN_CLOSE = "conn_close"
#: Wire server graceful drain completed (in-flight flushed, totals).
EVENT_DRAIN = "drain"

#: The event kinds this package emits itself (user code may add more).
KNOWN_KINDS = (
    EVENT_ADMISSION,
    EVENT_REJECTION,
    EVENT_BACKPRESSURE,
    EVENT_CACHE_EVICTION,
    EVENT_EPOCH_CHANGE,
    EVENT_ALERT,
    EVENT_CONN_OPEN,
    EVENT_CONN_CLOSE,
    EVENT_DRAIN,
)


class EventLog:
    """Append-only structured event log (see module docstring).

    Parameters
    ----------
    path:
        Active JSONL file; ``None`` keeps events in memory only.
    max_bytes:
        Rotation threshold of the active file.
    backups:
        How many rotated files to keep (``path.1`` newest ... ``path.N``
        oldest); older rotations are deleted.
    buffer_size:
        Capacity of the in-memory ring of most-recent events.

    Examples
    --------
    >>> log = EventLog()
    >>> _ = log.emit("rejection", reason="equation", seq_no=7)
    >>> log.tail()[-1]["kind"]
    'rejection'
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        max_bytes: int = 4 * 1024 * 1024,
        backups: int = 2,
        buffer_size: int = 4096,
    ):
        if max_bytes < 1:
            raise ServiceError(f"max_bytes must be >= 1, got {max_bytes}")
        if backups < 0:
            raise ServiceError(f"backups must be >= 0, got {backups}")
        if buffer_size < 1:
            raise ServiceError(f"buffer_size must be >= 1, got {buffer_size}")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self._seq = 0
        self._ring: Deque[Dict[str, object]] = deque(maxlen=buffer_size)
        self._stream = None
        self._size = 0
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8")
            self._size = os.path.getsize(path)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        """Append one event; returns the full payload (with ``seq``).

        ``seq`` is a monotone per-log counter, so event order survives
        rotation and file concatenation.
        """
        with self._lock:
            payload: Dict[str, object] = {"seq": self._seq, "kind": kind}
            self._seq += 1
            payload.update(fields)
            self._ring.append(payload)
            if self._stream is not None:
                line = json.dumps(payload, sort_keys=True) + "\n"
                encoded = len(line.encode("utf-8"))
                if self._size > 0 and self._size + encoded > self.max_bytes:
                    self._rotate_locked()
                self._stream.write(line)
                self._stream.flush()
                self._size += encoded
            return payload

    def _rotate_locked(self) -> None:
        """Shift rotations up and start a fresh active file."""
        assert self._stream is not None and self.path is not None
        self._stream.close()
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                source = f"{self.path}.{index}"
                if os.path.exists(source):
                    os.replace(source, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self._stream = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        """Flush and close the active file (in-memory ring stays)."""
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Return how many events this log has accepted."""
        return self._seq

    def tail(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """Return the most recent ``n`` events from the in-memory ring
        (all buffered events when ``n`` is omitted)."""
        with self._lock:
            events = list(self._ring)
        return events if n is None else events[-n:]

    @staticmethod
    def iter_file(
        path: str, *, include_rotated: bool = True
    ) -> Iterator[Dict[str, object]]:
        """Yield events from disk, oldest first.

        Walks rotations oldest-to-newest (``path.N`` ... ``path.1``)
        before the active file, so downstream consumers see ascending
        ``seq`` values.
        """
        files: List[str] = []
        if include_rotated:
            index = 1
            while os.path.exists(f"{path}.{index}"):
                files.append(f"{path}.{index}")
                index += 1
            files.reverse()
        files.append(path)
        for name in files:
            if not os.path.exists(name):
                continue
            with open(name, "r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ServiceError(
                            f"malformed event line in {name}: {line[:80]!r}"
                        ) from exc
