"""The one nearest-rank quantile implementation every layer shares.

Three call sites grew their own copy of "exact nearest-rank quantile
over a sample list" -- :meth:`repro.service.metrics.Histogram.quantile`,
:meth:`repro.obs.monitor.streams.MetricStreams.quantile`, and
:func:`repro.net.loadgen.nearest_rank` -- and two *different* rank
conventions were in play:

* ``METHOD_ROUND`` (the Histogram/streams convention):
  ``rank = min(n - 1, max(0, round(q * n) - 1))`` with banker's
  rounding, ``q = 0`` pinned to the minimum;
* ``METHOD_CEIL`` (the loadgen/serving-paper convention):
  ``rank = max(1, ceil(q * n)) - 1`` -- the textbook nearest-rank
  definition.

The two agree on most inputs but not all (``q = 0.5`` over five samples
indexes 1 under ``round`` -- ``round(2.5) == 2`` -- and 2 under
``ceil``), and both behaviors are pinned by committed baselines and
tests, so deduplication must preserve each caller's outputs bit for
bit.  This module therefore keeps both conventions behind one audited
implementation; the Hypothesis suite in
``tests/obs/test_quantiles.py`` pins each wrapper byte-identical to the
code it replaced.

Callers keep their own argument validation (and error types -- the
service layer raises :class:`~repro.errors.ServiceError`, the wire
layer :class:`~repro.errors.TransportError`); this module validates too
so direct users are safe, raising :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ServiceError

__all__ = [
    "METHOD_CEIL",
    "METHOD_ROUND",
    "nearest_rank",
    "nearest_rank_index",
]

#: Histogram/stream convention: banker's-rounded rank, q=0 -> minimum.
METHOD_ROUND = "round"
#: Loadgen convention: ceil rank (the textbook nearest-rank definition).
METHOD_CEIL = "ceil"

_METHODS = (METHOD_ROUND, METHOD_CEIL)


def nearest_rank_index(count: int, q: float, method: str = METHOD_ROUND) -> int:
    """Return the 0-based index of the ``q``-quantile among ``count``
    sorted samples under the named rank convention.

    ``count`` must be >= 1; ``q`` must already be inside [0, 1].
    """
    if count < 1:
        raise ServiceError(f"nearest rank needs count >= 1, got {count}")
    if method == METHOD_CEIL:
        return max(1, math.ceil(q * count)) - 1
    if method != METHOD_ROUND:
        raise ServiceError(
            f"unknown nearest-rank method {method!r}; "
            f"choose from {', '.join(_METHODS)}"
        )
    if q == 0.0:
        return 0
    return min(count - 1, max(0, round(q * count) - 1))


def nearest_rank(
    values: Sequence[float],
    q: float,
    *,
    method: str = METHOD_ROUND,
    presorted: bool = False,
) -> float:
    """Exact nearest-rank ``q``-quantile of ``values`` (0.0 when empty).

    ``presorted=True`` skips the sort for callers that maintain sorted
    samples (the Histogram's bisect-ordered window).
    """
    if not 0.0 <= q <= 1.0:
        raise ServiceError(f"quantile {q} outside [0, 1]")
    if not values:
        return 0.0
    ordered = values if presorted else sorted(values)
    return ordered[nearest_rank_index(len(ordered), q, method)]
