"""Hierarchical span tracing with deterministic ids and head sampling.

A :class:`Tracer` hands out :class:`Span` objects -- named, attributed,
monotonic-clock-timed intervals arranged in a parent/child tree.  The
design constraints come from the serving layer:

* **Determinism.** Span and trace ids are drawn from a seeded counter,
  never from wall clock or ``random``, so two runs of the same workload
  with the same seed produce structurally identical traces (the timing
  floats differ; everything else is reproducible, and tests can inject a
  fake clock to pin the files byte-for-byte).
* **Thread safety.** Id allocation and the finished-record buffer are
  lock-guarded; the *current span* used for implicit parenting lives in
  a :class:`contextvars.ContextVar`, so each thread (and each asyncio
  task) nests independently.  Work shipped to executor workers either
  re-activates the parent span explicitly (:meth:`Tracer.activate`) or
  comes back as plain timing data recorded out-of-band with
  :meth:`Tracer.record` -- the route the process executor must take,
  since a live ``Tracer`` (holding locks) is not picklable.
* **Head-based sampling.** The keep/drop decision is made once, when a
  *root* span starts, and inherited by the whole tree below it
  (:class:`SamplingConfig`).  The decision is a deterministic stride
  over the root counter -- ``rate=0.25`` keeps exactly every 4th request
  trace -- so sampled traces are reproducible too.

Unsampled (or disabled) tracing flows through :data:`NULL_SPAN`, a
falsy singleton whose methods all no-op, so instrumented call sites need
no ``if tracing:`` forests.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ServiceError

__all__ = ["NULL_SPAN", "SamplingConfig", "Span", "SpanRecord", "Tracer"]

#: The context-local span used for implicit parenting.
_CURRENT: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


@dataclass(frozen=True)
class SamplingConfig:
    """Head-based sampling policy: keep ``rate`` of all root spans.

    The decision for the ``i``-th root (0-based) is
    ``floor((i + 1) * rate) > floor(i * rate)`` -- a deterministic stride
    that keeps exactly ``round(rate * n)`` of any ``n`` consecutive roots
    with no RNG involved.  ``rate=1.0`` keeps everything, ``rate=0.0``
    disables tracing entirely.
    """

    rate: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ServiceError(f"sampling rate {self.rate} outside [0, 1]")

    def keep(self, root_index: int) -> bool:
        """Return whether the ``root_index``-th root span is sampled."""
        return math.floor((root_index + 1) * self.rate) > math.floor(
            root_index * self.rate
        )


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, ready for export.

    ``start`` is a monotonic-clock timestamp (``time.perf_counter``
    timebase by default); only differences between records of one run are
    meaningful.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Return the JSONL payload of this record."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        """Rebuild a record from its JSONL payload."""
        try:
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=str(payload["span_id"]),
                parent_id=(
                    None if payload["parent_id"] is None
                    else str(payload["parent_id"])
                ),
                name=str(payload["name"]),
                start=float(payload["start"]),       # type: ignore[arg-type]
                duration=float(payload["duration"]),  # type: ignore[arg-type]
                attrs=dict(payload.get("attrs") or {}),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed span record: {payload!r}") from exc


class _NullSpan:
    """Falsy sink for unsampled/disabled tracing; every method no-ops."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def set_attr(self, _key: str, _value: object) -> None:
        pass

    def inc_attr(self, _key: str, _amount: Union[int, float] = 1) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL_SPAN"


#: The shared do-nothing span.
NULL_SPAN = _NullSpan()


class Span:
    """One live span: a named, timed interval with attributes.

    Usable as a context manager (ends on exit) or ended explicitly with
    :meth:`end`.  Ending twice is harmless -- the second call is ignored
    -- so ``with`` blocks may also end early.
    """

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent_id", "name", "attrs",
        "start", "_ended", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        attrs: Optional[Dict[str, object]] = None,
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs: Dict[str, object] = dict(attrs or {})
        self._ended = False
        self._token = None

    def set_attr(self, key: str, value: object) -> None:
        """Set one attribute (overwrites)."""
        self.attrs[key] = value

    def inc_attr(self, key: str, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` to a numeric attribute (missing counts as 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount  # type: ignore[operator]

    def end(self) -> None:
        """Finish the span and hand the record to the tracer."""
        if self._ended:
            return
        self._ended = True
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, *_exc) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Span({self.name!r}, id={self.span_id}, trace={self.trace_id})"


class Tracer:
    """Span factory + finished-record buffer (see module docstring).

    Parameters
    ----------
    sampling:
        Head-based sampling policy applied to root spans.
    seed:
        Starting value of the span/trace id counter.  Two tracers with
        the same seed allocate the same id sequence.
    clock:
        Monotonic clock; injectable so tests can pin timings.

    Examples
    --------
    >>> tracer = Tracer(clock=iter(range(100)).__next__)
    >>> with tracer.span("request", seq=0) as root:
    ...     with tracer.span("match") as child:
    ...         child.set_attr("cache_hit", False)
    >>> [(r.name, r.parent_id is None) for r in tracer.records()]
    [('match', False), ('request', True)]
    """

    def __init__(
        self,
        sampling: Optional[SamplingConfig] = None,
        *,
        seed: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sampling = sampling or SamplingConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = int(seed)
        self._roots_started = 0
        self._roots_sampled = 0
        self._records: List[SpanRecord] = []

    # ------------------------------------------------------------------
    # Id allocation
    # ------------------------------------------------------------------
    def _allocate(self) -> int:
        with self._lock:
            value = self._next_id
            self._next_id += 1
            return value

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Union[Span, _NullSpan, None] = None,
        **attrs: object,
    ) -> Union[Span, _NullSpan]:
        """Start a span; the caller must :meth:`Span.end` it.

        With no explicit ``parent`` the context-local current span is
        used; with neither, this starts a new *root* span (and trace),
        subject to the head-sampling decision.  A ``NULL_SPAN`` parent
        propagates: the child is ``NULL_SPAN`` too.

        The parent contract is duck-typed: any object exposing
        ``trace_id``/``span_id`` works, notably a
        :class:`repro.obs.distrib.TraceContext` carried over the wire --
        the new span then joins the *remote* trace, which is how a
        server's ``request`` span nests under a client's
        ``wire_request`` span.  Remote-parented spans are never
        head-sampled away (the remote end already made that decision).
        """
        if parent is None:
            parent = _CURRENT.get()
        if parent is NULL_SPAN:
            return NULL_SPAN
        if parent is None:
            with self._lock:
                root_index = self._roots_started
                self._roots_started += 1
                keep = self.sampling.keep(root_index)
                if keep:
                    self._roots_sampled += 1
            if not keep:
                return NULL_SPAN
            trace_id = f"t{self._allocate():08d}"
            parent_id = None
        else:
            trace_id = parent.trace_id  # type: ignore[union-attr]
            parent_id = parent.span_id  # type: ignore[union-attr]
        return Span(
            self,
            trace_id,
            f"s{self._allocate():08d}",
            parent_id,
            name,
            self._clock(),
            attrs,
        )

    @contextmanager
    def span(
        self,
        name: str,
        parent: Union[Span, _NullSpan, None] = None,
        **attrs: object,
    ) -> Iterator[Union[Span, _NullSpan]]:
        """Context-manager convenience around :meth:`start_span`.

        The span becomes the context-local current span inside the
        block, so nested ``tracer.span(...)`` calls parent to it.
        """
        opened = self.start_span(name, parent, **attrs)
        if opened is NULL_SPAN:
            token = _CURRENT.set(NULL_SPAN)  # type: ignore[arg-type]
            try:
                yield NULL_SPAN
            finally:
                _CURRENT.reset(token)
            return
        with opened:  # type: ignore[union-attr]
            yield opened

    @contextmanager
    def activate(self, span: Union[Span, _NullSpan]) -> Iterator[None]:
        """Make ``span`` the current span inside the block.

        The cross-thread propagation primitive: a worker thread handed a
        request span activates it so its own ``tracer.span(...)`` calls
        attach to the right trace.
        """
        token = _CURRENT.set(span)  # type: ignore[arg-type]
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def current(self) -> Union[Span, _NullSpan, None]:
        """Return the context-local current span (``None`` outside any)."""
        return _CURRENT.get()

    def record(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        parent: Union[Span, SpanRecord, _NullSpan, None] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Optional[SpanRecord]:
        """Record an already-finished span from out-of-band timing data.

        This is how shard/executor work joins the tree: workers return
        plain picklable timing tuples, and the coordinator stitches them
        under the right parent.  Returns the new record (so callers can
        parent further records to it), or ``None`` when the parent was
        unsampled.
        """
        if parent is NULL_SPAN:
            return None
        if parent is None:
            trace_id = f"t{self._allocate():08d}"
            parent_id = None
        else:
            trace_id = parent.trace_id  # type: ignore[union-attr]
            parent_id = parent.span_id  # type: ignore[union-attr]
        finished = SpanRecord(
            trace_id=trace_id,
            span_id=f"s{self._allocate():08d}",
            parent_id=parent_id,
            name=name,
            start=start,
            duration=duration,
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self._records.append(finished)
        return finished

    def _finish(self, span: Span) -> None:
        finished = SpanRecord(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            start=span.start,
            duration=self._clock() - span.start,
            attrs=dict(span.attrs),
        )
        with self._lock:
            self._records.append(finished)

    # ------------------------------------------------------------------
    # Introspection + export
    # ------------------------------------------------------------------
    def records(self) -> Tuple[SpanRecord, ...]:
        """Return every finished span so far (finish order)."""
        with self._lock:
            return tuple(self._records)

    @property
    def roots_started(self) -> int:
        """Return how many root spans were requested (sampled or not)."""
        return self._roots_started

    @property
    def roots_sampled(self) -> int:
        """Return how many root spans passed the sampling decision."""
        return self._roots_sampled

    def clear(self) -> None:
        """Drop all finished records (id counters keep advancing)."""
        with self._lock:
            self._records.clear()

    def write_jsonl(self, path: str) -> int:
        """Write every finished span as one JSON object per line.

        Records are sorted by ``(trace_id, span_id)`` so the file is a
        deterministic function of the trace structure, not of executor
        finish order.  Returns the number of records written.
        """
        records = sorted(
            self.records(), key=lambda r: (r.trace_id, r.span_id)
        )
        with open(path, "w", encoding="utf-8") as stream:
            for finished in records:
                stream.write(
                    json.dumps(finished.to_dict(), sort_keys=True) + "\n"
                )
        return len(records)
