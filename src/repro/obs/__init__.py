"""Observability for the validation pipeline: tracing, events, exporters.

The serving layer (:mod:`repro.service`) answers *what* happened --
counters, gauges, latency quantiles.  This package answers *why* and
*where*:

* :mod:`repro.obs.trace` -- hierarchical span tracing
  (:class:`Tracer`/:class:`Span`): monotonic-clock timings, parent/child
  nesting, per-span attributes (``group_id``, ``equations_checked``,
  ``cache_hit``), deterministic span ids from a seeded counter, and
  head-based sampling so heavy traffic can keep a representative slice;
* :mod:`repro.obs.events` -- an append-only structured JSONL event log
  (admissions, rejections with reason codes, backpressure, cache
  evictions, group epoch changes) with bounded-size rotation;
* :mod:`repro.obs.export` -- renderers: the
  :class:`repro.service.metrics.MetricsRegistry` to Prometheus text
  format or JSON, finished traces to JSONL / ASCII span trees /
  top-N-slowest reports;
* :mod:`repro.obs.instrument` -- the tiny no-op-by-default
  :class:`Instrumentation` protocol the core validators accept, so
  un-instrumented runs pay (almost) nothing;
* :mod:`repro.obs.monitor` -- the consumption layer: windowed metric
  streams, derived health indicators (including the Equation-3
  efficiency-drift signal and wire in-flight saturation), SLO
  error-budget tracking, and an alert engine (static thresholds + EWMA
  anomaly detection) behind one :class:`Monitor` object a service
  accepts via ``monitor=``;
* :mod:`repro.obs.distrib` -- cross-process tracing: the
  :class:`TraceContext` carried in wire REQUEST frames, the
  :class:`ServerTiming` phase breakdown echoed in RESPONSE frames, and
  :func:`assemble`, which merges a client and a server trace journal
  into one clock-aligned span forest.

The contract with the serving layer: observability is strictly
*out-of-band*.  Verdict streams are byte-identical with tracing enabled
or disabled (pinned by ``tests/obs/test_service_tracing.py``), and the
disabled-instrumentation overhead is benchmarked in
``benchmarks/bench_obs_overhead.py``.
"""

from repro.obs.distrib import (
    AssembledTrace,
    ServerTiming,
    TraceContext,
    assemble,
    assemble_files,
)
from repro.obs.events import (
    EVENT_ADMISSION,
    EVENT_ALERT,
    EVENT_BACKPRESSURE,
    EVENT_CACHE_EVICTION,
    EVENT_EPOCH_CHANGE,
    EVENT_REJECTION,
    EventLog,
)
from repro.obs.export import (
    load_trace_jsonl,
    parse_prometheus,
    registry_to_json,
    render_prometheus,
    render_span_tree,
    summarize_events,
    top_slowest,
)
from repro.obs.instrument import (
    NOOP,
    CountingInstrumentation,
    Instrumentation,
    TracingInstrumentation,
)
from repro.obs.monitor import (
    EwmaRule,
    HealthThresholds,
    Monitor,
    MonitorConfig,
    Slo,
    ThresholdRule,
)
from repro.obs.trace import NULL_SPAN, SamplingConfig, Span, SpanRecord, Tracer

__all__ = [
    "EVENT_ADMISSION",
    "EVENT_ALERT",
    "EVENT_BACKPRESSURE",
    "EVENT_CACHE_EVICTION",
    "EVENT_EPOCH_CHANGE",
    "EVENT_REJECTION",
    "AssembledTrace",
    "CountingInstrumentation",
    "EventLog",
    "EwmaRule",
    "HealthThresholds",
    "Instrumentation",
    "Monitor",
    "MonitorConfig",
    "NOOP",
    "NULL_SPAN",
    "SamplingConfig",
    "ServerTiming",
    "Slo",
    "Span",
    "SpanRecord",
    "ThresholdRule",
    "TraceContext",
    "Tracer",
    "TracingInstrumentation",
    "assemble",
    "assemble_files",
    "load_trace_jsonl",
    "parse_prometheus",
    "registry_to_json",
    "render_prometheus",
    "render_span_tree",
    "summarize_events",
    "top_slowest",
]
