"""Monitoring: metric streams, health, SLOs, anomaly alerts.

The consumption layer over :mod:`repro.obs` telemetry -- see
:mod:`repro.obs.monitor.monitor` for the wiring story.  Public surface:

* :class:`MetricStreams` -- windowed rate/delta/quantile views fed by
  :class:`~repro.service.metrics.MetricsRegistry` hooks;
* :class:`HealthEvaluator` / :class:`HealthReport` /
  :class:`HealthThresholds` -- derived indicators (queue saturation,
  backpressure, cache hit ratio, latency drift, and the Equation-3
  efficiency-drift signal);
* :class:`Slo` / :class:`SloTracker` -- availability/latency objectives
  with error-budget burn rates;
* :class:`ThresholdRule` / :class:`EwmaRule` / :class:`AlertEngine` --
  declarative alerting with the pending -> firing -> resolved lifecycle;
* :class:`Monitor` / :class:`MonitorConfig` -- the composed object a
  :class:`~repro.service.service.ValidationService` accepts via
  ``monitor=``.
"""

from repro.obs.monitor.alerts import (
    ALERT_STATE_VALUES,
    AlertEngine,
    AlertRule,
    AlertTransition,
    EwmaRule,
    STATE_FIRING,
    STATE_INACTIVE,
    STATE_PENDING,
    STATE_RESOLVED,
    ThresholdRule,
)
from repro.obs.monitor.health import (
    HealthEvaluator,
    HealthReport,
    HealthThresholds,
    Indicator,
    STATUS_CRITICAL,
    STATUS_OK,
    STATUS_WARN,
)
from repro.obs.monitor.monitor import (
    Monitor,
    MonitorConfig,
    default_rules,
    default_slos,
)
from repro.obs.monitor.slo import Slo, SloStatus, SloTracker
from repro.obs.monitor.streams import MetricStreams

__all__ = [
    "ALERT_STATE_VALUES",
    "AlertEngine",
    "AlertRule",
    "AlertTransition",
    "EwmaRule",
    "HealthEvaluator",
    "HealthReport",
    "HealthThresholds",
    "Indicator",
    "MetricStreams",
    "Monitor",
    "MonitorConfig",
    "STATE_FIRING",
    "STATE_INACTIVE",
    "STATE_PENDING",
    "STATE_RESOLVED",
    "STATUS_CRITICAL",
    "STATUS_OK",
    "STATUS_WARN",
    "Slo",
    "SloStatus",
    "SloTracker",
    "ThresholdRule",
    "default_rules",
    "default_slos",
]
