"""Derived health indicators over metric streams.

Raw counters say what happened; an operator wants to know whether the
service is *degrading*.  :class:`HealthEvaluator` condenses the stream
state into five named indicators (six when a wire front end is
configured), each graded ``ok`` / ``warn`` / ``critical`` against
configurable :class:`HealthThresholds`:

* ``queue_saturation`` -- worst per-shard queue depth relative to the
  configured queue capacity (1.0 = a shard is one request away from
  backpressure);
* ``backpressure_rate`` -- overload rejections per second inside the
  window (sustained non-zero values mean the service is shedding load);
* ``cache_hit_ratio`` -- match-cache hits / lookups (graded *inverted*:
  low is bad, a cold cache re-runs geometric matching per request);
* ``latency_drift`` -- the rolling p99 of ``latency_seconds`` relative
  to a slow EWMA baseline of itself (2.0 = p99 doubled vs. its own
  recent history);
* ``efficiency_ratio`` -- the paper-specific signal: observed
  ``equations_checked_total`` per admission decision, relative to the
  group-decomposition bound ``Σ_k (2^{N_k} - 1)`` (Equation 3's
  denominator).  Batching and incremental revalidation keep real
  traffic far below 1.0; a ratio approaching 1.0 means every admission
  is paying a full grouped revalidation pass -- the grouping gain the
  paper promises is degrading.
* ``wire_saturation`` (only when ``wire_inflight_capacity`` is set,
  i.e. an :class:`repro.net.server.AdmissionServer` is attached) --
  occupancy of the bounded wire in-flight window relative to its
  ``max_inflight`` capacity, read from the ``wire_in_flight`` gauge the
  server keeps current on every submit, flush, and admin query.  1.0
  means the next arrival gets a wire ``OVERLOADED`` error.

Indicators that cannot be computed yet (no traffic, no capacity
configured) report ``ok`` with an explanatory detail rather than
guessing.  The evaluator is deterministic given the stream state: the
only mutable piece is the EWMA latency baseline, which updates on each
:meth:`HealthEvaluator.evaluate` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.monitor.streams import MetricStreams

__all__ = [
    "HealthEvaluator",
    "HealthReport",
    "HealthThresholds",
    "Indicator",
    "STATUS_CRITICAL",
    "STATUS_OK",
    "STATUS_WARN",
]

STATUS_OK = "ok"
STATUS_WARN = "warn"
STATUS_CRITICAL = "critical"

_STATUS_RANK = {STATUS_OK: 0, STATUS_WARN: 1, STATUS_CRITICAL: 2}


@dataclass(frozen=True)
class HealthThresholds:
    """Grading thresholds for the built-in indicators."""

    queue_saturation_warn: float = 0.5
    queue_saturation_critical: float = 0.9
    #: Overload events per second (windowed rate).
    backpressure_warn: float = 0.5
    backpressure_critical: float = 5.0
    #: Hit ratios *below* these grade warn/critical.
    cache_hit_warn: float = 0.5
    cache_hit_critical: float = 0.1
    #: Lookups needed before the hit ratio is graded at all (a cold
    #: cache on a trickle of traffic is not an incident).
    cache_min_lookups: int = 20
    #: p99 as a multiple of its own EWMA baseline.
    latency_drift_warn: float = 2.0
    latency_drift_critical: float = 5.0
    #: EWMA smoothing for the latency baseline.
    latency_baseline_alpha: float = 0.05
    #: Observed equations per admission over the Σ(2^N_k - 1) bound.
    efficiency_warn: float = 0.5
    efficiency_critical: float = 1.0
    #: Admission decisions needed before efficiency is graded (single
    #: un-batched requests legitimately pay near the full bound).
    efficiency_min_admissions: int = 10
    #: Wire in-flight window occupancy vs. capacity.
    wire_saturation_warn: float = 0.5
    wire_saturation_critical: float = 0.9


@dataclass(frozen=True)
class Indicator:
    """One graded health signal."""

    name: str
    status: str
    value: float
    detail: str

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly dict."""
        return {
            "name": self.name,
            "status": self.status,
            "value": self.value,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class HealthReport:
    """All indicators plus the worst status across them."""

    status: str
    indicators: Tuple[Indicator, ...]

    def indicator(self, name: str) -> Optional[Indicator]:
        """Return one indicator by name (``None`` if absent)."""
        for indicator in self.indicators:
            if indicator.name == name:
                return indicator
        return None

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly dict."""
        return {
            "status": self.status,
            "indicators": [ind.to_dict() for ind in self.indicators],
        }

    def render(self) -> str:
        """Return a terse human-readable table."""
        lines = [f"health: {self.status}"]
        for ind in self.indicators:
            lines.append(
                f"  [{ind.status:8s}] {ind.name}: {ind.value:.4g}  ({ind.detail})"
            )
        return "\n".join(lines)


def _grade_high(value: float, warn: float, critical: float) -> str:
    """Grade a higher-is-worse value."""
    if value >= critical:
        return STATUS_CRITICAL
    if value >= warn:
        return STATUS_WARN
    return STATUS_OK


def _grade_low(value: float, warn: float, critical: float) -> str:
    """Grade a lower-is-worse value."""
    if value <= critical:
        return STATUS_CRITICAL
    if value <= warn:
        return STATUS_WARN
    return STATUS_OK


class HealthEvaluator:
    """Compute the built-in indicator set from a :class:`MetricStreams`.

    Parameters
    ----------
    streams:
        The windowed stream state to read.
    thresholds:
        Grading configuration.
    queue_capacity:
        Per-shard queue bound (``None`` when unknown -- the saturation
        indicator reports ok/no-data).
    equations_bound:
        The pool's ``Σ_k (2^{N_k} - 1)`` grouped-equation bound (``None``
        when unknown).
    wire_inflight_capacity:
        The wire server's ``max_inflight`` window bound.  ``None`` (no
        wire front end) leaves the indicator set at the classic five;
        setting it adds the ``wire_saturation`` indicator.
    """

    def __init__(
        self,
        streams: MetricStreams,
        thresholds: Optional[HealthThresholds] = None,
        *,
        queue_capacity: Optional[int] = None,
        equations_bound: Optional[int] = None,
        wire_inflight_capacity: Optional[int] = None,
    ):
        self.streams = streams
        self.thresholds = thresholds or HealthThresholds()
        self.queue_capacity = queue_capacity
        self.equations_bound = equations_bound
        self.wire_inflight_capacity = wire_inflight_capacity
        #: EWMA baseline of the rolling p99 (None until first sample).
        self._latency_baseline: Optional[float] = None

    # ------------------------------------------------------------------
    # Individual indicators
    # ------------------------------------------------------------------
    def _queue_saturation(self) -> Indicator:
        thresholds = self.thresholds
        depths = self.streams.last_by_labels("queue_depth")
        if self.queue_capacity is None or not depths:
            return Indicator(
                "queue_saturation", STATUS_OK, 0.0,
                "no queue data in window",
            )
        worst_labels, worst = max(
            depths.items(), key=lambda item: (item[1], item[0])
        )
        value = worst / self.queue_capacity
        return Indicator(
            "queue_saturation",
            _grade_high(
                value,
                thresholds.queue_saturation_warn,
                thresholds.queue_saturation_critical,
            ),
            value,
            f"depth {worst:g}/{self.queue_capacity} on "
            f"{','.join(worst_labels) or 'default'}",
        )

    def _backpressure_rate(self) -> Indicator:
        thresholds = self.thresholds
        rate = self.streams.rate("overload_total")
        return Indicator(
            "backpressure_rate",
            _grade_high(
                rate, thresholds.backpressure_warn,
                thresholds.backpressure_critical,
            ),
            rate,
            f"{self.streams.delta('overload_total'):g} overload(s) in "
            f"{self.streams.window:g}s window",
        )

    def _cache_hit_ratio(self) -> Indicator:
        thresholds = self.thresholds
        hits = self.streams.last("match_cache_hits")
        misses = self.streams.last("match_cache_misses")
        if hits is None or misses is None or hits + misses == 0:
            return Indicator(
                "cache_hit_ratio", STATUS_OK, 1.0, "no cache data in window"
            )
        lookups = hits + misses
        ratio = hits / lookups
        if lookups < thresholds.cache_min_lookups:
            return Indicator(
                "cache_hit_ratio", STATUS_OK, ratio,
                f"warming up: {lookups:g} lookup(s) < "
                f"{thresholds.cache_min_lookups} floor",
            )
        return Indicator(
            "cache_hit_ratio",
            _grade_low(
                ratio, thresholds.cache_hit_warn, thresholds.cache_hit_critical
            ),
            ratio,
            f"{hits:g} hit(s) / {misses:g} miss(es)",
        )

    def _latency_drift(self) -> Indicator:
        thresholds = self.thresholds
        p99 = self.streams.quantile("latency_seconds", 0.99)
        if not self.streams.values("latency_seconds"):
            return Indicator(
                "latency_drift", STATUS_OK, 1.0, "no latency samples in window"
            )
        if self._latency_baseline is None:
            self._latency_baseline = p99
        baseline = self._latency_baseline
        drift = p99 / baseline if baseline > 0 else 1.0
        # Update the slow baseline *after* grading, so a sudden spike is
        # judged against history rather than against itself.
        alpha = thresholds.latency_baseline_alpha
        self._latency_baseline = baseline + alpha * (p99 - baseline)
        return Indicator(
            "latency_drift",
            _grade_high(
                drift,
                thresholds.latency_drift_warn,
                thresholds.latency_drift_critical,
            ),
            drift,
            f"p99 {p99 * 1e3:.3f}ms vs baseline {baseline * 1e3:.3f}ms",
        )

    def _efficiency_ratio(self) -> Indicator:
        thresholds = self.thresholds
        checked = self.streams.delta("equations_checked_total")
        admissions = self.streams.delta(
            "requests_total", ("accepted",)
        ) + self.streams.delta("requests_total", ("rejected", "equation"))
        if self.equations_bound is None or admissions == 0:
            return Indicator(
                "efficiency_ratio", STATUS_OK, 0.0,
                "no admission decisions in window",
            )
        per_admission = checked / admissions
        if admissions < thresholds.efficiency_min_admissions:
            return Indicator(
                "efficiency_ratio", STATUS_OK,
                per_admission / self.equations_bound,
                f"warming up: {admissions:g} admission(s) < "
                f"{thresholds.efficiency_min_admissions} floor",
            )
        value = per_admission / self.equations_bound
        return Indicator(
            "efficiency_ratio",
            _grade_high(
                value, thresholds.efficiency_warn,
                thresholds.efficiency_critical,
            ),
            value,
            f"{per_admission:.1f} eq/admission vs grouped bound "
            f"{self.equations_bound} (Eq. 3)",
        )

    def _wire_saturation(self) -> Indicator:
        thresholds = self.thresholds
        capacity = self.wire_inflight_capacity
        assert capacity is not None  # evaluate() only calls when set
        in_flight = self.streams.last("wire_in_flight")
        if in_flight is None:
            return Indicator(
                "wire_saturation", STATUS_OK, 0.0,
                "no wire data in window",
            )
        value = in_flight / capacity
        return Indicator(
            "wire_saturation",
            _grade_high(
                value,
                thresholds.wire_saturation_warn,
                thresholds.wire_saturation_critical,
            ),
            value,
            f"{in_flight:g}/{capacity} request(s) in the wire window",
        )

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def evaluate(self) -> HealthReport:
        """Compute every indicator and the worst overall status.

        The wire-saturation indicator only joins the set when a wire
        capacity is configured, so file-sink deployments keep the exact
        five-indicator surface their golden reports pin down.
        """
        indicators = (
            self._queue_saturation(),
            self._backpressure_rate(),
            self._cache_hit_ratio(),
            self._latency_drift(),
            self._efficiency_ratio(),
        )
        if self.wire_inflight_capacity is not None:
            indicators = indicators + (self._wire_saturation(),)
        worst = max(
            (ind.status for ind in indicators), key=_STATUS_RANK.__getitem__
        )
        return HealthReport(worst, indicators)
