"""Alert rules: static thresholds and EWMA anomaly detection.

The :class:`AlertEngine` evaluates declarative rules against a *signal
map* (``{signal name: value}`` -- built by the monitor each tick from
indicators, SLO burn rates, and raw stream views) and drives each rule
through the standard alert lifecycle::

    inactive ──breach──> pending ──held for_seconds──> firing
       ^                    │                             │
       └────────clear───────┘                  clear──> resolved
                                                          │
                                               breach──> pending

Every state change is returned as an :class:`AlertTransition`; the
monitor appends them to the structured event journal (kind ``alert``)
and mirrors rule states into ``alert_state`` gauges so Prometheus/JSON
exports carry the live alert picture.

Two rule kinds:

* :class:`ThresholdRule` -- breach when ``value <op> threshold``;
* :class:`EwmaRule` -- breach when the z-score of the value against an
  exponentially weighted running mean/variance exceeds ``z_threshold``
  (after ``warmup`` observations).  The EWMA state updates on every
  evaluation from deterministic inputs only, so identical signal
  sequences produce identical alert timelines -- the property the
  determinism tests pin byte-for-byte.

Both support ``for_seconds``: the breach must hold that long (measured
on the injected clock) before ``pending`` escalates to ``firing``, the
usual guard against one-sample flaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple, Union

from repro.errors import ServiceError

__all__ = [
    "ALERT_STATE_VALUES",
    "AlertEngine",
    "AlertRule",
    "AlertTransition",
    "EwmaRule",
    "STATE_FIRING",
    "STATE_INACTIVE",
    "STATE_PENDING",
    "STATE_RESOLVED",
    "ThresholdRule",
]

STATE_INACTIVE = "inactive"
STATE_PENDING = "pending"
STATE_FIRING = "firing"
STATE_RESOLVED = "resolved"

#: Gauge encoding of rule states (``alert_state{rule}``); firing is the
#: maximum so ``max()`` over the gauge is "worst alert state".
ALERT_STATE_VALUES = {
    STATE_INACTIVE: 0.0,
    STATE_RESOLVED: 0.0,
    STATE_PENDING: 1.0,
    STATE_FIRING: 2.0,
}

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class ThresholdRule:
    """Breach while ``signal <op> threshold``."""

    name: str
    source: str
    threshold: float
    op: str = ">"
    for_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("alert rule name must be non-empty")
        if self.op not in _COMPARATORS:
            raise ServiceError(
                f"unknown comparator {self.op!r}; "
                f"choose from {sorted(_COMPARATORS)}"
            )
        if self.for_seconds < 0:
            raise ServiceError("for_seconds must be >= 0")


@dataclass(frozen=True)
class EwmaRule:
    """Breach while the signal's EWMA z-score exceeds ``z_threshold``.

    The detector keeps an exponentially weighted mean and variance
    (smoothing ``alpha``); each observation is scored against the stats
    *before* it is folded in, so a spike is judged against history.  The
    first ``warmup`` observations never breach (the stats are still
    settling).
    """

    name: str
    source: str
    z_threshold: float = 4.0
    alpha: float = 0.3
    warmup: int = 5
    for_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("alert rule name must be non-empty")
        if self.z_threshold <= 0:
            raise ServiceError("z_threshold must be > 0")
        if not 0.0 < self.alpha <= 1.0:
            raise ServiceError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.warmup < 1:
            raise ServiceError("warmup must be >= 1")
        if self.for_seconds < 0:
            raise ServiceError("for_seconds must be >= 0")


AlertRule = Union[ThresholdRule, EwmaRule]


@dataclass(frozen=True)
class AlertTransition:
    """One lifecycle state change of one rule."""

    rule: str
    from_state: str
    to_state: str
    #: Signal value that caused (or cleared) the breach.
    value: float
    #: Clock time of the evaluation that produced the transition.
    at: float

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly dict."""
        return {
            "rule": self.rule,
            "from_state": self.from_state,
            "to_state": self.to_state,
            "value": self.value,
            "at": self.at,
        }


class _EwmaState:
    """Running EWMA mean/variance for one :class:`EwmaRule`."""

    __slots__ = ("mean", "var", "count")

    def __init__(self) -> None:
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def score_and_update(self, value: float, alpha: float) -> float:
        """Return the z-score of ``value`` against the prior stats, then
        fold it into the running mean/variance."""
        if self.count == 0:
            z = 0.0
            self.mean = value
        else:
            diff = value - self.mean
            std = math.sqrt(self.var)
            if std > 0.0:
                z = diff / std
            else:
                z = 0.0 if diff == 0.0 else math.inf
            increment = alpha * diff
            self.mean += increment
            self.var = (1.0 - alpha) * (self.var + diff * increment)
        self.count += 1
        return z


class AlertEngine:
    """Drive a rule set through the alert lifecycle (see module doc)."""

    def __init__(self, rules: Tuple[AlertRule, ...]):
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate alert rule names: {names}")
        self.rules = tuple(rules)
        self._states: Dict[str, str] = {
            rule.name: STATE_INACTIVE for rule in rules
        }
        self._pending_since: Dict[str, float] = {}
        self._ewma: Dict[str, _EwmaState] = {
            rule.name: _EwmaState()
            for rule in rules
            if isinstance(rule, EwmaRule)
        }

    def states(self) -> Dict[str, str]:
        """Return ``{rule name: current lifecycle state}``."""
        return dict(self._states)

    def state(self, rule_name: str) -> str:
        """Return one rule's current lifecycle state."""
        try:
            return self._states[rule_name]
        except KeyError:
            raise ServiceError(f"unknown alert rule {rule_name!r}") from None

    def _breached(self, rule: AlertRule, value: float) -> bool:
        if isinstance(rule, ThresholdRule):
            return _COMPARATORS[rule.op](value, rule.threshold)
        state = self._ewma[rule.name]
        z = state.score_and_update(value, rule.alpha)
        return state.count > rule.warmup and abs(z) > rule.z_threshold

    def evaluate(
        self, signals: Mapping[str, float], now: float
    ) -> List[AlertTransition]:
        """Evaluate every rule against the signal map; return transitions.

        Rules whose source signal is absent are skipped entirely (their
        state is held, and EWMA stats see no observation) -- "no data" is
        not a breach.
        """
        transitions: List[AlertTransition] = []

        def move(rule_name: str, to_state: str, value: float) -> None:
            transitions.append(
                AlertTransition(
                    rule_name, self._states[rule_name], to_state, value, now
                )
            )
            self._states[rule_name] = to_state

        for rule in self.rules:
            value = signals.get(rule.source)
            if value is None:
                continue
            breached = self._breached(rule, float(value))
            state = self._states[rule.name]
            if breached:
                if state in (STATE_INACTIVE, STATE_RESOLVED):
                    move(rule.name, STATE_PENDING, value)
                    self._pending_since[rule.name] = now
                    state = STATE_PENDING
                if state == STATE_PENDING:
                    held = now - self._pending_since[rule.name]
                    if held >= rule.for_seconds:
                        move(rule.name, STATE_FIRING, value)
            else:
                if state == STATE_PENDING:
                    # Cleared before it fired: not worth a "resolved".
                    move(rule.name, STATE_INACTIVE, value)
                    self._pending_since.pop(rule.name, None)
                elif state == STATE_FIRING:
                    move(rule.name, STATE_RESOLVED, value)
                    self._pending_since.pop(rule.name, None)
        return transitions
