"""The monitor: streams + health + SLOs + alerts behind one object.

:class:`Monitor` is the deterministic consumption layer over the metrics
and events PR 2 taught the pipeline to emit.  Hand one to a
:class:`~repro.service.service.ValidationService` via ``monitor=`` and:

1. **attach** -- the monitor subscribes its :class:`MetricStreams` to the
   service's registry hooks and captures the service-derived constants
   the indicators need (queue capacity, the pool's ``Σ_k (2^{N_k} - 1)``
   grouped-equation bound, the match-cache stat accessor);
2. **tick** -- after every drain the service calls :meth:`tick`, which
   (a) publishes cache stats as gauges, (b) evaluates the health
   indicators and SLO trackers, (c) builds the *signal map* and runs the
   alert engine, (d) appends every alert transition to the structured
   event journal (kind ``alert``) and mirrors rule states / SLO grades
   into registry gauges, so the regular Prometheus/JSON exporters carry
   the full monitoring picture with zero extra wiring;
3. **report** -- :meth:`snapshot` (JSON-friendly), :meth:`report`
   (human), :meth:`timeline` (every alert transition so far, the object
   the byte-identical determinism tests compare).

Signal names available to alert rules (the ``source`` field):

* indicator values: ``queue_saturation``, ``backpressure_rate``,
  ``cache_hit_ratio``, ``latency_drift``, ``efficiency_ratio``;
* SLO grades: ``slo_burn:<name>`` and ``slo_compliance:<name>``;
* raw stream views: ``rate:<metric>``, ``delta:<metric>``,
  ``last:<metric>``, ``p50:<metric>`` / ``p95:<metric>`` /
  ``p99:<metric>`` / ``mean:<metric>``.

Everything is strictly out-of-band: the monitor never touches admission
state, so verdict streams are byte-identical with ``monitor=`` set or
``None`` (pinned by the obs test suite), and the ``monitor=None`` hot
path costs a single ``is None`` branch (pinned by
``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.events import EVENT_ALERT, EventLog
from repro.obs.monitor.alerts import (
    ALERT_STATE_VALUES,
    AlertEngine,
    AlertRule,
    AlertTransition,
    EwmaRule,
    ThresholdRule,
)
from repro.obs.monitor.health import (
    HealthEvaluator,
    HealthReport,
    HealthThresholds,
    STATUS_OK,
)
from repro.obs.monitor.slo import Slo, SloStatus, SloTracker
from repro.obs.monitor.streams import MetricStreams

__all__ = ["Monitor", "MonitorConfig", "default_rules", "default_slos"]


def default_slos() -> Tuple[Slo, ...]:
    """The stock objective set: 99.9% admission availability."""
    return (Slo("availability", objective=0.999, kind="availability"),)


def default_rules() -> Tuple[AlertRule, ...]:
    """The stock rule set over the built-in indicators and SLOs."""
    return (
        ThresholdRule(
            "queue-saturation", source="queue_saturation", threshold=0.9
        ),
        ThresholdRule(
            "backpressure", source="backpressure_rate", threshold=0.5
        ),
        ThresholdRule(
            "efficiency-degraded", source="efficiency_ratio", threshold=1.0
        ),
        ThresholdRule(
            "availability-burn", source="slo_burn:availability", threshold=1.0
        ),
        EwmaRule("latency-anomaly", source="p99:latency_seconds"),
    )


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning knobs of a :class:`Monitor`.

    ``slos``/``rules`` default to :func:`default_slos` /
    :func:`default_rules`; pass empty tuples to disable either layer.
    """

    window: float = 60.0
    max_points: int = 8192
    thresholds: HealthThresholds = field(default_factory=HealthThresholds)
    slos: Tuple[Slo, ...] = field(default_factory=default_slos)
    rules: Tuple[AlertRule, ...] = field(default_factory=default_rules)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ServiceError(f"window must be > 0, got {self.window}")


class Monitor:
    """Deterministic health/SLO/alert evaluation over one registry.

    Parameters
    ----------
    config:
        Window length, thresholds, SLOs, alert rules.
    clock:
        Monotonic clock shared by the streams and the alert engine;
        injectable so two runs over the same metric sequence produce
        byte-identical alert timelines.
    events:
        Optional :class:`~repro.obs.events.EventLog` for alert
        transitions.  When omitted, :meth:`attach` adopts the service's
        journal (if the service has one).

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> from repro.service.service import ValidationService
    >>> scenario = example1()
    >>> monitor = Monitor()
    >>> service = ValidationService(scenario.pool, monitor=monitor)
    >>> [service.issue(usage).accepted for usage in scenario.usages]
    [True, True]
    >>> monitor.health().status
    'ok'
    """

    def __init__(
        self,
        config: Optional[MonitorConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        events: Optional[EventLog] = None,
    ):
        self.config = config or MonitorConfig()
        self._clock = clock
        self.events = events
        self.streams = MetricStreams(
            window=self.config.window,
            clock=clock,
            max_points=self.config.max_points,
        )
        self._engine = AlertEngine(self.config.rules)
        self._slo_tracker = SloTracker(self.config.slos, self.streams)
        self._evaluator = HealthEvaluator(
            self.streams, self.config.thresholds
        )
        self._registry = None
        self._cache_stats: Optional[Callable[[], Tuple[int, int, int]]] = None
        self._timeline: List[AlertTransition] = []
        self._last_health: Optional[HealthReport] = None
        self._last_slos: List[SloStatus] = []
        self.ticks = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_registry(
        self,
        registry,
        *,
        queue_capacity: Optional[int] = None,
        equations_bound: Optional[int] = None,
        cache_stats: Optional[Callable[[], Tuple[int, int, int]]] = None,
        events: Optional[EventLog] = None,
        wire_inflight_capacity: Optional[int] = None,
    ) -> None:
        """Subscribe to a registry and set service-derived constants.

        Usable standalone (tests, replaying recorded metric sequences);
        :meth:`attach` is the service-facing wrapper.
        """
        if self._registry is not None:
            raise ServiceError("monitor is already attached")
        self.streams.attach(registry)
        self._registry = registry
        self._evaluator.queue_capacity = queue_capacity
        self._evaluator.equations_bound = equations_bound
        if wire_inflight_capacity is not None:
            self._evaluator.wire_inflight_capacity = wire_inflight_capacity
        self._cache_stats = cache_stats
        if self.events is None and events is not None:
            self.events = events

    def set_wire_capacity(self, capacity: Optional[int]) -> None:
        """Configure (or clear) the wire in-flight window capacity.

        Called by :class:`repro.net.server.AdmissionServer` when it
        fronts the monitored service; enables the ``wire_saturation``
        health indicator.  Safe before or after attachment -- the
        capacity is a grading constant, not a stream subscription.
        """
        self._evaluator.wire_inflight_capacity = capacity
        self._last_health = None

    def attach(self, service) -> None:
        """Attach to a :class:`ValidationService` (called by its ctor)."""
        from repro.core.gain import equations_with_grouping

        self.attach_registry(
            service.metrics,
            queue_capacity=service.config.queue_capacity,
            equations_bound=equations_with_grouping(service.group_sizes),
            cache_stats=service.match_cache_stats,
            events=service.events,
        )

    @property
    def attached(self) -> bool:
        """Return whether :meth:`attach_registry` has run."""
        return self._registry is not None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _signal(self, source: str) -> Optional[float]:
        """Resolve a raw-stream signal (``rate:metric`` etc.)."""
        if ":" not in source:
            return None
        view, metric = source.split(":", 1)
        if view == "rate":
            return self.streams.rate(metric)
        if view == "delta":
            return self.streams.delta(metric)
        if view == "last":
            return self.streams.last(metric)
        if view == "mean":
            return self.streams.mean(metric)
        if view in ("p50", "p95", "p99"):
            if not self.streams.values(metric):
                return None
            return self.streams.quantile(metric, int(view[1:]) / 100.0)
        return None

    def _signals(
        self, health: HealthReport, slo_statuses: List[SloStatus]
    ) -> Dict[str, float]:
        signals: Dict[str, float] = {
            indicator.name: indicator.value
            for indicator in health.indicators
        }
        for status in slo_statuses:
            signals[f"slo_burn:{status.name}"] = status.burn_rate
            signals[f"slo_compliance:{status.name}"] = status.compliance
        for rule in self.config.rules:
            if rule.source not in signals:
                value = self._signal(rule.source)
                if value is not None:
                    signals[rule.source] = value
        return signals

    def tick(self) -> List[AlertTransition]:
        """Run one evaluation pass; return the alert transitions it
        produced (also journaled and gauged -- see module docstring)."""
        if self._registry is None:
            raise ServiceError("monitor.tick() before attach")
        registry = self._registry
        if self._cache_stats is not None:
            hits, misses, evictions = self._cache_stats()
            registry.gauge("match_cache_hits").set(hits)
            registry.gauge("match_cache_misses").set(misses)
            registry.gauge("match_cache_evictions").set(evictions)
        health = self._evaluator.evaluate()
        slo_statuses = self._slo_tracker.evaluate()
        now = self._clock()
        transitions = self._engine.evaluate(
            self._signals(health, slo_statuses), now
        )
        for transition in transitions:
            registry.counter("alert_transitions_total").inc(
                (transition.rule, transition.to_state)
            )
            if self.events is not None:
                self.events.emit(EVENT_ALERT, **transition.to_dict())
        for rule_name, state in sorted(self._engine.states().items()):
            registry.gauge("alert_state").set(
                ALERT_STATE_VALUES[state], (rule_name,)
            )
        for status in slo_statuses:
            registry.gauge("slo_compliance").set(
                status.compliance, (status.name,)
            )
            registry.gauge("slo_burn_rate").set(
                status.burn_rate, (status.name,)
            )
        self._timeline.extend(transitions)
        self._last_health = health
        self._last_slos = slo_statuses
        self.ticks += 1
        return transitions

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def health(self) -> HealthReport:
        """Return the latest health report (evaluating once if needed)."""
        if self._last_health is None:
            self._last_health = self._evaluator.evaluate()
        return self._last_health

    def slo_statuses(self) -> List[SloStatus]:
        """Return the latest SLO grades (evaluating once if needed)."""
        if not self._last_slos and self.config.slos:
            self._last_slos = self._slo_tracker.evaluate()
        return list(self._last_slos)

    def alert_states(self) -> Dict[str, str]:
        """Return ``{rule name: lifecycle state}``."""
        return self._engine.states()

    def timeline(self) -> List[AlertTransition]:
        """Return every alert transition observed so far, in order."""
        return list(self._timeline)

    def snapshot(self) -> Dict[str, object]:
        """Return the full monitor state as a JSON-friendly dict."""
        health = self.health()
        return {
            "status": health.status,
            "ticks": self.ticks,
            "indicators": [ind.to_dict() for ind in health.indicators],
            "slos": [status.to_dict() for status in self.slo_statuses()],
            "alerts": dict(sorted(self.alert_states().items())),
            "transitions": [t.to_dict() for t in self._timeline],
        }

    def report(self) -> str:
        """Return a human-readable monitoring report."""
        lines = [self.health().render()]
        statuses = self.slo_statuses()
        if statuses:
            lines.append("slos:")
            for status in statuses:
                verdict = "met" if status.met else "VIOLATED"
                lines.append(
                    f"  [{verdict:8s}] {status.name} ({status.kind}): "
                    f"compliance {status.compliance:.6f} vs objective "
                    f"{status.objective:.6f}, burn {status.burn_rate:.3f} "
                    f"over {status.events:g} event(s)"
                )
        states = self.alert_states()
        if states:
            lines.append("alerts:")
            for rule_name in sorted(states):
                lines.append(f"  [{states[rule_name]:8s}] {rule_name}")
        firing = sum(1 for s in states.values() if s == "firing")
        lines.append(
            f"{self.ticks} tick(s), {len(self._timeline)} transition(s), "
            f"{firing} firing"
        )
        return "\n".join(lines)
