"""Time-windowed metric streams fed by :class:`MetricsRegistry` hooks.

The registry keeps *state* (current totals, last gauge values, quantile
windows); monitoring needs *movement* -- how fast a counter is climbing,
what a gauge looked like over the last minute, where the rolling p99
sits.  :class:`MetricStreams` subscribes to a registry's hook fan-out
(``registry.add_hook(streams.observe)``) and keeps one time-stamped ring
buffer per ``(metric, labels)`` cell, pruned to a sliding time window.

Three views, matching the three metric kinds:

* counters -- :meth:`MetricStreams.delta` (increments inside the window)
  and :meth:`MetricStreams.rate` (delta / window seconds);
* gauges -- :meth:`MetricStreams.last` and per-cell
  :meth:`MetricStreams.last_by_labels`;
* histograms -- :meth:`MetricStreams.quantile` / :meth:`MetricStreams.mean`
  over the samples that landed inside the window.

The clock is injectable (``clock=...``), so monitor tests drive a fake
monotonic clock and get byte-identical stream states on every run; the
default is :func:`time.monotonic`.  Everything is plain deques and
floats -- no threads, no background work; cost is paid on ``observe``
(amortized O(1)) and on reads (O(points in window)).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.quantiles import nearest_rank

__all__ = ["MetricStreams"]

#: One buffered observation: ``(timestamp, value)``.
_Point = Tuple[float, float]


class MetricStreams:
    """Windowed ring buffers over a metrics registry's hook stream.

    Parameters
    ----------
    window:
        Sliding window length in clock seconds.
    clock:
        Monotonic clock; injectable so tests can pin stream contents.
    max_points:
        Per-cell ring capacity; the oldest points are dropped first, so a
        cell hot enough to overflow degrades to a shorter effective
        window instead of growing without bound.

    Examples
    --------
    >>> from repro.service.metrics import MetricsRegistry
    >>> ticks = iter(range(100))
    >>> streams = MetricStreams(window=10.0, clock=lambda: float(next(ticks)))
    >>> registry = MetricsRegistry()
    >>> streams.attach(registry)
    >>> for _ in range(3):
    ...     registry.counter("requests_total").inc(("accepted",))
    >>> streams.delta("requests_total")
    3.0
    """

    def __init__(
        self,
        *,
        window: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        max_points: int = 8192,
    ):
        if window <= 0:
            raise ServiceError(f"stream window must be > 0, got {window}")
        if max_points < 1:
            raise ServiceError(f"max_points must be >= 1, got {max_points}")
        self.window = float(window)
        self._clock = clock
        self._max_points = max_points
        self._series: Dict[Tuple[str, Tuple[str, ...]], Deque[_Point]] = {}
        self._attached = False

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def attach(self, registry) -> None:
        """Subscribe to a registry's hook fan-out (at most once)."""
        if self._attached:
            raise ServiceError("streams are already attached to a registry")
        registry.add_hook(self.observe)
        self._attached = True

    def observe(
        self, name: str, labels: Tuple[str, ...], value: float
    ) -> None:
        """Record one hook event (the :data:`MetricHook` signature)."""
        now = self._clock()
        series = self._series.get((name, labels))
        if series is None:
            series = deque()
            self._series[(name, labels)] = series
        series.append((now, float(value)))
        if len(series) > self._max_points:
            series.popleft()
        self._prune(series, now)

    def _prune(self, series: Deque[_Point], now: float) -> None:
        horizon = now - self.window
        while series and series[0][0] < horizon:
            series.popleft()

    #: Wire-server event kinds mapped into stream cells by
    #: :meth:`ingest_event`: ``{kind: (metric, value field or None)}``.
    #: ``None`` means each event contributes 1 (a pure occurrence count).
    WIRE_EVENT_METRICS = {
        "conn_open": ("wire_conn_events", None),
        "conn_close": ("wire_conn_events", None),
        "drain": ("wire_drain_flushed", "in_flight_flushed"),
    }

    def ingest_event(self, event: Dict[str, object]) -> bool:
        """Fold one wire-server event into the windowed streams.

        The wire layer reports connection churn and drains through the
        :class:`~repro.obs.events.EventLog`, not the metrics registry, so
        a monitor attached only to the registry never sees them.  This
        maps ``conn_open``/``conn_close`` to a ``wire_conn_events``
        counter cell labelled by kind and ``drain`` to
        ``wire_drain_flushed`` valued by the flushed in-flight count --
        after which the usual :meth:`delta`/:meth:`rate` views apply.
        Returns ``True`` when the event kind was recognised.
        """
        kind = str(event.get("kind", ""))
        mapping = self.WIRE_EVENT_METRICS.get(kind)
        if mapping is None:
            return False
        metric, value_field = mapping
        value = 1.0 if value_field is None else float(event.get(value_field, 0) or 0)  # type: ignore[arg-type]
        self.observe(metric, (kind,), value)
        return True

    def ingest_events(self, events) -> int:
        """Call :meth:`ingest_event` per event; return how many matched."""
        return sum(1 for event in events if self.ingest_event(event))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _cells(
        self, name: str, labels: Optional[Tuple[str, ...]]
    ) -> List[Deque[_Point]]:
        if labels is not None:
            series = self._series.get((name, labels))
            return [series] if series is not None else []
        return [
            series
            for (cell_name, _cell_labels), series in self._series.items()
            if cell_name == name
        ]

    def points(
        self, name: str, labels: Optional[Tuple[str, ...]] = None
    ) -> List[_Point]:
        """Return the windowed ``(timestamp, value)`` points of a metric.

        ``labels=None`` merges every label cell of the metric (sorted by
        timestamp); pass a label tuple for one cell.
        """
        now = self._clock()
        merged: List[_Point] = []
        for series in self._cells(name, labels):
            self._prune(series, now)
            merged.extend(series)
        merged.sort(key=lambda point: point[0])
        return merged

    def values(
        self, name: str, labels: Optional[Tuple[str, ...]] = None
    ) -> List[float]:
        """Return just the windowed values (see :meth:`points`)."""
        return [value for _at, value in self.points(name, labels)]

    # ------------------------------------------------------------------
    # Counter views
    # ------------------------------------------------------------------
    def delta(
        self, name: str, labels: Optional[Tuple[str, ...]] = None
    ) -> float:
        """Sum of observed values inside the window (counter increments)."""
        return sum(self.values(name, labels))

    def rate(
        self, name: str, labels: Optional[Tuple[str, ...]] = None
    ) -> float:
        """Return :meth:`delta` divided by the window length (per second)."""
        return self.delta(name, labels) / self.window

    # ------------------------------------------------------------------
    # Gauge views
    # ------------------------------------------------------------------
    def last(
        self, name: str, labels: Optional[Tuple[str, ...]] = None
    ) -> Optional[float]:
        """Most recent windowed value, or ``None`` if the window is empty."""
        points = self.points(name, labels)
        return points[-1][1] if points else None

    def last_by_labels(self, name: str) -> Dict[Tuple[str, ...], float]:
        """Return ``{labels: most recent value}`` for every cell of a
        metric with at least one point inside the window."""
        now = self._clock()
        result: Dict[Tuple[str, ...], float] = {}
        for (cell_name, cell_labels), series in self._series.items():
            if cell_name != name:
                continue
            self._prune(series, now)
            if series:
                result[cell_labels] = series[-1][1]
        return result

    # ------------------------------------------------------------------
    # Histogram views
    # ------------------------------------------------------------------
    def quantile(
        self,
        name: str,
        q: float,
        labels: Optional[Tuple[str, ...]] = None,
    ) -> float:
        """Nearest-rank ``q``-quantile of the windowed samples (0.0 when
        the window is empty).  Shares the round-convention
        :func:`repro.obs.quantiles.nearest_rank` with
        :meth:`repro.service.metrics.Histogram.quantile`."""
        if not 0.0 <= q <= 1.0:
            raise ServiceError(f"quantile {q} outside [0, 1]")
        return nearest_rank(self.values(name, labels), q)

    def mean(
        self, name: str, labels: Optional[Tuple[str, ...]] = None
    ) -> float:
        """Mean of the windowed samples (0.0 when the window is empty)."""
        values = self.values(name, labels)
        return sum(values) / len(values) if values else 0.0
