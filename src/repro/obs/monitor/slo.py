"""Service-level objectives with error budgets and burn rates.

Following the OMA-DRM framing that license-admission availability is a
first-class service objective, an :class:`Slo` declares a target over
the monitoring window and :class:`SloTracker` grades the observed
traffic against it each evaluation:

* ``availability`` -- admitted requests over admitted plus *capacity*
  rejections (shard-queue overload).  Business rejections -- ``instance``
  and ``equation`` verdicts -- are *correct* outcomes, not
  unavailability, so they never consume error budget;
* ``latency`` -- the fraction of windowed ``latency_seconds`` samples at
  or under ``latency_target`` seconds.

Error-budget math is the standard SRE formulation: with objective ``o``
the budget is ``1 - o``; the burn rate is the observed bad fraction
divided by the budget, so burn 1.0 means "spending exactly the whole
budget", and burn > 1.0 means the objective will be violated if the
window's traffic pattern continues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.monitor.streams import MetricStreams

__all__ = ["Slo", "SloStatus", "SloTracker", "SLO_KINDS"]

SLO_KINDS = ("availability", "latency")


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    Attributes
    ----------
    name:
        Unique identifier (used in gauges, alerts, and reports).
    objective:
        Target good fraction in ``(0, 1)`` (e.g. ``0.999``).
    kind:
        ``"availability"`` or ``"latency"``.
    latency_target:
        Seconds; a latency sample is *good* iff it is <= this.  Required
        for latency SLOs, ignored otherwise.
    """

    name: str
    objective: float
    kind: str = "availability"
    latency_target: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("SLO name must be non-empty")
        if not 0.0 < self.objective < 1.0:
            raise ServiceError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )
        if self.kind not in SLO_KINDS:
            raise ServiceError(
                f"unknown SLO kind {self.kind!r}; choose from {SLO_KINDS}"
            )
        if self.kind == "latency" and self.latency_target <= 0:
            raise ServiceError(
                "latency SLOs need a positive latency_target (seconds)"
            )


@dataclass(frozen=True)
class SloStatus:
    """One SLO's grading over the current window."""

    name: str
    kind: str
    objective: float
    #: Observed good fraction (1.0 with no traffic: an idle service is
    #: not violating its objective).
    compliance: float
    #: ``good + bad`` events the grade was computed over.
    events: float
    #: ``(1 - compliance) / (1 - objective)``; 0.0 with no traffic.
    burn_rate: float
    met: bool

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly dict."""
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "compliance": self.compliance,
            "events": self.events,
            "burn_rate": self.burn_rate,
            "met": self.met,
        }


class SloTracker:
    """Grade a set of SLOs against the windowed stream state."""

    def __init__(self, slos: Tuple[Slo, ...], streams: MetricStreams):
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate SLO names: {names}")
        self.slos = tuple(slos)
        self.streams = streams

    def _availability(self, slo: Slo) -> SloStatus:
        good = self.streams.delta("requests_total", ("accepted",))
        bad = self.streams.delta("overload_total")
        return self._status(slo, good, bad)

    def _latency(self, slo: Slo) -> SloStatus:
        samples = self.streams.values("latency_seconds")
        good = float(sum(1 for s in samples if s <= slo.latency_target))
        bad = float(len(samples)) - good
        return self._status(slo, good, bad)

    @staticmethod
    def _status(slo: Slo, good: float, bad: float) -> SloStatus:
        total = good + bad
        compliance = good / total if total else 1.0
        budget = 1.0 - slo.objective
        burn_rate = (1.0 - compliance) / budget if total else 0.0
        return SloStatus(
            name=slo.name,
            kind=slo.kind,
            objective=slo.objective,
            compliance=compliance,
            events=total,
            burn_rate=burn_rate,
            met=compliance >= slo.objective,
        )

    def evaluate(self) -> List[SloStatus]:
        """Return one :class:`SloStatus` per declared SLO."""
        statuses = []
        for slo in self.slos:
            if slo.kind == "availability":
                statuses.append(self._availability(slo))
            else:
                statuses.append(self._latency(slo))
        return statuses
