"""Cross-process distributed tracing: context carriers and assembly.

The wire layer (:mod:`repro.net`) crosses a real process boundary, so a
single admission request produces spans in *two* journals: the client's
(``wire_request`` spans emitted by :class:`repro.net.client.AdmissionClient`)
and the server's (``request``/``match``/``queue_wait``/``admission`` spans
emitted by :class:`repro.service.ValidationService`).  This module holds
the pieces that stitch them back together:

* :class:`TraceContext` -- the (trace id, parent span id) pair carried in
  REQUEST frames.  It duck-types as a :class:`~repro.obs.trace.Tracer`
  parent, so the server can hang its ``request`` span directly under the
  client's wire span.
* :class:`ServerTiming` -- the compact per-request phase breakdown
  (queue wait / match / admission / revalidate, in microseconds) echoed
  in RESPONSE frames, plus shard id and kernel name.
* :func:`assemble` -- merge the two journals into one span forest with
  collision-free ids and clock-skew alignment, ready for the existing
  ASCII/JSON exporters.

Span and trace ids are deterministic seeded counters (see
:mod:`repro.obs.trace`), so two independent processes can emit the *same*
ids.  The assembler therefore namespaces ids by origin (``c:`` client,
``s:`` server) while preserving the shared trace ids that make a request
one trace across the boundary.

Both journals are recorded against each process's own monotonic clock,
whose zero points are unrelated.  For every matched pair (client wire
span <-> the server request span it parents) the midpoint rule

    ``offset = client.start + (client.duration - server.duration) / 2
    - server.start``

estimates the clock offset: it assumes the wire delay is split evenly
between the outbound and inbound halves, exactly like NTP's round-trip
estimator.  The median over all matched pairs is applied to every server
span so the merged timeline is causally plausible (server spans nest
inside the client spans that caused them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.obs.export import render_span_tree
from repro.obs.trace import SpanRecord

__all__ = [
    "TraceContext",
    "ServerTiming",
    "AssembledTrace",
    "assemble",
    "assemble_files",
    "validate_trace_id",
]

#: Maximum accepted length of a trace/span id on the wire.
MAX_ID_LENGTH = 64

_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789._:-"
)


def validate_trace_id(value: object, *, label: str = "id") -> str:
    """Return ``value`` if it is a well-formed wire trace/span id.

    Ids must be non-empty strings of at most :data:`MAX_ID_LENGTH`
    characters drawn from ``[A-Za-z0-9._:-]``; anything else raises
    :class:`~repro.errors.ProtocolError` so corrupt frames are rejected
    at the codec layer instead of poisoning journals.
    """
    if not isinstance(value, str):
        raise ProtocolError(f"trace {label} must be a string, got {type(value).__name__}")
    if not value:
        raise ProtocolError(f"trace {label} must be non-empty")
    if len(value) > MAX_ID_LENGTH:
        raise ProtocolError(
            f"trace {label} exceeds {MAX_ID_LENGTH} characters ({len(value)})"
        )
    if not set(value) <= _ID_CHARS:
        raise ProtocolError(f"trace {label} contains invalid characters: {value!r}")
    return value


@dataclass(frozen=True)
class TraceContext:
    """Wire representation of a span's identity, propagated in REQUEST
    frames.

    Exposes ``trace_id``/``span_id`` attributes, which is exactly the
    duck-typed parent contract of :meth:`repro.obs.trace.Tracer.start_span`
    -- pass a ``TraceContext`` as ``parent=`` and the new span joins the
    remote trace.

    Examples
    --------
    >>> ctx = TraceContext("t00000000", "s00000001")
    >>> ctx.trace_id, ctx.span_id
    ('t00000000', 's00000001')
    """

    trace_id: str
    span_id: str

    def __post_init__(self) -> None:
        validate_trace_id(self.trace_id, label="trace_id")
        validate_trace_id(self.span_id, label="span_id")


@dataclass(frozen=True)
class ServerTiming:
    """Per-request server-side phase breakdown echoed in RESPONSE frames.

    All phases are integer microseconds; ``shard_id`` is ``-1`` for
    requests rejected before reaching a shard (e.g. instance-cap
    rejections, which never queue).
    """

    queue_us: int
    match_us: int
    admission_us: int
    revalidate_us: int
    shard_id: int
    kernel: str

    @property
    def total_us(self) -> int:
        """Sum of all measured server phases (microseconds)."""
        return self.queue_us + self.match_us + self.admission_us + self.revalidate_us

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON payload shape used on the wire."""
        return {
            "queue_us": self.queue_us,
            "match_us": self.match_us,
            "admission_us": self.admission_us,
            "revalidate_us": self.revalidate_us,
            "shard_id": self.shard_id,
            "kernel": self.kernel,
        }


@dataclass
class AssembledTrace:
    """Result of merging a client and a server journal.

    ``records`` is the merged, id-namespaced, clock-aligned span list
    (sorted by ``(trace_id, start, span_id)``), suitable for
    :func:`repro.obs.export.render_span_tree`.
    """

    records: List[SpanRecord] = field(default_factory=list)
    clock_offset: float = 0.0
    matched_pairs: int = 0
    cross_traces: int = 0
    client_spans: int = 0
    server_spans: int = 0

    def render(self, *, max_traces: Optional[int] = None) -> str:
        """ASCII span forest of the merged journals."""
        header = (
            f"assembled {self.client_spans} client + {self.server_spans} server "
            f"spans; {self.cross_traces} cross-process trace(s), "
            f"{self.matched_pairs} matched pair(s), "
            f"clock offset {self.clock_offset * 1e3:+.3f} ms"
        )
        tree = render_span_tree(self.records, max_traces=max_traces)
        return header + "\n\n" + tree

    def to_json(self) -> Dict[str, object]:
        """JSON payload: summary plus every merged span record."""
        return {
            "clock_offset": self.clock_offset,
            "matched_pairs": self.matched_pairs,
            "cross_traces": self.cross_traces,
            "client_spans": self.client_spans,
            "server_spans": self.server_spans,
            "spans": [record.to_dict() for record in self.records],
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _is_remote(record: SpanRecord) -> bool:
    """Whether this server span was parented under a *remote* context.

    Both processes draw ids from identical seeded counters, so a parent
    id existing in the other journal proves nothing -- the service marks
    remotely-parented spans with a ``remote_parent`` attribute at submit
    time, and that marker is the assembler's source of truth.
    """
    return bool(record.attrs.get("remote_parent")) and record.parent_id is not None


def _matched_pairs(
    client_records: Sequence[SpanRecord],
    server_records: Sequence[SpanRecord],
) -> List[Tuple[SpanRecord, SpanRecord]]:
    """Pairs (client wire span, server span remotely parented under it)."""
    client_by_id = {record.span_id: record for record in client_records}
    pairs: List[Tuple[SpanRecord, SpanRecord]] = []
    for record in server_records:
        if not _is_remote(record):
            continue
        client_span = client_by_id.get(record.parent_id)
        if client_span is not None and client_span.trace_id == record.trace_id:
            pairs.append((client_span, record))
    return pairs


def estimate_clock_offset(
    client_records: Sequence[SpanRecord],
    server_records: Sequence[SpanRecord],
) -> Tuple[float, int]:
    """Median midpoint-rule offset to add to server timestamps.

    Returns ``(offset_seconds, matched_pair_count)``; the offset is 0.0
    when no server span is remotely parented under a client span.
    """
    pairs = _matched_pairs(client_records, server_records)
    if not pairs:
        return 0.0, 0
    offsets = [
        client_span.start
        + (client_span.duration - server_span.duration) / 2.0
        - server_span.start
        for client_span, server_span in pairs
    ]
    return _median(offsets), len(pairs)


def _namespace(prefix: str, span_id: str) -> str:
    return f"{prefix}{span_id}"


def assemble(
    client_records: Sequence[SpanRecord],
    server_records: Sequence[SpanRecord],
    *,
    align_clocks: bool = True,
) -> AssembledTrace:
    """Merge client and server span journals into one coherent forest.

    Span ids are namespaced by origin (``c:`` / ``s:``) because both
    tracers draw from deterministic counters and may emit identical ids.
    Cross-process parent links (server spans the service marked
    ``remote_parent`` at submit time) are rewritten to the client
    namespace, so the server's request subtree hangs under the client's
    wire span.  Trace ids are kept shared exactly for the server
    subtrees rooted at a remote-parented span (those *are* the
    cross-process traces) and namespaced ``s:`` otherwise, so the
    server's internal root traces (drain batches and friends) cannot
    collide with client trace ids -- even when the seeded counters make
    them textually equal.

    Server timestamps are shifted by the median midpoint-rule clock
    offset (see module docstring) when ``align_clocks`` is true.
    """
    client_ids = {record.span_id for record in client_records}
    server_ids = {record.span_id for record in server_records}
    # Server spans genuinely part of a propagated trace: the
    # remote-parented spans plus their server-side descendants.  Trace
    # ids are compared per *subtree*, not per id -- a server-local root
    # trace can textually collide with a client trace id (both counters
    # start at zero) and must stay a separate trace.
    children: Dict[str, List[str]] = {}
    for record in server_records:
        if record.parent_id is not None and not _is_remote(record):
            children.setdefault(record.parent_id, []).append(record.span_id)
    shared_spans: set = set()
    frontier = [
        record.span_id for record in server_records if _is_remote(record)
    ]
    while frontier:
        span_id = frontier.pop()
        if span_id in shared_spans:
            continue
        shared_spans.add(span_id)
        frontier.extend(children.get(span_id, ()))

    offset = 0.0
    matched = 0
    if align_clocks:
        offset, matched = estimate_clock_offset(client_records, server_records)

    merged: List[SpanRecord] = []
    cross_traces = set()
    for record in client_records:
        parent = record.parent_id
        merged.append(
            SpanRecord(
                trace_id=record.trace_id,
                span_id=_namespace("c:", record.span_id),
                parent_id=(
                    _namespace("c:", parent)
                    if parent is not None and parent in client_ids
                    else parent
                ),
                name=record.name,
                start=record.start,
                duration=record.duration,
                attrs=dict(record.attrs),
            )
        )
    for record in server_records:
        parent = record.parent_id
        if parent is None:
            new_parent: Optional[str] = None
        elif _is_remote(record):
            if parent in client_ids:
                new_parent = _namespace("c:", parent)
                cross_traces.add(record.trace_id)
            else:
                # Remote parent whose client journal is missing: keep
                # the raw id; render_span_tree promotes it to a root.
                new_parent = parent
        elif parent in server_ids:
            new_parent = _namespace("s:", parent)
        else:
            new_parent = parent
        merged.append(
            SpanRecord(
                trace_id=(
                    record.trace_id
                    if record.span_id in shared_spans
                    else _namespace("s:", record.trace_id)
                ),
                span_id=_namespace("s:", record.span_id),
                parent_id=new_parent,
                name=record.name,
                start=record.start + offset,
                duration=record.duration,
                attrs=dict(record.attrs),
            )
        )

    merged.sort(key=lambda record: (record.trace_id, record.start, record.span_id))
    return AssembledTrace(
        records=merged,
        clock_offset=offset,
        matched_pairs=matched,
        cross_traces=len(cross_traces),
        client_spans=len(client_records),
        server_spans=len(server_records),
    )


def assemble_files(
    client_path: str,
    server_path: str,
    *,
    align_clocks: bool = True,
) -> AssembledTrace:
    """Load two trace JSONL journals from disk and :func:`assemble` them."""
    from repro.obs.export import load_trace_jsonl

    return assemble(
        load_trace_jsonl(client_path),
        load_trace_jsonl(server_path),
        align_clocks=align_clocks,
    )
