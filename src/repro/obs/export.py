"""Exporters: metrics to Prometheus/JSON, traces to trees and reports.

The service's :class:`~repro.service.metrics.MetricsRegistry` keeps label
*values* as plain tuples (``("rejected", "equation")``); the Prometheus
renderer assigns positional label names (``label0``, ``label1``, ...) so
any registry exports without per-metric schema knowledge.  Histograms
render as Prometheus summaries (``quantile`` series + ``_sum`` +
``_count``).

:func:`parse_prometheus` is the deliberately minimal inverse -- enough to
round-trip what :func:`render_prometheus` produces, which the exporter
tests use to prove no sample is lost or mangled in text form.

Trace-side, :func:`render_span_tree` turns a flat list of
:class:`~repro.obs.trace.SpanRecord` back into ASCII parent/child trees
and :func:`top_slowest` ranks spans by duration -- the two reports behind
``repro obs-report``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SerializationError, ServiceError
from repro.obs.trace import SpanRecord

if TYPE_CHECKING:  # duck-typed at runtime, so repro.obs never imports
    from repro.service.metrics import MetricsRegistry  # the service layer

__all__ = [
    "load_trace_jsonl",
    "parse_prometheus",
    "registry_to_json",
    "render_prometheus",
    "render_span_tree",
    "summarize_events",
    "top_slowest",
]

#: Parsed Prometheus samples: ``{metric: {((label, value), ...): sample}}``.
PromSamples = Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]


def _format_value(value: float) -> str:
    """Format a sample so ``float()`` parses it back exactly."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


#: Prometheus label-value escapes: backslash, double quote, newline.
_LABEL_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


def _parse_label_body(body: str) -> List[Tuple[str, str]]:
    """Parse the inside of a ``{...}`` label set, honouring escapes.

    A naive ``split(",")`` breaks on label values containing ``,``, ``=``,
    ``"`` or ``\\`` -- this scanner walks the quoted values character by
    character instead, undoing the three Prometheus escapes
    (``\\\\``, ``\\"``, ``\\n``) as it goes.
    """
    pairs: List[Tuple[str, str]] = []
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise SerializationError(f"label pair without '=': {body[i:]!r}")
        key = body[i:eq]
        if not key:
            raise SerializationError("empty label name")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise SerializationError(f"unquoted label value for {key!r}")
        i = eq + 2
        chars: List[str] = []
        while True:
            if i >= n:
                raise SerializationError(f"unterminated label value for {key!r}")
            char = body[i]
            if char == "\\":
                if i + 1 >= n or body[i + 1] not in _LABEL_UNESCAPES:
                    raise SerializationError(
                        f"bad escape in label value for {key!r}"
                    )
                chars.append(_LABEL_UNESCAPES[body[i + 1]])
                i += 2
            elif char == '"':
                i += 1
                break
            else:
                chars.append(char)
                i += 1
        pairs.append((key, "".join(chars)))
        if i < n:
            if body[i] != ",":
                raise SerializationError(f"expected ',' between labels, got {body[i]!r}")
            i += 1
            if i >= n:
                raise SerializationError("trailing ',' in label set")
    return pairs


def render_prometheus(
    registry: "MetricsRegistry", namespace: str = "repro"
) -> str:
    """Render a metrics registry in the Prometheus text exposition format.

    Counters keep their registered names (the repo convention already
    suffixes them ``_total``), gauges render as-is, histograms render as
    summaries with ``quantile`` labels plus ``_sum``/``_count``/``_max``
    series.  Label values are emitted under positional names ``label0``,
    ``label1``, ...
    """
    prefix = f"{namespace}_" if namespace else ""
    lines: List[str] = []
    for name, counter in sorted(registry.counters().items()):
        metric = f"{prefix}{name}"
        lines.append(f"# TYPE {metric} counter")
        for labels, count in sorted(counter.cells().items()):
            pairs = [(f"label{i}", value) for i, value in enumerate(labels)]
            lines.append(
                f"{metric}{_format_labels(pairs)} {_format_value(count)}"
            )
    for name, gauge in sorted(registry.gauges().items()):
        metric = f"{prefix}{name}"
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in sorted(gauge.cells().items()):
            pairs = [(f"label{i}", atom) for i, atom in enumerate(labels)]
            lines.append(
                f"{metric}{_format_labels(pairs)} {_format_value(value)}"
            )
    for name, histogram in sorted(registry.histograms().items()):
        metric = f"{prefix}{name}"
        summary = histogram.summary()
        lines.append(f"# TYPE {metric} summary")
        for quantile in ("0.5", "0.95", "0.99"):
            key = "p" + quantile.replace("0.", "").ljust(2, "0")
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_value(summary[key])}"
            )
        # _sum/_count follow the Prometheus convention (all-time totals);
        # quantiles and _max are window-scoped, so the window size is
        # exported alongside them to make that scope explicit.
        lines.append(f"{metric}_sum {_format_value(summary['sum'])}")
        lines.append(f"{metric}_count {_format_value(summary['count'])}")
        lines.append(
            f"{metric}_window_count {_format_value(summary['window_count'])}"
        )
        lines.append(f"{metric}_max {_format_value(summary['max'])}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> PromSamples:
    """Parse Prometheus text format (the subset this package emits).

    Returns ``{metric_name: {labels: value}}`` with labels as a sorted
    tuple of ``(name, value)`` pairs.  Comment and blank lines are
    skipped; anything else that fails to parse raises
    :class:`~repro.errors.ServiceError`.
    """
    samples: PromSamples = {}
    # The exposition format is "\n"-delimited; str.splitlines would also
    # break on stray Unicode separators inside quoted label values.
    for raw in text.split("\n"):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
            if "{" in name_part:
                metric, label_body = name_part.split("{", 1)
                if not label_body.endswith("}"):
                    raise SerializationError("unterminated label set")
                labels = tuple(sorted(_parse_label_body(label_body[:-1])))
            else:
                metric, labels = name_part, ()
        except (ValueError, SerializationError) as exc:
            raise ServiceError(f"malformed Prometheus line: {raw!r}") from exc
        samples.setdefault(metric, {})[labels] = value
    return samples


def registry_to_json(registry: "MetricsRegistry", indent: int = 2) -> str:
    """Render a metrics registry as deterministic JSON."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Trace reports
# ----------------------------------------------------------------------
def load_trace_jsonl(path: str) -> List[SpanRecord]:
    """Load span records from a JSONL trace file."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"malformed trace line: {line[:80]!r}"
                ) from exc
            records.append(SpanRecord.from_dict(payload))
    return records


def _attr_text(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    body = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"  [{body}]"


def render_span_tree(
    records: Iterable[SpanRecord],
    *,
    max_traces: Optional[int] = None,
) -> str:
    """Render finished spans as one ASCII tree per trace.

    Traces are ordered by their root's start time; children are ordered
    by start time (span id breaks ties).  Spans whose parent never
    finished (sampling races, crashes) are promoted to roots rather than
    dropped.
    """
    by_trace: Dict[str, List[SpanRecord]] = {}
    for record in records:
        by_trace.setdefault(record.trace_id, []).append(record)
    lines: List[str] = []
    ordered_traces = sorted(
        by_trace.items(),
        key=lambda item: min(r.start for r in item[1]),
    )
    if max_traces is not None:
        ordered_traces = ordered_traces[:max_traces]
    for trace_id, spans in ordered_traces:
        ids = {span.span_id for span in spans}
        children: Dict[Optional[str], List[SpanRecord]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)
        for bucket in children.values():
            bucket.sort(key=lambda r: (r.start, r.span_id))
        lines.append(f"trace {trace_id}")

        def walk(span: SpanRecord, prefix: str, is_last: bool) -> None:
            branch = "└─ " if is_last else "├─ "
            lines.append(
                f"{prefix}{branch}{span.name} "
                f"{span.duration * 1e3:.3f}ms{_attr_text(span.attrs)}"
            )
            extension = "   " if is_last else "│  "
            kids = children.get(span.span_id, [])
            for index, kid in enumerate(kids):
                walk(kid, prefix + extension, index == len(kids) - 1)

        roots = children.get(None, [])
        for index, root in enumerate(roots):
            walk(root, "", index == len(roots) - 1)
    return "\n".join(lines)


def top_slowest(
    records: Iterable[SpanRecord],
    n: int = 10,
    *,
    name: Optional[str] = None,
) -> str:
    """Return a table of the ``n`` slowest spans (optionally one name)."""
    pool = [r for r in records if name is None or r.name == name]
    pool.sort(key=lambda r: (-r.duration, r.trace_id, r.span_id))
    title = f"top {min(n, len(pool))} slowest spans" + (
        f" (name={name})" if name else ""
    )
    lines = [title, "duration ms | trace      | span", "-" * 44]
    for record in pool[:n]:
        lines.append(
            f"{record.duration * 1e3:11.3f} | {record.trace_id} | "
            f"{record.name}{_attr_text(record.attrs)}"
        )
    return "\n".join(lines)


def summarize_events(events: Iterable[Dict[str, object]]) -> str:
    """Summarize a structured event stream: counts per kind + reasons.

    Wire-server events (``conn_open``/``conn_close``/``drain``, emitted
    by :class:`repro.net.server.AdmissionServer` since the wire layer
    landed) get their own section: connection churn, requests served on
    closed connections, and in-flight requests flushed by drains.
    """
    kinds: Dict[str, int] = {}
    reasons: Dict[str, int] = {}
    total = 0
    conn_requests = 0
    drain_flushed = 0
    for event in events:
        total += 1
        kind = str(event.get("kind", "?"))
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "rejection":
            reason = str(event.get("reason", "unknown"))
            reasons[reason] = reasons.get(reason, 0) + 1
        elif kind == "conn_close":
            conn_requests += int(event.get("requests", 0) or 0)
        elif kind == "drain":
            drain_flushed += int(event.get("in_flight_flushed", 0) or 0)
    lines = [f"{total} event(s)"]
    for kind in sorted(kinds):
        lines.append(f"  {kind}: {kinds[kind]}")
    if reasons:
        lines.append("rejection reasons:")
        for reason in sorted(reasons):
            lines.append(f"  {reason}: {reasons[reason]}")
    opens = kinds.get("conn_open", 0)
    closes = kinds.get("conn_close", 0)
    drains = kinds.get("drain", 0)
    if opens or closes or drains:
        lines.append("wire:")
        lines.append(f"  connections: {opens} opened, {closes} closed")
        if closes:
            lines.append(f"  requests on closed connections: {conn_requests}")
        if drains:
            lines.append(
                f"  drains: {drains} ({drain_flushed} in-flight flushed)"
            )
    return "\n".join(lines)
