"""The ``Instrumentation`` protocol: no-op by default, pluggable depth.

The core validators (:mod:`repro.validation.tree_validator`,
:mod:`repro.core.grouped_zeta`, :mod:`repro.core.incremental`) accept an
optional instrumentation object and report bulk counters (equations
checked, tree nodes visited) and coarse spans through it.  Three
implementations:

* :class:`Instrumentation` -- the base class doubles as the no-op: every
  method does nothing and :meth:`span` returns the shared
  :data:`~repro.obs.trace.NULL_SPAN`.  Call sites pass ``None`` (and the
  validators skip the calls entirely) or :data:`NOOP`; either way the
  un-instrumented hot path stays fast -- pinned by
  ``benchmarks/bench_obs_overhead.py``.
* :class:`CountingInstrumentation` -- accumulates named counters in a
  dict; what the validator tests use to assert equation/node budgets.
* :class:`TracingInstrumentation` -- counts *and* opens real spans on a
  :class:`~repro.obs.trace.Tracer`, attaching each counter as a span
  attribute when a span is active.

Counters are reported in bulk (once per validate call / per group), not
per equation, so even live instrumentation adds O(groups) work, never
O(2^N).
"""

from __future__ import annotations

import threading
from typing import Dict, Union

from repro.obs.trace import NULL_SPAN, Span, Tracer, _NullSpan

__all__ = [
    "NOOP",
    "CountingInstrumentation",
    "Instrumentation",
    "TracingInstrumentation",
]


class Instrumentation:
    """No-op base implementation *and* the protocol call sites rely on."""

    __slots__ = ()

    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        """Record ``amount`` occurrences of a named counter."""

    def span(
        self, name: str, parent: object = None, **attrs: object
    ) -> Union[Span, _NullSpan]:
        """Open a span context manager around a unit of work.

        ``parent`` accepts anything the tracer's duck-typed parent
        contract does -- including a remote
        :class:`repro.obs.distrib.TraceContext` -- and is ignored by the
        no-op.
        """
        return NULL_SPAN

    def counters(self) -> Dict[str, Union[int, float]]:
        """Return accumulated counters (empty for the no-op)."""
        return {}


#: Shared stateless no-op instance.
NOOP = Instrumentation()


class CountingInstrumentation(Instrumentation):
    """Accumulate counters in memory; spans stay no-ops.

    Examples
    --------
    >>> instr = CountingInstrumentation()
    >>> instr.count("equations_checked", 7)
    >>> instr.count("equations_checked", 3)
    >>> instr.counters()
    {'equations_checked': 10}
    """

    __slots__ = ("_lock", "_counts")

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: Dict[str, Union[int, float]] = {}

    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def counters(self) -> Dict[str, Union[int, float]]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._counts.clear()


class TracingInstrumentation(CountingInstrumentation):
    """Counting plus real spans on a tracer.

    Each :meth:`count` call also increments a same-named attribute on the
    tracer's current span (when one is active), so per-group spans carry
    their own equation budgets.
    """

    __slots__ = ("tracer",)

    def __init__(self, tracer: Tracer):
        super().__init__()
        self.tracer = tracer

    def count(self, name: str, amount: Union[int, float] = 1) -> None:
        super().count(name, amount)
        current = self.tracer.current()
        if current is not None:
            current.inc_attr(name, amount)

    def span(self, name: str, parent: object = None, **attrs: object):
        return self.tracer.span(name, parent, **attrs)  # type: ignore[arg-type]
