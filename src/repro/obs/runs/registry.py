"""Append-only JSONL run registry.

The registry is one directory (``benchmarks/runs/`` by convention)
holding ``registry.jsonl``: one JSON object per line, one line per
:class:`~repro.obs.runs.record.RunRecord`, appended when a bench /
loadgen / serve-bench session finishes and never rewritten.  History
accumulates in file order, which doubles as record order -- there is no
index to corrupt and a partial write can at worst truncate the final
line (which :meth:`RunRegistry.load` reports precisely).

Run ids come from a *seeded counter*, not a clock: the next id is
``run-%06d`` of (number of existing records + 1).  Two registries built
from the same run sequence therefore assign the same ids, which is what
makes report rendering byte-stable and lets tests pin attribution
output exactly (REP001 bans wall-clock ids for exactly this reason).

Baseline selection for attribution follows the gate's convention: the
*latest* record of a kind is the candidate under test and the
*previous* record of the same kind is its baseline.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import RunRegistryError
from repro.obs.runs.record import RunRecord

__all__ = ["REGISTRY_FILENAME", "RunRegistry"]

#: The single append-only file inside a registry directory.
REGISTRY_FILENAME = "registry.jsonl"


class RunRegistry:
    """Reader/appender for one ``registry.jsonl`` directory.

    Parameters
    ----------
    root:
        Directory holding (or to hold) :data:`REGISTRY_FILENAME`.  It is
        created lazily on the first append; a registry over a missing
        directory simply loads as empty.

    Examples
    --------
    >>> import tempfile
    >>> from repro.obs.runs import RunRecord, RunRegistry
    >>> with tempfile.TemporaryDirectory() as root:
    ...     registry = RunRegistry(root)
    ...     record = RunRecord(run_id=registry.next_run_id(), kind="bench")
    ...     _ = registry.append(record)
    ...     [r.run_id for r in registry.load()]
    ['run-000001']
    """

    def __init__(self, root: str):
        if not root:
            raise RunRegistryError("run registry needs a root directory")
        self.root = root
        self.path = os.path.join(root, REGISTRY_FILENAME)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> List[RunRecord]:
        """Return every record in append order.

        A missing registry file is an empty registry.  A malformed line
        raises :class:`RunRegistryError` naming the line number -- an
        append-only file that stopped parsing mid-way means truncation
        or hand-editing, and silently dropping history would poison
        baseline selection.
        """
        if not os.path.exists(self.path):
            return []
        records: List[RunRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise RunRegistryError(
                        f"{self.path}:{lineno}: not valid JSON "
                        f"(truncated append?): {exc}"
                    ) from exc
                if not isinstance(payload, dict):
                    raise RunRegistryError(
                        f"{self.path}:{lineno}: expected a JSON object, "
                        f"got {type(payload).__name__}"
                    )
                records.append(RunRecord.from_dict(payload))
        return records

    def count(self) -> int:
        """Number of recorded runs."""
        return len(self.load())

    def get(self, run_id: str) -> RunRecord:
        """Return the record with ``run_id`` or raise."""
        for record in self.load():
            if record.run_id == run_id:
                return record
        raise RunRegistryError(
            f"run {run_id!r} not found in {self.path}"
        )

    def kinds(self) -> List[str]:
        """Distinct kinds present, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.load():
            seen.setdefault(record.kind, None)
        return list(seen)

    def of_kind(self, kind: str) -> List[RunRecord]:
        """Records of one kind, in append order."""
        return [record for record in self.load() if record.kind == kind]

    def latest(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        """Newest record (optionally of one kind), or ``None``."""
        records = self.load() if kind is None else self.of_kind(kind)
        return records[-1] if records else None

    def baseline(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        """Second-newest record (optionally of one kind), or ``None``.

        This is the attribution baseline for :meth:`latest`: the run the
        candidate is compared against.
        """
        records = self.load() if kind is None else self.of_kind(kind)
        return records[-2] if len(records) >= 2 else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def next_run_id(self) -> str:
        """Next id from the seeded counter (``run-000001``, ...).

        Derived from the current record count, never from a clock, so a
        rebuilt registry reassigns identical ids.
        """
        return f"run-{self.count() + 1:06d}"

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating the registry directory if needed).

        Duplicate run ids are rejected: an append-only log where two
        lines claim the same id makes ``get`` ambiguous and baseline
        diffs meaningless.
        """
        existing = {r.run_id for r in self.load()}
        if record.run_id in existing:
            raise RunRegistryError(
                f"run {record.run_id!r} already recorded in {self.path}"
            )
        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record
