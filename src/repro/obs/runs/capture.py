"""Builders turning live run outputs into :class:`RunRecord` values.

The emitters (``repro serve-bench --record``, ``repro loadgen
--record``, the benchmark session's ``--record-runs``) all end with the
same move: take what the run produced -- a finished
:class:`~repro.service.ValidationService`, a loadgen report JSON, a pile
of bench sections -- and fold it into one registry record.  These
builders own that folding so every emitter captures the same shape and
the attribution engine always finds its fields under the same names.

Builders *never* read ambient time: ``recorded_at`` comes from an
injected clock (0.0 when the caller has none), ids from the registry's
seeded counter, git metadata from an injectable probe.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.obs.runs.record import GitProbe, RunRecord, git_metadata
from repro.obs.runs.registry import RunRegistry

__all__ = [
    "build_bench_record",
    "build_loadgen_record",
    "build_serve_bench_record",
    "counter_totals",
]

#: Optional wall clock for ``recorded_at`` (injected, never ambient).
Clock = Callable[[], float]


def counter_totals(snapshot: Mapping[str, object]) -> Dict[str, float]:
    """Flatten a ``MetricsRegistry.snapshot()`` into per-counter totals.

    Label cells are summed (``requests_total`` = accepted + rejected +
    ...), which is the granularity attribution diffs at.
    """
    totals: Dict[str, float] = {}
    counters = snapshot.get("counters")
    if not isinstance(counters, Mapping):
        return totals
    for name, cells in sorted(counters.items()):
        if isinstance(cells, Mapping):
            totals[str(name)] = float(sum(cells.values()))
    return totals


def _stamp(clock: Optional[Clock]) -> float:
    return float(clock()) if clock is not None else 0.0


def build_serve_bench_record(
    registry: RunRegistry,
    service,
    *,
    elapsed: float,
    requests: int,
    accepted: int,
    config: Optional[Mapping[str, object]] = None,
    label: str = "",
    clock: Optional[Clock] = None,
    git_probe: Optional[GitProbe] = None,
) -> RunRecord:
    """Build (not append) a ``serve-bench`` record from a finished
    in-process service run."""
    snapshot = service.metrics.snapshot()
    latency = service.metrics.histogram("latency_seconds")
    stats: Dict[str, float] = {
        "rps": requests / elapsed if elapsed > 0 else 0.0,
        "p50": latency.quantile(0.50),
        "p95": latency.quantile(0.95),
        "p99": latency.quantile(0.99),
        "requests": float(requests),
        "accepted": float(accepted),
        "rejected": float(requests - accepted),
        "elapsed": float(elapsed),
    }
    health = None
    slos: list = []
    if service.monitor is not None:
        health = service.monitor.snapshot()
        slos = [dict(entry) for entry in health.get("slos", ())]
    return RunRecord(
        run_id=registry.next_run_id(),
        kind="serve-bench",
        label=label,
        recorded_at=_stamp(clock),
        git=git_metadata(git_probe),
        config=dict(config or {}),
        stats=stats,
        counters=counter_totals(snapshot),
        metrics=snapshot,
        health=health,
        slos=slos,
    )


def _bench_headline(
    sections: Mapping[str, object],
) -> Dict[str, float]:
    """Pull headline stats out of recorded bench sections.

    The service throughput sweep's highest shard count is the headline
    configuration (it is what the gate's throughput floor watches);
    ``equations`` from the same entry lands in the counters via
    :func:`build_bench_record`.
    """
    stats: Dict[str, float] = {}
    sweep = sections.get("throughput_vs_shards")
    if isinstance(sweep, Mapping):
        runs = sweep.get("runs")
        if isinstance(runs, Mapping) and runs:
            best = runs[max(runs, key=int)]
            if isinstance(best, Mapping):
                for name in ("rps", "p50", "p95", "p99", "elapsed"):
                    if name in best:
                        stats[name] = float(best[name])  # type: ignore[arg-type]
    return stats


def build_bench_record(
    registry: RunRegistry,
    sections: Mapping[str, object],
    artifacts: Mapping[str, str],
    *,
    config: Optional[Mapping[str, object]] = None,
    label: str = "",
    clock: Optional[Clock] = None,
    git_probe: Optional[GitProbe] = None,
) -> RunRecord:
    """Build (not append) a ``bench`` record from one benchmark session.

    ``sections`` are the merged ``BENCH_service.json`` /
    ``BENCH_kernel.json`` payloads the session produced; ``artifacts``
    the rendered ``benchmarks/results`` text summaries keyed by stem.
    """
    counters: Dict[str, float] = {}
    sweep = sections.get("throughput_vs_shards")
    if isinstance(sweep, Mapping):
        runs = sweep.get("runs")
        if isinstance(runs, Mapping) and runs:
            best = runs[max(runs, key=int)]
            if isinstance(best, Mapping) and "equations" in best:
                counters["equations_checked_total"] = float(
                    best["equations"]  # type: ignore[arg-type]
                )
    return RunRecord(
        run_id=registry.next_run_id(),
        kind="bench",
        label=label,
        recorded_at=_stamp(clock),
        git=git_metadata(git_probe),
        config=dict(config or {}),
        stats=_bench_headline(sections),
        counters=counters,
        bench={name: sections[name] for name in sorted(sections)},
        artifacts={stem: str(text) for stem, text in sorted(artifacts.items())},
    )


def build_loadgen_record(
    registry: RunRegistry,
    payload: Mapping[str, object],
    *,
    config: Optional[Mapping[str, object]] = None,
    label: str = "",
    clock: Optional[Clock] = None,
    git_probe: Optional[GitProbe] = None,
) -> RunRecord:
    """Build (not append) a ``loadgen`` record from a
    :meth:`~repro.net.loadgen.LoadReport.to_json` payload.

    The report's ``phases_us`` means carry straight over; the client's
    ``wire`` remainder is normalised to the registry's ``wire_us`` key.
    """
    stats: Dict[str, float] = {}
    for name in ("rps", "p50", "p95", "p99", "elapsed"):
        if name in payload:
            stats[name] = float(payload[name])  # type: ignore[arg-type]
    for name in ("requests", "measured", "accepted", "retries"):
        if name in payload:
            stats[name] = float(payload[name])  # type: ignore[arg-type]
    rejected = payload.get("rejected")
    if isinstance(rejected, Mapping):
        stats["rejected"] = float(sum(rejected.values()))
    phases_us: Dict[str, float] = {}
    raw_phases = payload.get("phases_us")
    if isinstance(raw_phases, Mapping):
        for phase, mean in sorted(raw_phases.items()):
            key = "wire_us" if phase == "wire" else str(phase)
            phases_us[key] = float(mean)  # type: ignore[arg-type]
    counters: Dict[str, float] = {}
    for name in ("overloaded_failures", "retries"):
        if name in payload:
            counters[name] = float(payload[name])  # type: ignore[arg-type]
    return RunRecord(
        run_id=registry.next_run_id(),
        kind="loadgen",
        label=label,
        recorded_at=_stamp(clock),
        git=git_metadata(git_probe),
        config=dict(config or {}),
        stats=stats,
        phases_us=phases_us,
        counters=counters,
    )
