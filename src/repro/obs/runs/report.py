"""The auto-generated performance report.

One markdown document rendered from a :class:`~repro.obs.runs.registry.RunRegistry`:
run inventory, per-kind rps/p99 trajectories (tables plus ASCII trend
charts via :func:`repro.analysis.charts.bar_chart`), the latest run's
phase breakdown, the kernel crossover figure straight from the recorded
``BENCH_kernel.json`` section, and a regression-attribution section
comparing each kind's latest run against its predecessor.

Everything is a pure function of the registry contents: same records in,
same bytes out.  That is what lets tests pin the report and what makes
the committed ``benchmarks/results/*.txt`` regenerable -- those text
summaries are stored as run *artifacts*, so :func:`render_results`
reproduces them from the newest recorded run and :func:`results_drift`
checks the working tree against the registry exactly like the
``docs/API.md`` drift gate checks generated docs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis.charts import bar_chart
from repro.analysis.tables import format_seconds
from repro.errors import RunRegistryError
from repro.obs.runs.attribution import attribute
from repro.obs.runs.record import PHASE_KEYS, RunRecord
from repro.obs.runs.registry import RunRegistry

__all__ = ["render_report", "render_results", "results_drift"]


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def _fmt_rps(value: float) -> str:
    return f"{value:,.0f} req/s"


def _fmt_us(value: float) -> str:
    return f"{value:.1f} µs"


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _code_block(text: str) -> List[str]:
    return ["```text", *text.split("\n"), "```"]


def _inventory(records: List[RunRecord]) -> List[str]:
    rows = []
    for record in records:
        rows.append(
            [
                record.run_id,
                record.kind,
                record.label or "-",
                record.short_commit(),
                f"{record.stat('rps'):,.0f}" if "rps" in record.stats else "-",
                _fmt_ms(record.stat("p99")) if "p99" in record.stats else "-",
            ]
        )
    return [
        "## Run inventory",
        "",
        *_table(["run", "kind", "label", "commit", "rps", "p99 ms"], rows),
    ]


def _trajectory(kind: str, records: List[RunRecord]) -> List[str]:
    timed = [r for r in records if "rps" in r.stats or "p99" in r.stats]
    if not timed:
        return []
    lines = [f"## Trajectory — {kind}", ""]
    rows = [
        [
            r.run_id,
            r.short_commit(),
            f"{r.stat('rps'):,.0f}",
            _fmt_ms(r.stat("p50")),
            _fmt_ms(r.stat("p95")),
            _fmt_ms(r.stat("p99")),
        ]
        for r in timed
    ]
    lines.extend(
        _table(["run", "commit", "rps", "p50 ms", "p95 ms", "p99 ms"], rows)
    )
    rps_points = [(r.run_id, r.stat("rps")) for r in timed]
    p99_points = [(r.run_id, r.stat("p99")) for r in timed]
    if any(value > 0 for _x, value in rps_points):
        lines.append("")
        lines.extend(
            _code_block(
                bar_chart(
                    {"rps": rps_points},
                    title=f"{kind} throughput trend",
                    log_scale=False,
                    value_format=_fmt_rps,
                    x_prefix="",
                )
            )
        )
    if any(value > 0 for _x, value in p99_points):
        lines.append("")
        lines.extend(
            _code_block(
                bar_chart(
                    {"p99": p99_points},
                    title=f"{kind} p99 latency trend",
                    log_scale=False,
                    value_format=format_seconds,
                    x_prefix="",
                )
            )
        )
    return lines


def _phase_breakdown(kind: str, records: List[RunRecord]) -> List[str]:
    phased = [r for r in records if r.phases_us]
    if not phased:
        return []
    latest = phased[-1]
    phases = [key for key in PHASE_KEYS if key in latest.phases_us]
    extra = sorted(set(latest.phases_us) - set(PHASE_KEYS))
    phases.extend(extra)
    total = sum(latest.phase_us(key) for key in phases)
    rows = [
        [
            key,
            f"{latest.phase_us(key):.1f}",
            f"{latest.phase_us(key) / total:.1%}" if total else "-",
        ]
        for key in phases
    ]
    lines = [
        f"## Phase breakdown — {kind} ({latest.run_id})",
        "",
        *_table(["phase", "mean µs", "share"], rows),
        "",
    ]
    lines.extend(
        _code_block(
            bar_chart(
                {"mean": [(key, latest.phase_us(key)) for key in phases]},
                title=f"{kind} per-request phase means",
                log_scale=False,
                value_format=_fmt_us,
                x_prefix="",
            )
        )
    )
    return lines


def _kernel_crossover(records: List[RunRecord]) -> List[str]:
    """The kernel crossover figure, from the newest run carrying the
    recorded ``kernel_crossover`` bench section."""
    for record in reversed(records):
        section = record.bench.get("kernel_crossover")
        if not isinstance(section, dict) or "sizes" not in section:
            continue
        sizes: Dict[str, Dict[str, float]] = section["sizes"]  # type: ignore[assignment]
        ns = sorted(sizes, key=int)
        tree = [(n, float(sizes[n].get("tree_s", 0.0))) for n in ns]
        dense = [(n, float(sizes[n].get("dense_s", 0.0))) for n in ns]
        chart = bar_chart(
            {"tree": tree, "dense": dense},
            title=f"kernel crossover ({record.run_id})",
            log_scale=True,
            value_format=format_seconds,
        )
        rows = [
            [
                n,
                format_seconds(float(sizes[n].get("tree_s", 0.0))),
                format_seconds(float(sizes[n].get("dense_s", 0.0))),
                f"{float(sizes[n].get('speedup', 0.0)):.1f}x",
                "yes" if sizes[n].get("identical") else "NO",
            ]
            for n in ns
        ]
        return [
            "## Kernel crossover",
            "",
            *_table(
                ["N", "tree total", "dense total", "speedup", "identical"],
                rows,
            ),
            "",
            *_code_block(chart),
        ]
    return []


def _attribution(kind: str, records: List[RunRecord]) -> List[str]:
    lines = [f"## Regression attribution — {kind}", ""]
    if len(records) < 2:
        lines.append(
            f"Only one {kind} run recorded — no baseline to attribute "
            f"against yet."
        )
        return lines
    try:
        comparison = attribute(records[-2], records[-1])
    except RunRegistryError as exc:
        lines.append(f"Attribution unavailable: {exc}")
        return lines
    lines.extend(_code_block(comparison.render()))
    return lines


def render_report(
    registry: RunRegistry, title: str = "Performance report"
) -> str:
    """Render the full markdown report (see module docstring).

    An empty registry renders a well-formed \"no runs recorded\" report
    rather than raising -- fresh checkouts and zero-data environments
    still get a document.
    """
    records = registry.load()
    lines = [f"# {title}", ""]
    if not records:
        lines.append("No runs recorded. Record one with:")
        lines.append("")
        lines.extend(
            _code_block(
                "REPRO_BENCH_RECORD=1 python -m pytest benchmarks/ -q"
            )
        )
        return "\n".join(lines) + "\n"
    lines.append(
        f"{len(records)} recorded run(s); newest is "
        f"`{records[-1].run_id}` ({records[-1].kind})."
    )
    lines.append("")
    lines.extend(_inventory(records))
    kinds: List[str] = []
    for record in records:
        if record.kind not in kinds:
            kinds.append(record.kind)
    for kind in kinds:
        of_kind = [r for r in records if r.kind == kind]
        for section in (
            _trajectory(kind, of_kind),
            _phase_breakdown(kind, of_kind),
        ):
            if section:
                lines.append("")
                lines.extend(section)
    crossover = _kernel_crossover(records)
    if crossover:
        lines.append("")
        lines.extend(crossover)
    for kind in kinds:
        lines.append("")
        lines.extend(_attribution(kind, [r for r in records if r.kind == kind]))
    return "\n".join(lines) + "\n"


def render_results(
    registry: RunRegistry, kind: Optional[str] = "bench"
) -> Dict[str, str]:
    """Return ``{stem: file text}`` for the newest run carrying artifacts.

    These are the ``benchmarks/results/<stem>.txt`` summaries exactly as
    the bench session rendered them (trailing newline included), so a
    caller can rewrite the results directory from the registry.  Empty
    when no matching run recorded artifacts.
    """
    records = registry.load() if kind is None else registry.of_kind(kind)
    for record in reversed(records):
        if record.artifacts:
            return {
                stem: text if text.endswith("\n") else text + "\n"
                for stem, text in sorted(record.artifacts.items())
            }
    return {}


def results_drift(
    registry: RunRegistry,
    results_dir: str,
    kind: Optional[str] = "bench",
) -> List[str]:
    """Compare on-disk results files against the registry's artifacts.

    Returns one message per drifted file (missing, extra content, or
    byte mismatch); empty means the working tree matches the recorded
    run.  Only stems present in the registry are checked -- figure
    tables produced by the analysis experiments, not the bench session,
    are out of scope.
    """
    drift: List[str] = []
    expected = render_results(registry, kind)
    if not expected:
        return drift
    for stem, text in expected.items():
        path = os.path.join(results_dir, f"{stem}.txt")
        if not os.path.exists(path):
            drift.append(f"{stem}.txt: missing (expected from registry)")
            continue
        with open(path, "r", encoding="utf-8") as handle:
            actual = handle.read()
        if actual != text:
            drift.append(
                f"{stem}.txt: differs from the recorded run "
                f"(regenerate with `repro report --results-dir`)"
            )
    return drift
