"""Cross-run regression attribution.

Given two :class:`~repro.obs.runs.record.RunRecord` instances -- a
baseline and the candidate under test -- :func:`attribute` names *what*
regressed (the headline rps / p99 movement) and *where* (which pipeline
phase grew, which counters moved with it).  The output is a plain
:class:`Attribution` value with a deterministic :meth:`~Attribution.render`,
so the gate can print the same section byte-for-byte for the same pair
of runs.

Ranking model: per-request latency is (to first order) the sum of the
phase means, so each phase's *absolute microsecond delta* is its direct
contribution to the latency movement.  Phases are ranked by that
contribution share; counters are ranked by relative change.  No
statistics beyond arithmetic -- two runs give one sample each, and the
point is a pointer for a human ("revalidate doubled"), not a p-value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RunRegistryError
from repro.obs.runs.record import PHASE_KEYS, RunRecord

__all__ = [
    "Attribution",
    "CounterDelta",
    "PhaseDelta",
    "StatDelta",
    "attribute",
]

#: Headline stats worth surfacing, with direction: +1 means "bigger is
#: better" (a drop is a regression), -1 the opposite.
_HEADLINE_STATS = (
    ("rps", +1),
    ("p50", -1),
    ("p95", -1),
    ("p99", -1),
)

#: Relative change below which a delta is reported but not flagged.
_NOISE_FLOOR = 0.05


def _ratio(baseline: float, current: float) -> float:
    """Relative change ``(current - baseline) / baseline`` (0 when flat
    from zero, +inf-free: a move away from a zero baseline counts as
    +1.0 per unit of itself, i.e. 1.0)."""
    if baseline == 0.0:
        return 0.0 if current == 0.0 else 1.0
    return (current - baseline) / baseline


@dataclass
class StatDelta:
    """One headline stat compared across the two runs."""

    name: str
    baseline: float
    current: float
    direction: int  # +1 bigger-is-better, -1 smaller-is-better

    @property
    def change(self) -> float:
        return _ratio(self.baseline, self.current)

    @property
    def regressed(self) -> bool:
        return self.change * self.direction < -_NOISE_FLOOR

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "change": self.change,
            "regressed": self.regressed,
        }


@dataclass
class PhaseDelta:
    """One pipeline phase compared across the two runs."""

    phase: str
    baseline_us: float
    current_us: float
    #: Fraction of the total absolute phase movement this phase carries.
    share: float = 0.0

    @property
    def delta_us(self) -> float:
        return self.current_us - self.baseline_us

    @property
    def change(self) -> float:
        return _ratio(self.baseline_us, self.current_us)

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "baseline_us": self.baseline_us,
            "current_us": self.current_us,
            "delta_us": self.delta_us,
            "change": self.change,
            "share": self.share,
        }


@dataclass
class CounterDelta:
    """One monotone counter compared across the two runs."""

    name: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        return _ratio(self.baseline, self.current)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "change": self.change,
        }


@dataclass
class Attribution:
    """The full baseline-vs-candidate comparison (see module docstring)."""

    baseline_id: str
    current_id: str
    kind: str
    stats: List[StatDelta] = field(default_factory=list)
    phases: List[PhaseDelta] = field(default_factory=list)
    counters: List[CounterDelta] = field(default_factory=list)

    def top_phase(self) -> Optional[PhaseDelta]:
        """The phase carrying the largest share of the latency movement
        *in the regressing direction* (grew the most), or ``None`` when
        no phase grew."""
        grew = [p for p in self.phases if p.delta_us > 0.0]
        return grew[0] if grew else None

    def regressed_stats(self) -> List[StatDelta]:
        return [s for s in self.stats if s.regressed]

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline_id": self.baseline_id,
            "current_id": self.current_id,
            "kind": self.kind,
            "stats": [s.to_dict() for s in self.stats],
            "phases": [p.to_dict() for p in self.phases],
            "counters": [c.to_dict() for c in self.counters],
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Deterministic plain-text attribution section.

        Shape::

            attribution: run-000002 vs baseline run-000001 (kind=bench)
              headline: p99 0.80ms -> 1.90ms (+137.5%)  [regressed]
              phases (share of latency movement):
                revalidate_us   120.0 -> 2300.0  (+1816.7%)  share 96.4%
                ...
              counters:
                equations_checked_total  1000 -> 4100  (+310.0%)
              verdict: revalidate is the top regressing phase
        """
        lines = [
            f"attribution: {self.current_id} vs baseline "
            f"{self.baseline_id} (kind={self.kind})"
        ]
        if self.stats:
            lines.append("  headline:")
            for stat in self.stats:
                flag = "  [regressed]" if stat.regressed else ""
                lines.append(
                    f"    {stat.name:<6} {stat.baseline:.6g} -> "
                    f"{stat.current:.6g}  ({stat.change:+.1%}){flag}"
                )
        if self.phases:
            lines.append("  phases (share of latency movement):")
            for phase in self.phases:
                lines.append(
                    f"    {phase.phase:<15} {phase.baseline_us:10.1f} -> "
                    f"{phase.current_us:10.1f} us  ({phase.change:+.1%})"
                    f"  share {phase.share:.1%}"
                )
        if self.counters:
            lines.append("  counters:")
            for counter in self.counters:
                lines.append(
                    f"    {counter.name:<28} {counter.baseline:.6g} -> "
                    f"{counter.current:.6g}  ({counter.change:+.1%})"
                )
        top = self.top_phase()
        if top is not None and any(s.regressed for s in self.stats):
            name = top.phase[:-3] if top.phase.endswith("_us") else top.phase
            lines.append(
                f"  verdict: {name} is the top regressing phase "
                f"({top.share:.0%} of the latency movement)"
            )
        elif any(s.regressed for s in self.stats):
            lines.append(
                "  verdict: headline regressed but no phase grew -- "
                "suspect load shape or environment"
            )
        else:
            lines.append("  verdict: no headline regression")
        return "\n".join(lines)


def attribute(baseline: RunRecord, current: RunRecord) -> Attribution:
    """Compare ``current`` against ``baseline`` (see module docstring).

    The two records must share a kind (comparing a loadgen run against a
    kernel bench names nothing) and at least one stat, phase, or counter
    in common -- otherwise there is nothing to attribute and the caller
    gets a :class:`RunRegistryError` instead of an empty verdict.
    """
    if baseline.kind != current.kind:
        raise RunRegistryError(
            f"cannot attribute across kinds: baseline {baseline.run_id} is "
            f"{baseline.kind!r}, current {current.run_id} is {current.kind!r}"
        )
    stat_names = [
        name
        for name, _direction in _HEADLINE_STATS
        if name in baseline.stats and name in current.stats
    ]
    phase_names = [
        key
        for key in PHASE_KEYS
        if key in baseline.phases_us or key in current.phases_us
    ]
    counter_names = sorted(
        set(baseline.counters) & set(current.counters)
    )
    if not stat_names and not phase_names and not counter_names:
        raise RunRegistryError(
            f"runs {baseline.run_id} and {current.run_id} share no "
            f"comparable stats, phases, or counters"
        )

    stats = [
        StatDelta(
            name=name,
            baseline=baseline.stat(name),
            current=current.stat(name),
            direction=direction,
        )
        for name, direction in _HEADLINE_STATS
        if name in stat_names
    ]

    phases = [
        PhaseDelta(
            phase=key,
            baseline_us=baseline.phase_us(key),
            current_us=current.phase_us(key),
        )
        for key in phase_names
    ]
    total_movement = sum(abs(p.delta_us) for p in phases)
    for phase in phases:
        phase.share = (
            abs(phase.delta_us) / total_movement if total_movement else 0.0
        )
    # Largest mover first; ties broken by pipeline order (stable sort).
    phases.sort(key=lambda p: -abs(p.delta_us))

    counters = [
        CounterDelta(
            name=name,
            baseline=baseline.counters[name],
            current=current.counters[name],
        )
        for name in counter_names
    ]
    counters.sort(key=lambda c: (-abs(c.change), c.name))

    return Attribution(
        baseline_id=baseline.run_id,
        current_id=current.run_id,
        kind=current.kind,
        stats=stats,
        phases=phases,
        counters=counters,
    )
