"""One persisted performance run: the :class:`RunRecord`.

A run is one bench / loadgen / serve-bench / serve session, captured at
the moment it finished: the configuration it ran under, the git state
it measured, its headline stats (rps, latency percentiles, accepted
counts), per-phase server timing means (the PR 7 ``ServerTiming``
echo: queue / match / admission / revalidate, plus the wire
remainder), monotone counters worth attributing regressions to,
optional health/SLO end-state, the gated ``BENCH_*.json`` sections, and
the rendered text artifacts (``benchmarks/results/*.txt`` summaries)
the run produced.

Determinism discipline (REP001): nothing here reads the wall clock or
ambient entropy.  ``recorded_at`` is whatever the caller's injected
clock said (0.0 when unknown), run ids come from the registry's
seeded counter (:meth:`repro.obs.runs.registry.RunRegistry.next_run_id`),
and :func:`git_metadata` shells out through an injectable probe that
tests replace with a canned one.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import RunRegistryError

__all__ = [
    "PHASE_KEYS",
    "RUN_KINDS",
    "GitProbe",
    "RunRecord",
    "git_metadata",
]

#: Canonical per-phase timing keys, in pipeline order.  ``wire_us`` is
#: the client-observed remainder a load generator adds on top of the
#: four server phases.
PHASE_KEYS = (
    "queue_us",
    "match_us",
    "admission_us",
    "revalidate_us",
    "wire_us",
)

#: The run kinds the stack records today.  ``from_dict`` accepts others
#: (the registry is append-only and must keep reading records written
#: by future emitters), but emitters in this repository use these.
RUN_KINDS = ("bench", "serve-bench", "loadgen", "serve")

#: Signature of a git probe: argv after ``git`` -> stripped stdout.
GitProbe = Callable[[List[str]], str]


def _git_probe(args: List[str]) -> str:
    proc = subprocess.run(
        ["git", *args], capture_output=True, text=True, timeout=10
    )
    if proc.returncode != 0:
        raise RunRegistryError(
            f"git {' '.join(args)} failed: {proc.stderr.strip()}"
        )
    return proc.stdout.strip()


def git_metadata(probe: Optional[GitProbe] = None) -> Dict[str, object]:
    """Return ``{commit, branch, dirty}`` for the working tree.

    ``probe`` is injectable (tests pass a canned callable); the default
    shells out to ``git``.  Environments without git (or outside a
    repository) degrade to ``{"commit": None, "branch": None,
    "dirty": None}`` rather than failing the run being recorded.
    """
    probe = probe or _git_probe
    try:
        commit = probe(["rev-parse", "HEAD"])
        branch = probe(["rev-parse", "--abbrev-ref", "HEAD"])
        dirty = bool(probe(["status", "--porcelain"]))
    except (RunRegistryError, OSError, subprocess.SubprocessError):
        return {"commit": None, "branch": None, "dirty": None}
    return {"commit": commit, "branch": branch, "dirty": dirty}


@dataclass
class RunRecord:
    """One finished run (see module docstring).

    Attributes
    ----------
    run_id:
        Registry-assigned id (``run-000001`` ...), unique within one
        registry, drawn from its seeded counter.
    kind:
        Emitter family: ``bench`` (pytest benchmark session),
        ``serve-bench`` (in-process service drive), ``loadgen`` (wire
        load run), ``serve`` (wire server session).
    label:
        Free-form qualifier (``smoke``, ``full``, a sweep name).
    recorded_at:
        Caller-clock timestamp (unix seconds when the caller injected a
        wall clock; 0.0 when unknown).  Never read ambiently here.
    git:
        :func:`git_metadata` output at record time.
    config:
        The knobs the run was configured with (shards, kernel, batch,
        executor, stream length, seed, ...).
    stats:
        Headline scalars: ``rps``, ``p50``/``p95``/``p99`` (seconds),
        ``accepted``, ``rejected``, ``requests``, ``elapsed``.
    phases_us:
        Mean microseconds per request per phase (:data:`PHASE_KEYS`).
    counters:
        Monotone counter totals worth diffing across runs
        (``equations_checked_total``, ``kernel_fallback``, ...).
    metrics:
        Full ``MetricsRegistry.snapshot()`` payload, when available.
    health:
        Final monitor snapshot (``Monitor.snapshot()``), when attached.
    slos:
        Final SLO statuses, when a monitor carried SLOs.
    bench:
        The ``BENCH_*.json`` sections this run produced (gated fields).
    artifacts:
        Rendered text summaries keyed by results-file stem
        (``service_throughput_shards`` -> the table text).
    """

    run_id: str
    kind: str
    label: str = ""
    recorded_at: float = 0.0
    git: Dict[str, object] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    stats: Dict[str, float] = field(default_factory=dict)
    phases_us: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    health: Optional[Dict[str, object]] = None
    slos: List[Dict[str, object]] = field(default_factory=list)
    bench: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.run_id:
            raise RunRegistryError("run record needs a non-empty run_id")
        if not self.kind:
            raise RunRegistryError(f"run {self.run_id} needs a kind")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def stat(self, name: str, default: float = 0.0) -> float:
        """Return one headline stat (``default`` when absent)."""
        value = self.stats.get(name, default)
        return float(value)

    def phase_us(self, phase: str) -> float:
        """Return one phase mean in microseconds (0.0 when absent)."""
        return float(self.phases_us.get(phase, 0.0))

    def short_commit(self) -> str:
        """Return the 10-char commit prefix, or ``-`` when unknown."""
        commit = self.git.get("commit")
        return str(commit)[:10] if commit else "-"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Return the JSONL payload (plain dicts, JSON-safe)."""
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "recorded_at": self.recorded_at,
            "git": dict(self.git),
            "config": dict(self.config),
            "stats": {k: float(v) for k, v in self.stats.items()},
            "phases_us": {k: float(v) for k, v in self.phases_us.items()},
            "counters": {k: float(v) for k, v in self.counters.items()},
            "metrics": dict(self.metrics),
            "health": None if self.health is None else dict(self.health),
            "slos": [dict(entry) for entry in self.slos],
            "bench": dict(self.bench),
            "artifacts": dict(self.artifacts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunRecord":
        """Rebuild a record from its JSONL payload."""
        try:
            health = payload.get("health")
            return cls(
                run_id=str(payload["run_id"]),
                kind=str(payload["kind"]),
                label=str(payload.get("label", "")),
                recorded_at=float(payload.get("recorded_at", 0.0) or 0.0),  # type: ignore[arg-type]
                git=dict(payload.get("git") or {}),  # type: ignore[call-overload]
                config=dict(payload.get("config") or {}),  # type: ignore[call-overload]
                stats={
                    str(k): float(v)  # type: ignore[arg-type]
                    for k, v in dict(payload.get("stats") or {}).items()  # type: ignore[call-overload]
                },
                phases_us={
                    str(k): float(v)  # type: ignore[arg-type]
                    for k, v in dict(payload.get("phases_us") or {}).items()  # type: ignore[call-overload]
                },
                counters={
                    str(k): float(v)  # type: ignore[arg-type]
                    for k, v in dict(payload.get("counters") or {}).items()  # type: ignore[call-overload]
                },
                metrics=dict(payload.get("metrics") or {}),  # type: ignore[call-overload]
                health=None if health is None else dict(health),  # type: ignore[call-overload]
                slos=[dict(entry) for entry in payload.get("slos") or ()],  # type: ignore[union-attr, call-overload]
                bench=dict(payload.get("bench") or {}),  # type: ignore[call-overload]
                artifacts={
                    str(k): str(v)
                    for k, v in dict(payload.get("artifacts") or {}).items()  # type: ignore[call-overload]
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunRegistryError(
                f"malformed run record: {dict(payload)!r}"
            ) from exc
