"""Persistent run registry, regression attribution, and reporting.

The observability layers so far watch a *live* service (metrics,
monitor, tracing, admin channel); this subpackage remembers *finished*
runs.  Each bench / loadgen / serve-bench session appends one
:class:`RunRecord` to an append-only JSONL registry
(:class:`RunRegistry`, conventionally over ``benchmarks/runs/``);
:func:`attribute` diffs a run against its predecessor and names the
responsible phase and counters; :func:`render_report` turns the whole
registry into one deterministic markdown performance report, and
:func:`render_results` / :func:`results_drift` regenerate and
drift-check the ``benchmarks/results/*.txt`` summaries from recorded
artifacts.

Kept out of :mod:`repro.obs`'s eager namespace on purpose: reporting
pulls in :mod:`repro.analysis.charts`, which live-path consumers of
``repro.obs`` never need.  Import explicitly::

    from repro.obs.runs import RunRecord, RunRegistry, attribute
"""

from repro.obs.runs.attribution import (
    Attribution,
    CounterDelta,
    PhaseDelta,
    StatDelta,
    attribute,
)
from repro.obs.runs.capture import (
    build_bench_record,
    build_loadgen_record,
    build_serve_bench_record,
    counter_totals,
)
from repro.obs.runs.record import (
    PHASE_KEYS,
    RUN_KINDS,
    RunRecord,
    git_metadata,
)
from repro.obs.runs.registry import REGISTRY_FILENAME, RunRegistry
from repro.obs.runs.report import render_report, render_results, results_drift

__all__ = [
    "PHASE_KEYS",
    "REGISTRY_FILENAME",
    "RUN_KINDS",
    "Attribution",
    "CounterDelta",
    "PhaseDelta",
    "RunRecord",
    "RunRegistry",
    "StatDelta",
    "attribute",
    "build_bench_record",
    "build_loadgen_record",
    "build_serve_bench_record",
    "counter_totals",
    "git_metadata",
    "render_report",
    "render_results",
    "results_drift",
]
