"""Conformance vectors: the paper's worked numbers as executable JSON.

Another implementation of this paper (any language) can check itself
against the same fixtures this library is pinned to.  A vector bundles a
pool (JSON rights-expression form), an issuance log, and the expected
outputs of every pipeline stage::

    {
      "name": "example1",
      "pool": {...},                       # repro.licenses.rel pool document
      "log": [{"set": [...], "count": n}, ...],
      "expected": {
        "match_sets": {"<usage json>": [indexes]},   # optional
        "overlap_edges": [[i, j], ...],
        "groups": [[...], [...]],
        "equations_baseline": int,
        "equations_grouped": int,
        "theoretical_gain": float,
        "set_counts": {"1,2": 840, ...},             # C[S] by sorted set
        "is_valid": bool
      }
    }

:func:`run_vector` executes the full pipeline over a vector and returns a
list of human-readable check results; :func:`builtin_vectors` yields the
vectors shipped with the library (generated from
:mod:`repro.workloads.scenarios`, so they are themselves test-covered).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import SerializationError
from repro.core.validator import GroupedValidator
from repro.licenses.rel import license_from_dict, license_to_dict, pool_from_dict, pool_to_dict
from repro.licenses.license import UsageLicense
from repro.logstore.log import ValidationLog
from repro.matching.matcher import BruteForceMatcher

__all__ = ["CheckResult", "builtin_vectors", "make_vector", "run_vector"]


@dataclass(frozen=True)
class CheckResult:
    """One conformance check's outcome."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        status = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


def _set_key(license_set) -> str:
    return ",".join(str(i) for i in sorted(license_set))


def make_vector(name: str, pool, schema, log: ValidationLog, usages=()) -> Dict:
    """Build a conformance vector from live objects.

    Expected values are *computed* by this library, so a vector is only as
    authoritative as the tests pinning this library to the paper -- which
    is exactly the point: `tests/test_scenarios.py` pins the library, the
    vector exports that truth.
    """
    validator = GroupedValidator.from_pool(pool)
    matcher = BruteForceMatcher(pool)
    report = validator.validate(log)
    expected = {
        "overlap_edges": [list(edge) for edge in sorted(validator.graph.edges())],
        "groups": [sorted(group) for group in validator.structure.groups],
        "equations_baseline": validator.equations_baseline,
        "equations_grouped": validator.equations_required,
        "theoretical_gain": validator.theoretical_gain,
        "set_counts": {
            _set_key(license_set): count
            for license_set, count in sorted(
                log.counts_by_set().items(), key=lambda item: sorted(item[0])
            )
        },
        "is_valid": report.is_valid,
    }
    if usages:
        expected["match_sets"] = {
            usage.license_id: sorted(matcher.match(usage)) for usage in usages
        }
    vector = {
        "name": name,
        "pool": pool_to_dict(pool, schema),
        "log": [
            {"set": sorted(record.license_set), "count": record.count}
            for record in log
        ],
        "expected": expected,
    }
    if usages:
        vector["usages"] = [license_to_dict(usage, schema) for usage in usages]
    return vector


def run_vector(vector: Dict) -> List[CheckResult]:
    """Execute the pipeline over a vector; return per-check results."""
    try:
        pool, schema = pool_from_dict(vector["pool"])
        expected = vector["expected"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed vector: {exc}") from exc
    log = ValidationLog()
    for entry in vector.get("log", []):
        log.record(set(entry["set"]), int(entry["count"]))

    validator = GroupedValidator.from_pool(pool)
    results: List[CheckResult] = []

    def check(name: str, actual, wanted) -> None:
        passed = actual == wanted
        detail = "" if passed else f"expected {wanted!r}, got {actual!r}"
        results.append(CheckResult(name, passed, detail))

    check(
        "overlap_edges",
        [list(edge) for edge in sorted(validator.graph.edges())],
        expected["overlap_edges"],
    )
    check(
        "groups",
        [sorted(group) for group in validator.structure.groups],
        expected["groups"],
    )
    check("equations_baseline", validator.equations_baseline,
          expected["equations_baseline"])
    check("equations_grouped", validator.equations_required,
          expected["equations_grouped"])
    gain_ok = abs(validator.theoretical_gain - expected["theoretical_gain"]) < 1e-9
    results.append(
        CheckResult(
            "theoretical_gain",
            gain_ok,
            "" if gain_ok else f"expected {expected['theoretical_gain']}, "
                               f"got {validator.theoretical_gain}",
        )
    )
    check(
        "set_counts",
        {_set_key(s): c for s, c in log.counts_by_set().items()},
        expected["set_counts"],
    )
    check("is_valid", validator.validate(log).is_valid, expected["is_valid"])

    if "match_sets" in expected:
        matcher = BruteForceMatcher(pool)
        for usage_doc in vector.get("usages", []):
            usage = license_from_dict(usage_doc, schema)
            assert isinstance(usage, UsageLicense)
            check(
                f"match_set:{usage.license_id}",
                sorted(matcher.match(usage)),
                expected["match_sets"][usage.license_id],
            )
    return results


def builtin_vectors() -> Iterator[Tuple[str, Dict]]:
    """Yield the library's shipped vectors (paper Example 1 / Figure 2)."""
    from repro.workloads.scenarios import (
        example1,
        example1_log,
        figure2_pool,
        figure2_usages,
    )
    from repro.licenses.schema import ConstraintSchema, DimensionSpec

    scenario = example1()
    yield "example1", make_vector(
        "example1", scenario.pool, scenario.schema, example1_log(), scenario.usages
    )
    numeric_schema = ConstraintSchema(
        [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
    )
    yield "figure2", make_vector(
        "figure2", figure2_pool(), numeric_schema, ValidationLog(), figure2_usages()
    )


def dumps_vector(vector: Dict, **json_kwargs) -> str:
    """Serialize a vector to JSON."""
    return json.dumps(vector, **json_kwargs)


def loads_vector(text: str) -> Dict:
    """Parse a vector from JSON."""
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid vector JSON: {exc}") from exc
