"""repro -- a reproduction of "A Geometric Approach for Efficient Licenses
Validation in DRM" (Sachan, Emmanuel, Kankanhalli, 2010).

The library implements the full multi-distributor DRM validation stack:

* license model (permissions, instance constraints, aggregates) and the
  hyper-rectangle geometry behind instance-based validation;
* the validation tree and all-equations aggregate validation of [10];
* the paper's contribution: overlap-graph grouping, validation-tree
  division, and grouped validation with the Eq. 3 performance gain;
* baselines (naive scans, full expansion), a zeta-transform engine, and a
  max-flow feasibility oracle used as a correctness cross-check;
* online issuance sessions, synthetic workloads, and an experiment harness
  regenerating every figure of the paper's evaluation.

Quickstart::

    from repro import GroupedValidator
    from repro.workloads import example1, example1_log

    validator = GroupedValidator.from_pool(example1().pool)
    print(validator.structure.sizes)          # (3, 2) -- groups {1,2,4}, {3,5}
    print(round(validator.theoretical_gain, 1))  # 3.1
    print(validator.validate(example1_log()).summary())
"""

from repro.core.validator import GroupedValidator
from repro.licenses.catalog import LicenseCatalog
from repro.core.grouping import GroupStructure, form_groups
from repro.core.overlap import OverlapGraph
from repro.licenses.license import (
    LicenseFactory,
    RedistributionLicense,
    UsageLicense,
)
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord
from repro.service.config import ServiceConfig
from repro.service.service import ValidationService
from repro.validation.report import ValidationReport, Violation
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

__version__ = "1.0.0"

__all__ = [
    "ConstraintSchema",
    "DimensionSpec",
    "GroupStructure",
    "GroupedValidator",
    "LicenseCatalog",
    "LicenseFactory",
    "LicensePool",
    "LogRecord",
    "OverlapGraph",
    "Permission",
    "RedistributionLicense",
    "ServiceConfig",
    "TreeValidator",
    "UsageLicense",
    "ValidationLog",
    "ValidationReport",
    "ValidationService",
    "ValidationTree",
    "Violation",
    "form_groups",
    "__version__",
]
