"""Synthetic workloads and the paper's canned scenarios."""

from repro.workloads.adversarial import (
    blocks_pool,
    chain_pool,
    clique_pool,
    disjoint_pool,
)
from repro.workloads.config import DEFAULT_RECORDS_PER_LICENSE, WorkloadConfig
from repro.workloads.generator import (
    GeneratedWorkload,
    WorkloadGenerator,
    generate_workload,
)
from repro.workloads.temporal import (
    AuditEvent,
    PeriodicAuditResult,
    simulate_periodic_audits,
)
from repro.workloads.scenarios import (
    Scenario,
    example1,
    example1_log,
    figure2_pool,
    figure2_usages,
)

__all__ = [
    "AuditEvent",
    "DEFAULT_RECORDS_PER_LICENSE",
    "PeriodicAuditResult",
    "GeneratedWorkload",
    "Scenario",
    "WorkloadConfig",
    "WorkloadGenerator",
    "blocks_pool",
    "chain_pool",
    "clique_pool",
    "disjoint_pool",
    "example1",
    "example1_log",
    "figure2_pool",
    "figure2_usages",
    "generate_workload",
    "simulate_periodic_audits",
]
