"""Periodic-audit simulation: the offline validation loop over time.

Section 2.1 motivates *offline* validation: violations are rare, so the
authority logs issuances and validates periodically rather than per
issuance.  This module simulates that loop end to end:

1. a usage-license stream arrives (from :class:`WorkloadGenerator`);
2. every ``audit_every`` issuances the authority runs a validation pass;
3. passes use either the full grouped pipeline (rebuild + divide +
   validate) or the incremental dirty-group validator.

The simulation records, per audit, the verdict and how many equations the
pass evaluated -- making the incremental saving measurable in a realistic
schedule rather than a microbenchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.core.incremental import IncrementalValidator
from repro.core.validator import GroupedValidator
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.workloads.generator import WorkloadGenerator

__all__ = ["AuditEvent", "PeriodicAuditResult", "simulate_periodic_audits"]


@dataclass(frozen=True)
class AuditEvent:
    """One offline validation pass during the simulation."""

    #: Number of issuances recorded when the pass ran.
    after_records: int
    is_valid: bool
    #: Equations evaluated by this pass (the incremental saving shows here).
    equations_checked: int


@dataclass(frozen=True)
class PeriodicAuditResult:
    """Outcome of a whole simulated schedule."""

    mode: str
    events: Tuple[AuditEvent, ...]
    total_records: int

    @property
    def total_equations(self) -> int:
        """Return the summed per-pass equation counts."""
        return sum(event.equations_checked for event in self.events)

    @property
    def first_violation_at(self) -> "int | None":
        """Return the record count at the first failing audit, or None."""
        for event in self.events:
            if not event.is_valid:
                return event.after_records
        return None


def simulate_periodic_audits(
    generator: WorkloadGenerator,
    pool: LicensePool,
    n_issuances: int,
    audit_every: int,
    mode: str = "incremental",
    skew: float = 0.0,
) -> PeriodicAuditResult:
    """Run the periodic-audit loop and return its audit trail.

    Parameters
    ----------
    generator:
        Source of the usage-license stream (:meth:`issue_stream`).
    pool:
        The distributor's redistribution licenses.
    n_issuances:
        Stream length.
    audit_every:
        Records between validation passes (a final pass always runs).
    mode:
        ``"incremental"`` (dirty-group revalidation) or ``"full"``
        (rebuild the grouped pipeline each pass).
    skew:
        Popularity skew of the stream (see
        :meth:`WorkloadGenerator.issue_stream`); skewed traffic leaves
        most groups clean between audits, where the incremental mode's
        saving shows.
    """
    if audit_every < 1:
        raise WorkloadError(f"audit_every must be >= 1, got {audit_every}")
    if n_issuances < 0:
        raise WorkloadError(f"n_issuances must be >= 0, got {n_issuances}")
    if mode not in ("incremental", "full"):
        raise WorkloadError(f"unknown mode {mode!r}")

    matcher = IndexedMatcher(pool)
    events: List[AuditEvent] = []
    recorded = 0

    if mode == "incremental":
        incremental = IncrementalValidator.from_pool(pool)

        def audit() -> AuditEvent:
            report = incremental.validate()
            return AuditEvent(recorded, report.is_valid, report.equations_checked)

        def record(matched, count):
            incremental.record(matched, count)

    else:
        full_log = ValidationLog()
        validator = GroupedValidator.from_pool(pool)

        def audit() -> AuditEvent:
            report = validator.validate(full_log)
            return AuditEvent(recorded, report.is_valid, report.equations_checked)

        def record(matched, count):
            full_log.record(matched, count)

    for usage in generator.issue_stream(pool, n_issuances, skew=skew):
        matched = matcher.match(usage)
        if not matched:
            continue
        record(matched, usage.count)
        recorded += 1
        if recorded % audit_every == 0:
            events.append(audit())
    if not events or events[-1].after_records != recorded:
        events.append(audit())
    return PeriodicAuditResult(mode, tuple(events), recorded)
