"""Workload-generator configuration.

Defaults follow Section 5 of the paper:

* 4 instance-based constraints per license,
* aggregate constraint counts uniform in [5000, 20000],
* issued-license permission counts uniform in [10, 30],
* log volume scaling from ~600 records at N=1 to ~22000 at N=35
  (we use 630·N, which matches both endpoints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import WorkloadError

__all__ = ["WorkloadConfig", "DEFAULT_RECORDS_PER_LICENSE"]

#: Log records generated per redistribution license (630·35 = 22050 ≈ the
#: paper's 22000 records at N = 35; 630·1 ≈ its 600 at N = 1).
DEFAULT_RECORDS_PER_LICENSE = 630


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic validation workload.

    Attributes
    ----------
    n_licenses:
        Number of redistribution licenses ``N`` in the pool.
    n_dims:
        Instance-based constraints per license ``M`` (paper: 4).
    seed:
        RNG seed; workloads are fully deterministic given the config.
    n_records:
        Issued-license log records to generate.  ``None`` means
        ``DEFAULT_RECORDS_PER_LICENSE * n_licenses``.
    aggregate_range:
        Inclusive uniform range of aggregate constraint counts.
    count_range:
        Inclusive uniform range of issued-license permission counts.
    target_groups:
        Number of spatial clusters to scatter licenses into.  Clusters are
        geometrically disjoint, so the final group count is *at least*
        clusters-with-members and can exceed the target when licenses
        within a cluster happen not to overlap -- the natural variation
        Figure 6 of the paper shows.  ``None`` picks a heuristic in 1..5.
    domain:
        Numeric range of each constraint axis within a cluster slab.
    license_extent_fraction:
        (min, max) fraction of the available axis range a redistribution
        license's constraint interval covers.
    usage_extent_fraction:
        (min, max) fraction of the *parent license's* interval an issued
        license covers (issued licenses are shrunken copies of a random
        pool license, so instance matching always succeeds).
    n_categorical_dims:
        How many of the ``n_dims`` constraint axes are categorical
        (region-like) instead of numeric ranges.  Axis 0 stays numeric
        (it carries the cluster separation), so this must be at most
        ``n_dims - 1``.
    atoms_per_dim:
        Universe size of each categorical axis (e.g. number of leaf
        regions).
    license_atom_fraction:
        (min, max) fraction of the atom universe a redistribution
        license allows on each categorical axis.
    """

    n_licenses: int
    n_dims: int = 4
    seed: int = 0
    n_records: Optional[int] = None
    aggregate_range: Tuple[int, int] = (5000, 20000)
    count_range: Tuple[int, int] = (10, 30)
    target_groups: Optional[int] = None
    domain: Tuple[float, float] = (0.0, 1000.0)
    license_extent_fraction: Tuple[float, float] = (0.35, 0.85)
    usage_extent_fraction: Tuple[float, float] = (0.02, 0.15)
    n_categorical_dims: int = 0
    atoms_per_dim: int = 12
    license_atom_fraction: Tuple[float, float] = (0.3, 0.7)

    def __post_init__(self) -> None:
        if self.n_licenses < 1:
            raise WorkloadError(f"n_licenses must be >= 1, got {self.n_licenses}")
        if self.n_dims < 1:
            raise WorkloadError(f"n_dims must be >= 1, got {self.n_dims}")
        if self.n_records is not None and self.n_records < 0:
            raise WorkloadError(f"n_records must be >= 0, got {self.n_records}")
        for name in ("aggregate_range", "count_range"):
            low, high = getattr(self, name)
            if low < 1 or high < low:
                raise WorkloadError(f"{name} must satisfy 1 <= low <= high")
        low, high = self.domain
        if not low < high:
            raise WorkloadError(f"domain must be a non-empty range, got {self.domain}")
        for name in ("license_extent_fraction", "usage_extent_fraction"):
            low, high = getattr(self, name)
            if not 0 < low <= high <= 1:
                raise WorkloadError(f"{name} must satisfy 0 < low <= high <= 1")
        if self.target_groups is not None and self.target_groups < 1:
            raise WorkloadError(
                f"target_groups must be >= 1, got {self.target_groups}"
            )
        if not 0 <= self.n_categorical_dims <= self.n_dims - 1:
            raise WorkloadError(
                f"n_categorical_dims must be in 0..n_dims-1 (axis 0 stays "
                f"numeric for cluster separation), got {self.n_categorical_dims}"
            )
        if self.atoms_per_dim < 1:
            raise WorkloadError(
                f"atoms_per_dim must be >= 1, got {self.atoms_per_dim}"
            )
        low, high = self.license_atom_fraction
        if not 0 < low <= high <= 1:
            raise WorkloadError(
                "license_atom_fraction must satisfy 0 < low <= high <= 1"
            )

    @property
    def records(self) -> int:
        """Return the effective number of log records."""
        if self.n_records is not None:
            return self.n_records
        return DEFAULT_RECORDS_PER_LICENSE * self.n_licenses

    @property
    def clusters(self) -> int:
        """Return the effective spatial cluster count.

        The heuristic grows slowly with N and caps at 5, matching the 1-5
        group counts of the paper's Figure 6.
        """
        if self.target_groups is not None:
            return min(self.target_groups, self.n_licenses)
        heuristic = max(1, round(self.n_licenses**0.5 / 1.2))
        return min(heuristic, 5, self.n_licenses)
