"""Adversarial / extremal workload shapes.

The paper's gain (Eq. 3) spans from 1 (a single connected group -- the
proposed method degenerates to the baseline) to ``(2^N - 1)/N`` (all
licenses pairwise disjoint).  These constructors build pools that *pin*
the group structure, for bound-checking tests and worst/best-case
benchmarks the random generator cannot target reliably:

* :func:`clique_pool` -- every license overlaps every other (one group;
  gain exactly 1);
* :func:`disjoint_pool` -- no two licenses overlap (N singleton groups;
  maximum gain);
* :func:`chain_pool` -- license ``i`` overlaps only ``i±1`` (one group,
  but the sparsest connected overlap graph: N-1 edges);
* :func:`blocks_pool` -- ``g`` cliques of equal size (exact group sizes,
  the shape Eq. 3's intermediate points assume).

All pools use one numeric constraint axis (overlap structure on a line is
fully controllable); aggregates default to a constant.
"""

from __future__ import annotations

from typing import List

from repro.errors import WorkloadError
from repro.licenses.license import LicenseFactory, RedistributionLicense
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec

__all__ = ["clique_pool", "disjoint_pool", "chain_pool", "blocks_pool"]

#: Width of each license interval in the constructions below.
_WIDTH = 10


def _factory() -> LicenseFactory:
    schema = ConstraintSchema([DimensionSpec.numeric("x")])
    return LicenseFactory(schema, content_id="K", permission="play")


def _pool(licenses: List[RedistributionLicense]) -> LicensePool:
    return LicensePool(licenses)


def _check_n(n: int) -> None:
    if n < 1:
        raise WorkloadError(f"need at least one license, got n={n}")


def clique_pool(n: int, aggregate: int = 1000) -> LicensePool:
    """All licenses share the interval ``[0, WIDTH]``: one big group."""
    _check_n(n)
    factory = _factory()
    return _pool(
        [
            factory.redistribution(f"LD{i}", aggregate=aggregate, x=(0, _WIDTH))
            for i in range(1, n + 1)
        ]
    )


def disjoint_pool(n: int, aggregate: int = 1000) -> LicensePool:
    """License ``i`` occupies a private interval: N singleton groups."""
    _check_n(n)
    factory = _factory()
    licenses = []
    for i in range(1, n + 1):
        start = (i - 1) * (2 * _WIDTH)  # gaps of WIDTH between intervals
        licenses.append(
            factory.redistribution(
                f"LD{i}", aggregate=aggregate, x=(start, start + _WIDTH)
            )
        )
    return _pool(licenses)


def chain_pool(n: int, aggregate: int = 1000) -> LicensePool:
    """License ``i`` overlaps exactly ``i-1`` and ``i+1`` (a path graph).

    Intervals advance by ``WIDTH * 2/3`` so consecutive ones share a
    third of their width while ``i`` and ``i+2`` are disjoint.
    """
    _check_n(n)
    factory = _factory()
    step = (2 * _WIDTH) // 3
    licenses = []
    for i in range(1, n + 1):
        start = (i - 1) * step
        licenses.append(
            factory.redistribution(
                f"LD{i}", aggregate=aggregate, x=(start, start + _WIDTH)
            )
        )
    return _pool(licenses)


def blocks_pool(group_sizes: List[int], aggregate: int = 1000) -> LicensePool:
    """``len(group_sizes)`` cliques with the given sizes, pairwise disjoint.

    Group ``k`` occupies its own slab; licenses within a slab all share
    it.  Produces exactly the group structure ``group_sizes`` (ordered by
    smallest member, licenses numbered slab by slab).
    """
    if not group_sizes or any(size < 1 for size in group_sizes):
        raise WorkloadError(f"invalid group sizes: {group_sizes!r}")
    factory = _factory()
    licenses = []
    serial = 0
    for block, size in enumerate(group_sizes):
        start = block * (2 * _WIDTH)
        for _ in range(size):
            serial += 1
            licenses.append(
                factory.redistribution(
                    f"LD{serial}", aggregate=aggregate, x=(start, start + _WIDTH)
                )
            )
    return _pool(licenses)
