"""Canned scenarios taken verbatim from the paper.

* :func:`example1` -- the five redistribution licenses of Example 1 (date ×
  region constraints) plus the two usage licenses ``L_U^1``/``L_U^2``.
* :func:`example1_log` -- the issuance log of Table 2 (six records).
* :func:`figure2_pool` -- a 2-D numeric arrangement realizing Figure 2's
  containment and overlap relations exactly (``L_U^1`` inside ``L_D^4``
  only, ``L_U^2`` inside nothing, groups ``{1, 2, 4}`` / ``{3, 5}``,
  ``L_D^1``-``L_D^4`` non-overlapping).

These scenarios anchor the test suite to the paper's own worked numbers:
Table 2's aggregated counts, Figure 3's adjacency matrix, Figures 4-5's
divided trees and the 3.1x worked gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.licenses.license import LicenseFactory, UsageLicense
from repro.licenses.pool import LicensePool
from repro.licenses.regions import WORLD
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.logstore.log import ValidationLog

__all__ = [
    "Scenario",
    "example1",
    "example1_log",
    "figure2_pool",
    "figure2_usages",
]


@dataclass(frozen=True)
class Scenario:
    """A pool of redistribution licenses plus sample usage licenses."""

    pool: LicensePool
    usages: Tuple[UsageLicense, ...]
    schema: ConstraintSchema


def example1() -> Scenario:
    """The paper's Example 1: five redistribution licenses over
    (validity period, region), plus usage licenses ``L_U^1`` and ``L_U^2``."""
    schema = ConstraintSchema(
        [
            DimensionSpec.date("validity"),
            DimensionSpec.region("region", taxonomy=WORLD),
        ]
    )
    factory = LicenseFactory(schema, content_id="K", permission="play")
    pool = LicensePool(
        [
            factory.redistribution(
                "LD1",
                aggregate=2000,
                validity=("10/03/09", "20/03/09"),
                region=["asia", "europe"],
            ),
            factory.redistribution(
                "LD2",
                aggregate=1000,
                validity=("15/03/09", "25/03/09"),
                region=["asia"],
            ),
            factory.redistribution(
                "LD3",
                aggregate=3000,
                validity=("15/03/09", "30/03/09"),
                region=["america"],
            ),
            factory.redistribution(
                "LD4",
                aggregate=4000,
                validity=("15/03/09", "15/04/09"),
                region=["europe"],
            ),
            factory.redistribution(
                "LD5",
                aggregate=2000,
                validity=("25/03/09", "10/04/09"),
                region=["america"],
            ),
        ]
    )
    usages = (
        factory.usage(
            "LU1", count=800, validity=("15/03/09", "19/03/09"), region=["india"]
        ),
        factory.usage(
            "LU2", count=400, validity=("21/03/09", "24/03/09"), region=["japan"]
        ),
    )
    return Scenario(pool, usages, schema)


def example1_log() -> ValidationLog:
    """The issuance log of Table 2 (after ``L_U^6`` has been issued).

    Aggregated counts match the paper's Section 2.1 walk-through:
    ``C[{1,2}] = 840``, ``C[{2}] = 400``, ``C[{1,2,4}] = 30``,
    ``C[{3,5}] = 800``, ``C[{5}] = 20``.
    """
    log = ValidationLog()
    log.record({1, 2}, 800, "LU1")
    log.record({2}, 400, "LU2")
    log.record({1, 2}, 40, "LU3")
    log.record({1, 2, 4}, 30, "LU4")
    log.record({3, 5}, 800, "LU5")
    log.record({5}, 20, "LU6")
    return log


def figure2_pool() -> LicensePool:
    """A 2-D numeric realization of the paper's Figure 2.

    Relations engineered to match the figure:

    * overlap edges exactly ``{1-2, 2-4, 3-5}`` (so ``L_D^1`` and
      ``L_D^4`` are non-overlapping yet share group 1 through ``L_D^2``);
    * groups ``{1, 2, 4}`` and ``{3, 5}``;
    * ``L_D^1, L_D^2, L_D^3`` have no common region (Theorem 1's example).
    """
    schema = ConstraintSchema(
        [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
    )
    factory = LicenseFactory(schema, content_id="K", permission="play")
    return LicensePool(
        [
            factory.redistribution("LD1", aggregate=2000, x=(0, 4), y=(6, 10)),
            factory.redistribution("LD2", aggregate=1000, x=(3, 7), y=(4, 8)),
            factory.redistribution("LD3", aggregate=3000, x=(13, 17), y=(7, 10)),
            factory.redistribution("LD4", aggregate=4000, x=(6, 12), y=(0, 6)),
            factory.redistribution("LD5", aggregate=2000, x=(15, 19), y=(5, 8)),
        ]
    )


def figure2_usages() -> Tuple[UsageLicense, ...]:
    """Usage licenses matching Figure 2's narrative: ``L_U^1`` is inside
    ``L_D^4`` only; ``L_U^2`` is inside no redistribution license."""
    schema = ConstraintSchema(
        [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
    )
    factory = LicenseFactory(schema, content_id="K", permission="play")
    return (
        factory.usage("LU1", count=100, x=(8, 11), y=(1, 3)),
        factory.usage("LU2", count=100, x=(5, 8), y=(5, 7)),
    )
