"""Synthetic workload generation (Section 5 experimental setup).

The paper's corpus is not published, so we synthesize one that exercises the
same code paths:

1. **Redistribution licenses** are axis-aligned boxes over ``M`` numeric
   constraint axes.  Licenses are scattered into a configurable number of
   spatial *clusters*; clusters occupy disjoint slabs of axis 0, so
   licenses from different clusters can never overlap (groups are at least
   as fine as clusters), while licenses inside a cluster overlap with high
   -- but not certain -- probability, giving the natural group-count
   variation of Figure 6.
2. **Issued licenses** are shrunken copies of a randomly chosen pool
   license, so each instance-matches at least its parent and often several
   overlapping neighbours -- producing the multi-license sets ``S`` that
   make aggregate validation interesting.
3. Matching uses :class:`repro.matching.IndexedMatcher`; each issuance is
   appended to a :class:`repro.logstore.ValidationLog` exactly as the
   offline validation authority of Section 2.1 would record it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.geometry.box import Box
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import LicenseFactory, RedistributionLicense, UsageLicense
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.workloads.config import WorkloadConfig

__all__ = ["GeneratedWorkload", "WorkloadGenerator", "generate_workload"]


@dataclass(frozen=True)
class GeneratedWorkload:
    """A complete synthetic scenario: pool + issuance log.

    Attributes
    ----------
    config:
        The configuration that produced this workload.
    pool:
        The distributor's redistribution licenses.
    log:
        The offline validation log (one record per issued license).
    schema:
        The constraint schema shared by all licenses.
    """

    config: WorkloadConfig
    pool: LicensePool
    log: ValidationLog
    schema: ConstraintSchema

    @property
    def n(self) -> int:
        """Return the number of redistribution licenses."""
        return len(self.pool)

    @property
    def aggregates(self) -> List[int]:
        """Return the aggregate array ``A``."""
        return self.pool.aggregate_array()


class WorkloadGenerator:
    """Deterministic workload generator (see module docstring)."""

    #: Gap between consecutive cluster slabs on axis 0, as a multiple of
    #: the domain span -- large enough that clusters can never overlap.
    _SLAB_GAP = 1.5

    def __init__(self, config: WorkloadConfig):
        self._config = config
        self._rng = random.Random(config.seed)
        numeric_dims = config.n_dims - config.n_categorical_dims
        specs = [DimensionSpec.numeric(f"c{axis + 1}") for axis in range(numeric_dims)]
        specs.extend(
            DimensionSpec.categorical(f"c{axis + 1}")
            for axis in range(numeric_dims, config.n_dims)
        )
        self._schema = ConstraintSchema(specs)
        #: Atom universe shared by every categorical axis.
        self._atoms = [f"a{k}" for k in range(config.atoms_per_dim)]

    @property
    def config(self) -> WorkloadConfig:
        """Return the generator configuration."""
        return self._config

    @property
    def schema(self) -> ConstraintSchema:
        """Return the constraint schema used for generated licenses."""
        return self._schema

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self) -> GeneratedWorkload:
        """Generate the pool and the issuance log."""
        pool = self.generate_pool()
        log = self.generate_log(pool)
        return GeneratedWorkload(self._config, pool, log, self._schema)

    def generate_pool(self) -> LicensePool:
        """Generate the redistribution licenses."""
        config = self._config
        factory = LicenseFactory(self._schema, content_id="K", permission="play")
        pool = LicensePool()
        clusters = config.clusters
        # Round-robin base assignment keeps every cluster inhabited; the
        # shuffle decouples cluster id from license index so group
        # memberships are interleaved (as in the paper's Figure 2, where
        # group 1 is {1, 2, 4}).
        assignment = [i % clusters for i in range(config.n_licenses)]
        self._rng.shuffle(assignment)
        for serial, cluster in enumerate(assignment, start=1):
            box_kwargs = self._license_constraints(cluster)
            pool.add(
                factory.redistribution(
                    f"LD{serial}",
                    aggregate=self._rng.randint(*config.aggregate_range),
                    **box_kwargs,
                )
            )
        return pool

    def generate_log(self, pool: LicensePool) -> ValidationLog:
        """Issue shrunken-copy usage licenses and record their match sets."""
        config = self._config
        matcher = IndexedMatcher(pool)
        log = ValidationLog()
        for serial in range(1, config.records + 1):
            usage = self._issue_usage(pool, serial)
            matched = matcher.match(usage)
            # A shrunken copy always fits its parent, so S is never empty.
            log.record_issuance(usage, matched)
        return log

    def issue_stream(self, pool: LicensePool, count: int, skew: float = 0.0):
        """Yield ``count`` fresh usage licenses drawn like the log's.

        Useful for driving online sessions with the same distribution the
        offline log was generated from.

        Parameters
        ----------
        skew:
            Popularity skew of the parent-license choice.  0 (default) is
            uniform; larger values weight low-indexed licenses Zipf-style
            (weight ``1 / index**skew``), concentrating traffic -- and
            hence validation work -- on few groups.
        """
        if skew:
            weights = [1.0 / (index**skew) for index in range(1, len(pool) + 1)]
        else:
            weights = None
        for serial in range(1, count + 1):
            if weights is None:
                parent = pool[self._rng.randint(1, len(pool))]
            else:
                parent = pool[
                    self._rng.choices(range(1, len(pool) + 1), weights=weights)[0]
                ]
            yield self._shrunken_usage(parent, serial)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _slab(self, cluster: int) -> Tuple[float, float]:
        """Return the axis-0 range reserved for a cluster."""
        low, high = self._config.domain
        span = high - low
        offset = cluster * span * (1 + self._SLAB_GAP)
        return (low + offset, high + offset)

    def _random_subinterval(
        self, low: float, high: float, fraction: Tuple[float, float]
    ) -> Interval:
        """Return a random subinterval covering a uniform fraction of
        ``[low, high]``."""
        span = high - low
        length = span * self._rng.uniform(*fraction)
        start = low + self._rng.uniform(0.0, span - length)
        # Clamp after rounding: a half-ulp bump past `high` would make a
        # "shrunken copy" escape its parent and break instance matching.
        left = min(max(round(start, 6), low), high)
        right = min(max(round(start + length, 6), left), high)
        return Interval(left, right)

    def _random_atom_subset(self, fraction) -> list:
        """Draw a non-empty random subset of the atom universe."""
        size = max(1, round(len(self._atoms) * self._rng.uniform(*fraction)))
        return self._rng.sample(self._atoms, size)

    def _license_constraints(self, cluster: int) -> dict:
        """Draw one license's constraint extents."""
        config = self._config
        fractions = config.license_extent_fraction
        numeric_dims = config.n_dims - config.n_categorical_dims
        constraints = {}
        slab_low, slab_high = self._slab(cluster)
        constraints["c1"] = self._random_subinterval(slab_low, slab_high, fractions)
        for axis in range(1, numeric_dims):
            constraints[f"c{axis + 1}"] = self._random_subinterval(
                config.domain[0], config.domain[1], fractions
            )
        for axis in range(numeric_dims, config.n_dims):
            constraints[f"c{axis + 1}"] = self._random_atom_subset(
                config.license_atom_fraction
            )
        return constraints

    def _issue_usage(self, pool: LicensePool, serial: int) -> UsageLicense:
        """Issue one usage license as a shrunken copy of a random parent."""
        parent: RedistributionLicense = pool[self._rng.randint(1, len(pool))]
        return self._shrunken_usage(parent, serial)

    def _shrunken_usage(
        self, parent: RedistributionLicense, serial: int
    ) -> UsageLicense:
        """Build a usage license strictly inside ``parent``'s box."""
        config = self._config
        extents = []
        for extent in parent.box.extents:
            if isinstance(extent, Interval):
                extents.append(
                    self._random_subinterval(
                        extent.low, extent.high, config.usage_extent_fraction
                    )
                )
            else:
                # Categorical axis: a small non-empty subset of the
                # parent's allowed atoms (a consumer targets one or two
                # regions, not the whole allowance).
                atoms = sorted(extent.atoms)
                size = self._rng.randint(1, min(2, len(atoms)))
                extents.append(DiscreteSet(self._rng.sample(atoms, size)))
        return UsageLicense(
            license_id=f"LU{serial}",
            content_id=parent.content_id,
            permission=parent.permission,
            box=Box(extents),
            count=self._rng.randint(*config.count_range),
        )


def generate_workload(
    n_licenses: int, seed: int = 0, **overrides: object
) -> GeneratedWorkload:
    """One-call convenience: configure, generate, return the workload."""
    config = WorkloadConfig(n_licenses=n_licenses, seed=seed, **overrides)  # type: ignore[arg-type]
    return WorkloadGenerator(config).generate()
