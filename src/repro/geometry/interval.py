"""Closed intervals over a totally ordered domain.

Instance-based constraints such as a license validity period are ranges of
allowed values.  The paper models each such constraint as one axis of an
M-dimensional hyper-rectangle; this module provides the one-dimensional
building block.

Intervals are *closed* on both ends, matching the paper's semantics where a
usage license with ``T = [15/03/09, 19/03/09]`` is contained in a
redistribution license with ``T = [10/03/09, 20/03/09]`` (endpoints count).
Endpoints may be any mutually comparable values: ints, floats, or
:class:`datetime.date` ordinals produced by :mod:`repro.licenses.dates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import GeometryError

__all__ = ["Interval"]


@dataclass(frozen=True, order=False)
class Interval:
    """A closed interval ``[low, high]``.

    Parameters
    ----------
    low, high:
        Inclusive bounds.  ``low`` must not exceed ``high``.

    Examples
    --------
    >>> a = Interval(10, 20)
    >>> b = Interval(15, 25)
    >>> a.overlaps(b)
    True
    >>> a.contains(Interval(15, 19))
    True
    >>> a.intersection(b)
    Interval(low=15, high=20)
    """

    low: Any
    high: Any

    def __post_init__(self) -> None:
        try:
            inverted = self.low > self.high
        except TypeError as exc:
            raise GeometryError(
                f"interval bounds are not comparable: {self.low!r}, {self.high!r}"
            ) from exc
        if inverted:
            raise GeometryError(
                f"interval low bound {self.low!r} exceeds high bound {self.high!r}"
            )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, value: Any) -> bool:
        """Return ``True`` if ``value`` lies in the closed interval."""
        return self.low <= value <= self.high

    def contains(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` is entirely within this interval.

        This is the instance-constraint check of the paper: the range in a
        newly generated license must be *within* the corresponding range of
        the redistribution license used to generate it.
        """
        return self.low <= other.low and other.high <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` if the two closed intervals share any point."""
        return self.low <= other.high and other.low <= self.high

    def is_degenerate(self) -> bool:
        """Return ``True`` if the interval is a single point."""
        return self.low == self.high

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """Return the overlapping sub-interval, or ``None`` if disjoint."""
        if not self.overlaps(other):
            return None
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def union_hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both operands."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def expanded(self, amount: Any) -> "Interval":
        """Return a copy widened by ``amount`` on each side."""
        return Interval(self.low - amount, self.high + amount)

    def clamped(self, outer: "Interval") -> "Interval":
        """Return this interval clipped to lie inside ``outer``.

        Raises
        ------
        GeometryError
            If the two intervals are disjoint, so no clamped interval exists.
        """
        clipped = self.intersection(outer)
        if clipped is None:
            raise GeometryError(f"cannot clamp {self} into disjoint {outer}")
        return clipped

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def length(self) -> Any:
        """Return ``high - low`` (0 for degenerate intervals)."""
        return self.high - self.low

    @property
    def midpoint(self) -> Any:
        """Return the arithmetic midpoint of the bounds."""
        return (self.low + self.high) / 2

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, value: Any) -> bool:
        return self.contains_point(value)

    def __iter__(self) -> Iterator[Any]:
        yield self.low
        yield self.high

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.low}, {self.high}]"
