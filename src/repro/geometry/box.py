"""M-dimensional boxes (hyper-rectangles) over mixed extents.

Section 3.1 of the paper represents every license with ``M`` instance-based
constraints as an M-dimensional hyper-rectangle.  Each axis of a
:class:`Box` is either an :class:`~repro.geometry.interval.Interval`
(ordered constraints: validity period, resolution, ...) or a
:class:`~repro.geometry.discrete.DiscreteSet` (categorical constraints:
regions, device classes, ...).  Both extent types expose the same
``contains`` / ``overlaps`` / ``intersection`` protocol, so the box treats
axes uniformly.

The two predicates that drive the whole paper:

* ``outer.contains(inner)`` — the geometric form of *instance-based
  validation*: an issued license is instance-valid against a redistribution
  license iff the redistribution box fully contains the issued box.
* ``a.overlaps(b)`` — the *overlapping licenses* relation of Section 3.2:
  two licenses overlap iff **all** their constraint axes overlap.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval

__all__ = ["Box", "Extent"]

#: A single axis of a box: ordered range or categorical set.
Extent = Union[Interval, DiscreteSet]


class Box:
    """An axis-aligned hyper-rectangle with mixed interval/discrete axes.

    Examples
    --------
    >>> outer = Box([Interval(0, 10), DiscreteSet({"asia", "europe"})])
    >>> inner = Box([Interval(2, 5), DiscreteSet({"asia"})])
    >>> outer.contains(inner)
    True
    >>> outer.overlaps(Box([Interval(9, 20), DiscreteSet({"europe"})]))
    True
    """

    __slots__ = ("_extents",)

    def __init__(self, extents: Sequence[Extent]):
        if not extents:
            raise GeometryError("a box needs at least one dimension")
        for axis, extent in enumerate(extents):
            if not isinstance(extent, (Interval, DiscreteSet)):
                raise GeometryError(
                    f"axis {axis}: expected Interval or DiscreteSet, "
                    f"got {type(extent).__name__}"
                )
        self._extents: Tuple[Extent, ...] = tuple(extents)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def extents(self) -> Tuple[Extent, ...]:
        """Return the per-axis extents in schema order."""
        return self._extents

    @property
    def dimensions(self) -> int:
        """Return the number of constraint axes ``M``."""
        return len(self._extents)

    def extent(self, axis: int) -> Extent:
        """Return the extent on a single axis."""
        return self._extents[axis]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "Box") -> None:
        if self.dimensions != other.dimensions:
            raise DimensionMismatchError(
                f"boxes have different dimensionality: "
                f"{self.dimensions} vs {other.dimensions}"
            )
        for axis, (mine, theirs) in enumerate(zip(self._extents, other._extents)):
            if type(mine) is not type(theirs):
                raise DimensionMismatchError(
                    f"axis {axis}: extent kinds differ "
                    f"({type(mine).__name__} vs {type(theirs).__name__})"
                )

    def contains(self, other: "Box") -> bool:
        """Return ``True`` if ``other`` lies entirely inside this box.

        This is the instance-based validation predicate: every constraint of
        the inner license must be within the corresponding constraint range
        of the outer license.
        """
        self._check_compatible(other)
        return all(
            mine.contains(theirs)  # type: ignore[arg-type]
            for mine, theirs in zip(self._extents, other._extents)
        )

    def overlaps(self, other: "Box") -> bool:
        """Return ``True`` if the boxes overlap on **every** axis.

        Definition from Section 3.2: licenses ``j`` and ``k`` overlap iff
        ``I_m^j ∩ I_m^k ≠ ∅`` for all ``m ≤ M``.
        """
        self._check_compatible(other)
        return all(
            mine.overlaps(theirs)  # type: ignore[arg-type]
            for mine, theirs in zip(self._extents, other._extents)
        )

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Box") -> Optional["Box"]:
        """Return the common region, or ``None`` if the boxes are disjoint.

        Used to test Theorem 1: a set of licenses has a *common overlapping
        region* iff the intersection of all their boxes is non-empty.
        """
        self._check_compatible(other)
        pieces = []
        for mine, theirs in zip(self._extents, other._extents):
            piece = mine.intersection(theirs)  # type: ignore[arg-type]
            if piece is None:
                return None
            pieces.append(piece)
        return Box(pieces)

    def union_hull(self, other: "Box") -> "Box":
        """Return the smallest box containing both operands."""
        self._check_compatible(other)
        return Box(
            [
                mine.union_hull(theirs)  # type: ignore[arg-type]
                for mine, theirs in zip(self._extents, other._extents)
            ]
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._extents == other._extents

    def __hash__(self) -> int:
        return hash(self._extents)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Box({list(self._extents)!r})"


def common_region(boxes: Sequence[Box]) -> Optional[Box]:
    """Return the region common to all ``boxes``, or ``None`` if there is none.

    Theorem 1 of the paper: if the licenses of a set ``S`` have no common
    region, then ``C[S]`` is identically zero, because no issued license box
    can sit inside all of them simultaneously.
    """
    if not boxes:
        raise GeometryError("common_region needs at least one box")
    region: Optional[Box] = boxes[0]
    for box in boxes[1:]:
        region = region.intersection(box)
        if region is None:
            return None
    return region
