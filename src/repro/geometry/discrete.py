"""Discrete (categorical) constraint extents.

Constraints such as *region allowed for distribution* are not ranges over an
ordered axis but sets of categories (``[Asia, Europe]``).  Geometrically the
paper still treats them as one axis of the license hyper-rectangle; the
containment and overlap predicates become subset and set-intersection tests.

A :class:`DiscreteSet` stores an immutable frozenset of hashable atoms
(typically integer leaf-region codes produced by
:class:`repro.licenses.regions.RegionTaxonomy`).
"""

from __future__ import annotations

from typing import AbstractSet, Any, FrozenSet, Iterable, Iterator, Optional

from repro.errors import GeometryError

__all__ = ["DiscreteSet"]


class DiscreteSet:
    """An immutable set-valued extent on a categorical constraint axis.

    Examples
    --------
    >>> asia = DiscreteSet(["india", "japan"])
    >>> india = DiscreteSet(["india"])
    >>> asia.contains(india)
    True
    >>> asia.overlaps(DiscreteSet(["japan", "france"]))
    True
    """

    __slots__ = ("_atoms",)

    def __init__(self, atoms: Iterable[Any]):
        self._atoms: FrozenSet[Any] = frozenset(atoms)
        if not self._atoms:
            raise GeometryError("a discrete extent must contain at least one atom")

    # ------------------------------------------------------------------
    # Predicates (mirror the Interval API so Box can treat axes uniformly)
    # ------------------------------------------------------------------
    def contains_point(self, value: Any) -> bool:
        """Return ``True`` if ``value`` is one of the allowed atoms."""
        return value in self._atoms

    def contains(self, other: "DiscreteSet") -> bool:
        """Return ``True`` if every atom of ``other`` is allowed here."""
        return other._atoms <= self._atoms

    def overlaps(self, other: "DiscreteSet") -> bool:
        """Return ``True`` if the two extents share at least one atom."""
        # Iterate over the smaller set for speed on skewed sizes.
        small, large = (
            (self._atoms, other._atoms)
            if len(self._atoms) <= len(other._atoms)
            else (other._atoms, self._atoms)
        )
        return any(atom in large for atom in small)

    def is_degenerate(self) -> bool:
        """Return ``True`` for a single-atom extent."""
        return len(self._atoms) == 1

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def intersection(self, other: "DiscreteSet") -> Optional["DiscreteSet"]:
        """Return the shared atoms as a new extent, or ``None`` if disjoint."""
        common = self._atoms & other._atoms
        if not common:
            return None
        return DiscreteSet(common)

    def union_hull(self, other: "DiscreteSet") -> "DiscreteSet":
        """Return the union of the two extents.

        For discrete axes the smallest containing extent *is* the union
        (there is no notion of in-between categories).
        """
        return DiscreteSet(self._atoms | other._atoms)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def atoms(self) -> FrozenSet[Any]:
        """Return the underlying frozenset of allowed atoms."""
        return self._atoms

    @property
    def length(self) -> int:
        """Return the number of atoms (the discrete analogue of a measure)."""
        return len(self._atoms)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, value: Any) -> bool:
        return self.contains_point(value)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteSet):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        shown = sorted(self._atoms, key=repr)
        return f"DiscreteSet({shown!r})"


def as_discrete(value: "DiscreteSet | AbstractSet[Any] | Iterable[Any]") -> DiscreteSet:
    """Coerce plain iterables/sets into a :class:`DiscreteSet`.

    Accepting raw sets at API boundaries keeps user code free of wrapper
    noise: ``RedistributionLicense(..., region={"asia", "europe"})``.
    """
    if isinstance(value, DiscreteSet):
        return value
    return DiscreteSet(value)
