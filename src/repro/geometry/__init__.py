"""Geometric substrate: intervals, discrete extents, and hyper-rectangles.

The paper's Section 3.1 maps every license with ``M`` instance-based
constraints onto an M-dimensional hyper-rectangle; this subpackage supplies
that geometry.
"""

from repro.geometry.box import Box, Extent, common_region
from repro.geometry.discrete import DiscreteSet, as_discrete
from repro.geometry.interval import Interval

__all__ = [
    "Box",
    "DiscreteSet",
    "Extent",
    "Interval",
    "as_discrete",
    "common_region",
]
