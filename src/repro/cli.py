"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Produce a synthetic workload and write the pool (JSON) and log (JSONL).
``validate``
    Offline-validate a pool + log with a chosen engine.
``experiment``
    Regenerate one of the paper's figures (6-10) as an ASCII table.
``headroom``
    Query how many more counts a license set can absorb given a log.
``diagnose``
    On an invalid log: minimal violated sets + a minimal revocation plan.
``serve-bench``
    Drive a synthetic workload through the group-sharded validation
    service and print its metrics report (throughput, latency
    percentiles, rejection breakdown).  ``--trace``/``--events-out``/
    ``--metrics-out`` export span JSONL, the structured event journal,
    and Prometheus text for offline analysis.
``serve``
    Run the wire-level admission server (:mod:`repro.net`): a framed
    TCP front end over the validation service with bounded in-flight
    backpressure and graceful drain on SIGTERM/SIGINT.  ``--port 0``
    binds an ephemeral port; ``--port-file`` publishes it for scripts.
``loadgen``
    Drive an async open-loop or closed-loop usage stream at a running
    ``serve`` instance and print accepted/rejected counts, throughput,
    and nearest-rank latency percentiles.  The workload knobs
    (``-n``/``--seed``/``--clusters``/``--stream``/``--skew``) must
    match the server's so the regenerated stream matches its pool.
    ``--trace`` writes the client span journal for ``trace-assemble``.
``admin``
    Query a *live* ``serve`` instance over the wire's ADMIN message
    family (protocol v2): metrics snapshot, graded health, SLO
    statuses, top-N slowest server spans, or the event-log tail.
``trace-assemble``
    Merge a client (``loadgen --trace``) and a server (``serve
    --trace``) span journal into one clock-aligned cross-process span
    tree: the server's request subtree parents under the client's
    ``wire_request`` span.
``obs-report``
    Summarize a trace (span trees, slowest spans, per-name totals)
    and/or a structured event log produced by ``serve-bench``.
``report``
    Render the auto-generated performance report from the persistent
    run registry (``benchmarks/runs/registry.jsonl``): run inventory,
    rps/p99 trajectories, phase breakdowns, kernel crossover, and
    cross-run regression attribution.  ``--results-dir`` regenerates
    (or, with ``--check``, drift-checks) the ``benchmarks/results``
    text summaries from the newest recorded bench run.  Runs are
    recorded by ``serve-bench --record`` / ``loadgen --record`` and the
    benchmark suite's ``--record-runs`` / ``REPRO_BENCH_RECORD=1``.
``monitor-report``
    Render monitoring artifacts: the alert timeline from an event
    journal, a health snapshot written by ``serve-bench --health-out``,
    and/or alert/SLO gauges from an exported Prometheus file.
``demo``
    Walk through the paper's Example 1 end to end.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    ExperimentSuite,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
)
from repro.core.validator import GroupedValidator
from repro.licenses.rel import dumps_pool, loads_pool
from repro.logstore.io import dump_log, load_log
from repro.validation.naive import ExpansionValidator, ScanValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.validation.zeta import ZetaValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - imports for annotations only
    from repro.licenses.pool import LicensePool
    from repro.logstore.log import ValidationLog
    from repro.obs.monitor import Slo

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Geometric DRM license validation (paper reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic workload")
    generate.add_argument("-n", "--licenses", type=int, required=True)
    generate.add_argument("--records", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--pool-out", default="pool.json")
    generate.add_argument("--log-out", default="log.jsonl")

    validate = commands.add_parser("validate", help="offline-validate a pool + log")
    validate.add_argument("--pool", required=True)
    validate.add_argument("--log", required=True)
    validate.add_argument(
        "--engine",
        choices=["grouped", "grouped-zeta", "tree", "scan", "expansion", "zeta"],
        default="grouped",
    )

    experiment = commands.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument("figure", type=int, choices=[6, 7, 8, 9, 10])
    experiment.add_argument(
        "--sweep", type=int, nargs="+", default=None, metavar="N"
    )
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--records-per-license", type=int, default=60)

    headroom = commands.add_parser(
        "headroom", help="remaining capacity for a license set"
    )
    headroom.add_argument("--pool", required=True)
    headroom.add_argument("--log", required=True)
    headroom.add_argument(
        "--set", required=True, type=int, nargs="+", metavar="INDEX",
        help="1-based license indexes of the set",
    )

    diagnose = commands.add_parser(
        "diagnose", help="minimal violations + revocation plan for a log"
    )
    diagnose.add_argument("--pool", required=True)
    diagnose.add_argument("--log", required=True)

    profile = commands.add_parser(
        "profile", help="shape statistics of a pool + log workload"
    )
    profile.add_argument("--pool", required=True)
    profile.add_argument("--log", required=True)

    simulate = commands.add_parser(
        "simulate", help="compare online validation policies on one stream"
    )
    simulate.add_argument("-n", "--licenses", type=int, default=8)
    simulate.add_argument("--stream", type=int, default=400)
    simulate.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve-bench", help="drive a workload through the validation service"
    )
    serve.add_argument("-n", "--licenses", type=int, default=24)
    serve.add_argument("--stream", type=int, default=1000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--batch", type=int, default=32)
    serve.add_argument(
        "--executor",
        choices=[
            "serial", "thread", "process", "process-roundtrip", "resident",
        ],
        default="serial",
        help="drain scheduling backend; 'resident' keeps long-lived "
             "worker processes that own shard state (O(batch) IPC per "
             "drain), 'process' is its deprecated alias, "
             "'process-roundtrip' is the old per-drain state pickler",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="resident-backend worker processes (0 = one per shard)",
    )
    serve.add_argument("--queue-capacity", type=int, default=256)
    serve.add_argument(
        "--kernel", choices=["tree", "dense"], default="tree",
        help="per-group equation engine: 'tree' walks the validation tree "
             "of [10]; 'dense' keeps resident headroom tables for O(1) "
             "admission (identical verdicts, different cost model)",
    )
    serve.add_argument(
        "--kernel-cap", type=int, default=None, metavar="N",
        help="largest group size served by the dense kernel; bigger "
             "groups fall back to the tree walk (default 20)",
    )
    serve.add_argument("--clusters", type=int, default=8)
    serve.add_argument("--skew", type=float, default=0.0)
    serve.add_argument(
        "--compare", action="store_true",
        help="also sweep shard counts {1, 2, 4, 8} and print a table",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the run's span tree as JSONL (enables tracing)",
    )
    serve.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="head-sampling rate for traces (default 1.0 = keep all)",
    )
    serve.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the structured event journal (admissions, rejections, "
             "backpressure) as JSONL",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final metrics registry in Prometheus text format",
    )
    serve.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="attach a monitor with this SLO; SPEC is "
             "'availability:OBJECTIVE' or 'latency:OBJECTIVE:TARGET_SECONDS' "
             "(repeatable)",
    )
    serve.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="attach a monitor and write its final snapshot "
             "(health/SLOs/alerts) as JSON",
    )
    serve.add_argument(
        "--record", default=None, metavar="DIR",
        help="append this run to the persistent run registry rooted at "
             "DIR (registry.jsonl; see 'repro report')",
    )
    serve.add_argument(
        "--record-label", default="", metavar="LABEL",
        help="free-form label stored with the recorded run",
    )

    wire = commands.add_parser(
        "serve", help="run the wire-level admission server"
    )
    wire.add_argument("-n", "--licenses", type=int, default=24)
    wire.add_argument("--seed", type=int, default=0)
    wire.add_argument("--clusters", type=int, default=8)
    wire.add_argument("--shards", type=int, default=4)
    wire.add_argument("--batch", type=int, default=32)
    wire.add_argument(
        "--executor",
        choices=[
            "serial", "thread", "process", "process-roundtrip", "resident",
        ],
        default="serial",
        help="drain scheduling backend ('resident' = long-lived worker "
             "processes owning shard state; 'process' is its alias)",
    )
    wire.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="resident-backend worker processes (0 = one per shard)",
    )
    wire.add_argument("--queue-capacity", type=int, default=256)
    wire.add_argument("--kernel", choices=["tree", "dense"], default="tree")
    wire.add_argument("--kernel-cap", type=int, default=None, metavar="N")
    wire.add_argument("--host", default="127.0.0.1")
    wire.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default 0 = ephemeral)",
    )
    wire.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port number here once listening "
             "(ephemeral-port discovery for scripts)",
    )
    wire.add_argument(
        "--max-inflight", type=int, default=256,
        help="bounded in-flight admission window; excess requests get "
             "wire-level OVERLOADED responses (default 256)",
    )
    wire.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the structured event journal (conn_open/conn_close/"
             "drain plus admission events) as JSONL",
    )
    wire.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final metrics registry in Prometheus text format",
    )
    wire.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the server span journal as JSONL on drain; spans of "
             "v2 requests parent under the client's wire_request span "
             "(merge with the client journal via trace-assemble)",
    )
    wire.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="head-sampling rate for server traces (default 1.0); "
             "remote-parented request spans are always kept",
    )
    wire.add_argument(
        "--monitor", action="store_true",
        help="attach a default monitor so admin health/slo queries "
             "answer with graded indicators",
    )

    loadgen = commands.add_parser(
        "loadgen", help="drive async load at a running serve instance"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("-n", "--licenses", type=int, default=24)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--clusters", type=int, default=8)
    loadgen.add_argument("--stream", type=int, default=1000)
    loadgen.add_argument("--skew", type=float, default=0.0)
    loadgen.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed = fixed concurrency, back-to-back; "
             "open = fixed arrival rate (default closed)",
    )
    loadgen.add_argument("--concurrency", type=int, default=4)
    loadgen.add_argument(
        "--rate", type=float, default=500.0,
        help="open-loop arrival rate in requests/second (default 500)",
    )
    loadgen.add_argument(
        "--warmup", type=int, default=0,
        help="leading responses excluded from the measured window",
    )
    loadgen.add_argument("--timeout", type=float, default=10.0)
    loadgen.add_argument("--retries", type=int, default=4)
    loadgen.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the report summary as JSON",
    )
    loadgen.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the client span journal (one wire_request span per "
             "request, context propagated to the server) as JSONL",
    )
    loadgen.add_argument(
        "--record", default=None, metavar="DIR",
        help="append this run (stats + server phase means) to the "
             "persistent run registry rooted at DIR",
    )
    loadgen.add_argument(
        "--record-label", default="", metavar="LABEL",
        help="free-form label stored with the recorded run",
    )

    admin = commands.add_parser(
        "admin", help="query a live serve instance over the ADMIN channel"
    )
    admin.add_argument(
        "query",
        choices=["metrics", "health", "slo", "slowest", "events"],
        help="metrics = registry snapshot; health = wire window + graded "
             "indicators; slo = error-budget statuses; slowest = top-N "
             "server spans; events = event-log tail",
    )
    admin.add_argument("--host", default="127.0.0.1")
    admin.add_argument("--port", type=int, required=True)
    admin.add_argument(
        "--limit", type=int, default=None,
        help="result cap for slowest/events (server default 10/50)",
    )

    trace_assemble = commands.add_parser(
        "trace-assemble",
        help="merge client and server trace journals into one "
             "cross-process span tree",
    )
    trace_assemble.add_argument(
        "--client", required=True, metavar="PATH",
        help="client span JSONL (loadgen --trace)",
    )
    trace_assemble.add_argument(
        "--server", required=True, metavar="PATH",
        help="server span JSONL (serve --trace)",
    )
    trace_assemble.add_argument(
        "--max-traces", type=int, default=3,
        help="how many merged trees to render, in start order (default 3)",
    )
    trace_assemble.add_argument(
        "--no-align", action="store_true",
        help="skip midpoint-rule clock-skew alignment of server spans",
    )
    trace_assemble.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write the merged span forest + summary as JSON",
    )

    obs_report = commands.add_parser(
        "obs-report", help="summarize a trace and/or event file"
    )
    obs_report.add_argument(
        "--trace", default=None, metavar="PATH",
        help="span JSONL produced by serve-bench --trace",
    )
    obs_report.add_argument(
        "--events", default=None, metavar="PATH",
        help="event JSONL produced by serve-bench --events-out",
    )
    obs_report.add_argument(
        "--top", type=int, default=10,
        help="how many slowest spans to list (default 10)",
    )
    obs_report.add_argument(
        "--max-traces", type=int, default=3,
        help="how many span trees to render, in start order (default 3)",
    )

    monitor_report = commands.add_parser(
        "monitor-report", help="render monitoring artifacts"
    )
    monitor_report.add_argument(
        "--health", default=None, metavar="PATH",
        help="health snapshot JSON from serve-bench --health-out",
    )
    monitor_report.add_argument(
        "--events", default=None, metavar="PATH",
        help="event JSONL (the alert timeline is extracted)",
    )
    monitor_report.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="Prometheus text from serve-bench --metrics-out "
             "(alert/SLO gauges are extracted)",
    )

    run_report = commands.add_parser(
        "report",
        help="render the performance report from the persistent run "
             "registry (or regenerate/check benchmarks/results)",
    )
    run_report.add_argument(
        "--runs-dir", default="benchmarks/runs", metavar="DIR",
        help="registry directory (default benchmarks/runs)",
    )
    run_report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the markdown report here instead of stdout",
    )
    run_report.add_argument(
        "--title", default="Performance report",
        help="report heading (default 'Performance report')",
    )
    run_report.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="instead of the report, regenerate the benchmark results "
             "text summaries in DIR from the newest recorded bench run",
    )
    run_report.add_argument(
        "--check", action="store_true",
        help="with --results-dir: verify the on-disk summaries match "
             "the registry instead of rewriting them (exit 1 on drift)",
    )

    conformance = commands.add_parser(
        "conformance", help="run the built-in conformance vectors"
    )
    conformance.add_argument(
        "--export-dir", default=None,
        help="also write the vectors as JSON files into this directory",
    )

    lint = commands.add_parser(
        "lint", help="run the repository's AST-based invariant checker"
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    commands.add_parser("demo", help="walk through the paper's Example 1")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    config = WorkloadConfig(
        n_licenses=args.licenses, seed=args.seed, n_records=args.records
    )
    generator = WorkloadGenerator(config)
    workload = generator.generate()
    with open(args.pool_out, "w", encoding="utf-8") as stream:
        stream.write(dumps_pool(workload.pool, workload.schema, indent=2))
    records = dump_log(workload.log, args.log_out)
    print(
        f"wrote {len(workload.pool)} licenses to {args.pool_out} "
        f"and {records} log records to {args.log_out}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    with open(args.pool, "r", encoding="utf-8") as stream:
        pool, _schema = loads_pool(stream.read())
    log = load_log(args.log)
    aggregates = pool.aggregate_array()
    if args.engine == "grouped":
        report = GroupedValidator.from_pool(pool).validate(log)
    elif args.engine == "grouped-zeta":
        from repro.core.grouped_zeta import GroupedZetaValidator

        report = GroupedZetaValidator.from_pool(pool).validate(log)
    elif args.engine == "tree":
        report = TreeValidator(aggregates).validate(ValidationTree.from_log(log))
    elif args.engine == "scan":
        report = ScanValidator(aggregates).validate_log(log)
    elif args.engine == "expansion":
        report = ExpansionValidator(aggregates).validate_log(log)
    else:
        report = ZetaValidator(aggregates).validate_log(log)
    print(report)
    return 0 if report.is_valid else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    suite = ExperimentSuite(
        n_values=args.sweep or None or ExperimentSuite().n_values,
        seed=args.seed,
        records_per_license=args.records_per_license,
    )
    if args.figure == 6:
        print(render_figure6(suite.figure6()))
    elif args.figure == 7:
        from repro.analysis.charts import timing_chart

        rows = suite.figure7()
        print(render_figure7(rows))
        print()
        print(timing_chart(rows, title="Figure 7"))
    elif args.figure == 8:
        rows = suite.figure7()
        print(render_figure8(suite.figure8(rows)))
    elif args.figure == 9:
        print(render_figure9(suite.figure9()))
    else:
        print(render_figure10(suite.figure10()))
    return 0


def _load_pool_and_log(
    args: argparse.Namespace,
) -> "Tuple[LicensePool, ValidationLog]":
    with open(args.pool, "r", encoding="utf-8") as stream:
        pool, _schema = loads_pool(stream.read())
    return pool, load_log(args.log)


def _cmd_headroom(args: argparse.Namespace) -> int:
    pool, log = _load_pool_and_log(args)
    validator = GroupedValidator.from_pool(pool)
    slack = validator.headroom(log, set(args.set))
    names = ", ".join(pool[i].license_id for i in sorted(set(args.set)))
    print(f"headroom for {{{names}}}: {slack} counts")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.validation.diagnosis import minimal_violations, revocation_plan
    from repro.validation.bitset import indexes_of

    pool, log = _load_pool_and_log(args)
    report = GroupedValidator.from_pool(pool).validate(log)
    print(report.summary())
    if report.is_valid:
        return 0
    print("minimal violated sets:")
    for violation in minimal_violations(report):
        names = ", ".join(
            pool[i].license_id for i in sorted(violation.license_set)
        )
        print(f"  {{{names}}}: issued {violation.lhs} > capacity {violation.rhs}")
    total, plan = revocation_plan(log.counts_by_mask(), pool.aggregate_array())
    print(f"minimum counts to revoke: {total}")
    for mask, amount in sorted(plan.items()):
        names = ", ".join(pool[i].license_id for i in indexes_of(mask))
        print(f"  revoke {amount} from issuances matched to {{{names}}}")
    return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.profile import profile_workload

    pool, log = _load_pool_and_log(args)
    print(profile_workload(pool, log).render())
    validator = GroupedValidator.from_pool(pool)
    print()
    print(validator.explain())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.online.session import IssuanceSession
    from repro.online.strategies import (
        BestFit,
        FirstFit,
        GreedyMaxRemaining,
        LastFit,
        RandomPick,
    )

    config = WorkloadConfig(
        n_licenses=args.licenses,
        seed=args.seed,
        n_records=0,
        aggregate_range=(300, 900),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, args.stream))
    rows = []
    for policy in (RandomPick(seed=args.seed), LastFit(), FirstFit(),
                   BestFit(), GreedyMaxRemaining(), "equation"):
        session = IssuanceSession(pool, policy)
        for usage in stream:
            session.issue(usage)
        accepted = sum(outcome.accepted for outcome in session.outcomes)
        rows.append(
            [session.policy_name, accepted, len(stream) - accepted,
             session.accepted_counts]
        )
    print(
        render_table(
            ["policy", "accepted", "rejected", "counts served"],
            rows,
            title=(
                f"Online policies: N={args.licenses}, "
                f"{len(stream)} usage licenses"
            ),
        )
    )
    return 0


def _parse_slo_spec(spec: str) -> "Slo":
    """Parse a ``--slo`` spec: ``availability:OBJ`` / ``latency:OBJ:TARGET``."""
    from repro.errors import ServiceError
    from repro.obs.monitor import Slo

    parts = spec.split(":")
    if parts[0] == "availability" and len(parts) == 2:
        return Slo("availability", objective=float(parts[1]))
    if parts[0] == "latency" and len(parts) == 3:
        return Slo(
            "latency",
            objective=float(parts[1]),
            kind="latency",
            latency_target=float(parts[2]),
        )
    raise ServiceError(
        f"bad --slo spec {spec!r}: expected 'availability:OBJECTIVE' or "
        "'latency:OBJECTIVE:TARGET_SECONDS'"
    )


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.tables import render_table
    from repro.service import ServiceConfig, ValidationService

    config = WorkloadConfig(
        n_licenses=args.licenses,
        seed=args.seed,
        n_records=0,
        target_groups=min(args.clusters, args.licenses),
        aggregate_range=(300, 900),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, args.stream, skew=args.skew))

    tracer = None
    events = None
    if args.trace:
        from repro.obs.trace import SamplingConfig, Tracer

        tracer = Tracer(SamplingConfig(rate=args.sample_rate))
    if args.events_out:
        from repro.obs.events import EventLog

        events = EventLog(args.events_out)
    monitor = None
    if args.slo or args.health_out:
        from repro.obs.monitor import Monitor, MonitorConfig

        config_kwargs = {}
        if args.slo:
            config_kwargs["slos"] = tuple(
                _parse_slo_spec(spec) for spec in args.slo
            )
        monitor = Monitor(MonitorConfig(**config_kwargs), events=events)

    kernel_kwargs = {"kernel": args.kernel}
    if args.kernel_cap is not None:
        kernel_kwargs["kernel_cap"] = args.kernel_cap

    def run(shards: int, executor: str, *, observed: bool = False):
        service = ValidationService(
            pool,
            ServiceConfig(
                shards=shards,
                batch_size=args.batch,
                queue_capacity=args.queue_capacity,
                executor=executor,
                workers=args.workers,
                **kernel_kwargs,
            ),
            tracer=tracer if observed else None,
            events=events if observed else None,
            monitor=monitor if observed else None,
        )
        started = time.perf_counter()
        outcomes = service.process(stream)
        elapsed = time.perf_counter() - started
        service.close()
        return service, outcomes, elapsed

    service, outcomes, elapsed = run(args.shards, args.executor, observed=True)
    accepted = sum(outcome.accepted for outcome in outcomes)
    print(service.report())
    print()
    print(
        f"{len(stream)} requests in {elapsed:.3f}s -> "
        f"{len(stream) / elapsed:,.0f} req/s "
        f"({accepted} accepted, {len(stream) - accepted} rejected; "
        f"{service.group_count} group(s) on {service.shard_count} shard(s))"
    )
    if monitor is not None:
        print()
        print(monitor.report())
    if args.health_out:
        import json

        with open(args.health_out, "w", encoding="utf-8") as handle:
            json.dump(monitor.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote health snapshot to {args.health_out}")
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(
            f"wrote {len(tracer.records())} span(s) "
            f"({tracer.roots_sampled}/{tracer.roots_started} roots sampled) "
            f"to {args.trace}"
        )
    if events is not None:
        events.close()
        print(f"wrote {events.emitted} event(s) to {args.events_out}")
    if args.metrics_out:
        from repro.obs.export import render_prometheus

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(service.metrics))
        print(f"wrote Prometheus metrics to {args.metrics_out}")
    if args.record:
        from repro.obs.runs import RunRegistry, build_serve_bench_record

        registry = RunRegistry(args.record)
        record = registry.append(
            build_serve_bench_record(
                registry,
                service,
                elapsed=elapsed,
                requests=len(stream),
                accepted=accepted,
                config={
                    "licenses": args.licenses,
                    "stream": args.stream,
                    "seed": args.seed,
                    "shards": args.shards,
                    "batch": args.batch,
                    # The canonical backend ('process' -> 'resident'), so
                    # report trajectories attribute rps movement to real
                    # executor changes, not alias spelling.
                    "executor": service.executor_backend,
                    "workers": args.workers,
                    "kernel": args.kernel,
                    "clusters": args.clusters,
                    "skew": args.skew,
                },
                label=args.record_label,
            )
        )
        print(f"recorded {record.run_id} in {registry.path}")
    if args.compare:
        rows = []
        reference = [outcome.accepted for outcome in outcomes]
        for shards in (1, 2, 4, 8):
            swept_service, swept, swept_elapsed = run(shards, args.executor)
            assert [outcome.accepted for outcome in swept] == reference, (
                "verdict stream changed with shard count"
            )
            rows.append(
                [
                    shards,
                    swept_service.shard_count,
                    f"{len(stream) / swept_elapsed:,.0f}",
                    f"{swept_elapsed:.3f}",
                ]
            )
        print()
        print(
            render_table(
                ["shards requested", "effective", "req/s", "seconds"],
                rows,
                title=f"Shard sweep ({args.executor} executor, verdicts identical)",
            )
        )
    return 0


def _wire_workload(args: argparse.Namespace) -> "Tuple[WorkloadGenerator, LicensePool]":
    """Regenerate the shared serve/loadgen workload deterministically.

    Both commands build the same :class:`WorkloadConfig` from the same
    knobs, so a ``loadgen`` run pointed at a ``serve`` run with matching
    ``-n``/``--seed``/``--clusters`` issues exactly the stream the
    server's pool was generated for.
    """
    config = WorkloadConfig(
        n_licenses=args.licenses,
        seed=args.seed,
        n_records=0,
        target_groups=min(args.clusters, args.licenses),
        aggregate_range=(300, 900),
    )
    generator = WorkloadGenerator(config)
    return generator, generator.generate_pool()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.net.server import AdmissionServer, WireServerConfig
    from repro.service import ServiceConfig, ValidationService

    _generator, pool = _wire_workload(args)
    events = None
    if args.events_out:
        from repro.obs.events import EventLog

        events = EventLog(args.events_out)
    tracer = None
    if args.trace:
        from repro.obs.trace import SamplingConfig, Tracer

        tracer = Tracer(SamplingConfig(rate=args.sample_rate))
    monitor = None
    if args.monitor:
        from repro.obs.monitor import Monitor, MonitorConfig

        monitor = Monitor(MonitorConfig(), events=events)
    kernel_kwargs = {"kernel": args.kernel}
    if args.kernel_cap is not None:
        kernel_kwargs["kernel_cap"] = args.kernel_cap
    service = ValidationService(
        pool,
        ServiceConfig(
            shards=args.shards,
            batch_size=args.batch,
            queue_capacity=args.queue_capacity,
            executor=args.executor,
            workers=args.workers,
            **kernel_kwargs,
        ),
        tracer=tracer,
        events=events,
        monitor=monitor,
    )
    server = AdmissionServer(
        service,
        WireServerConfig(
            host=args.host, port=args.port, max_inflight=args.max_inflight
        ),
    )

    async def _serve() -> None:
        host, port = await server.start()
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{port}\n")
        print(
            f"serving {len(pool)} license(s) on {host}:{port} "
            f"(max in-flight {args.max_inflight}); "
            "SIGTERM/SIGINT drains and exits",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        await server.shutdown()

    asyncio.run(_serve())
    print(
        f"drained: {server.requests_served} request(s) served, "
        f"{server.in_flight} in flight",
        flush=True,
    )
    service.close()
    if events is not None:
        events.close()
        print(f"wrote {events.emitted} event(s) to {args.events_out}")
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"wrote {len(tracer.records())} span(s) to {args.trace}")
    if args.metrics_out:
        from repro.obs.export import render_prometheus

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(service.metrics))
        print(f"wrote Prometheus metrics to {args.metrics_out}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.net.loadgen import LoadGenerator, LoadgenConfig

    generator, pool = _wire_workload(args)
    stream = list(generator.issue_stream(pool, args.stream, skew=args.skew))
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer

        tracer = Tracer()
    load = LoadGenerator(
        LoadgenConfig(
            mode=args.mode,
            concurrency=args.concurrency,
            rate=args.rate,
            warmup=args.warmup,
            timeout=args.timeout,
            retries=args.retries,
        ),
        tracer=tracer,
    )
    report = load.run_sync(args.host, args.port, stream)
    print(report.render())
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.json_out}")
    if tracer is not None:
        tracer.write_jsonl(args.trace)
        print(f"wrote {len(tracer.records())} span(s) to {args.trace}")
    if args.record:
        from repro.obs.runs import RunRegistry, build_loadgen_record

        registry = RunRegistry(args.record)
        record = registry.append(
            build_loadgen_record(
                registry,
                report.to_json(),
                config={
                    "licenses": args.licenses,
                    "stream": args.stream,
                    "seed": args.seed,
                    "clusters": args.clusters,
                    "skew": args.skew,
                    "mode": args.mode,
                    "concurrency": args.concurrency,
                    "rate": args.rate,
                    "warmup": args.warmup,
                },
                label=args.record_label,
            )
        )
        print(f"recorded {record.run_id} in {registry.path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.obs.runs import RunRegistry, render_report, render_results
    from repro.obs.runs import results_drift

    registry = RunRegistry(args.runs_dir)
    if args.results_dir:
        if args.check:
            drift = results_drift(registry, args.results_dir)
            if drift:
                for message in drift:
                    print(f"results drift: {message}", file=sys.stderr)
                return 1
            print("benchmark results match the recorded run")
            return 0
        rendered = render_results(registry)
        if not rendered:
            print("no recorded bench run carries results artifacts")
            return 0
        os.makedirs(args.results_dir, exist_ok=True)
        for stem, text in rendered.items():
            path = os.path.join(args.results_dir, f"{stem}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {path}")
        return 0
    text = render_report(registry, title=args.title)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report to {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_admin(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.net.client import AdmissionClient

    async def _query() -> dict:
        client = AdmissionClient(
            args.host, args.port, client_name="repro-admin"
        )
        await client.connect()
        try:
            return await client.admin(args.query, limit=args.limit)
        finally:
            await client.close()

    reply = asyncio.run(_query())
    print(json.dumps(reply, indent=2, sort_keys=True))
    return 0


def _cmd_trace_assemble(args: argparse.Namespace) -> int:
    from repro.obs.distrib import assemble_files

    merged = assemble_files(
        args.client, args.server, align_clocks=not args.no_align
    )
    print(merged.render(max_traces=args.max_traces))
    if args.json_out:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(merged.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote assembled trace to {args.json_out}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.events import EventLog
    from repro.obs.export import (
        load_trace_jsonl,
        render_span_tree,
        summarize_events,
        top_slowest,
    )

    import os

    if not args.trace and not args.events:
        print("obs-report: provide --trace and/or --events", file=sys.stderr)
        return 2
    if args.trace:
        # A missing or empty journal is a zero-data report, not a crash:
        # fresh deployments ask for reports before any span is written.
        records = (
            load_trace_jsonl(args.trace)
            if os.path.exists(args.trace)
            else []
        )
        traces = {record.trace_id for record in records}
        per_name: dict = {}
        for record in records:
            count, total = per_name.get(record.name, (0, 0.0))
            per_name[record.name] = (count + 1, total + record.duration)
        print(f"{len(records)} span(s) across {len(traces)} trace(s)")
        for name in sorted(per_name):
            count, total = per_name[name]
            print(f"  {name}: {count} span(s), {total * 1e3:.3f}ms total")
        print()
        print(top_slowest(records, args.top))
        print()
        print(render_span_tree(records, max_traces=args.max_traces))
    if args.events:
        if args.trace:
            print()
        print(summarize_events(EventLog.iter_file(args.events)))
    return 0


def _cmd_monitor_report(args: argparse.Namespace) -> int:
    import json

    if not args.health and not args.events and not args.metrics:
        print(
            "monitor-report: provide --health, --events, and/or --metrics",
            file=sys.stderr,
        )
        return 2
    sections: List[str] = []
    if args.health:
        with open(args.health, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        lines = [f"health: {snapshot['status']} ({snapshot['ticks']} tick(s))"]
        for ind in snapshot.get("indicators", ()):
            lines.append(
                f"  [{ind['status']:8s}] {ind['name']}: {ind['value']:.4g}  "
                f"({ind['detail']})"
            )
        for slo in snapshot.get("slos", ()):
            verdict = "met" if slo["met"] else "VIOLATED"
            lines.append(
                f"  slo {slo['name']} ({slo['kind']}): {verdict}, "
                f"compliance {slo['compliance']:.6f} vs {slo['objective']:.6f}, "
                f"burn {slo['burn_rate']:.3f}"
            )
        for rule, state in snapshot.get("alerts", {}).items():
            lines.append(f"  alert {rule}: {state}")
        sections.append("\n".join(lines))
    if args.events:
        from repro.obs.events import EVENT_ALERT, EventLog

        transitions = [
            event for event in EventLog.iter_file(args.events)
            if event.get("kind") == EVENT_ALERT
        ]
        lines = [f"alert timeline: {len(transitions)} transition(s)"]
        by_rule: dict = {}
        for event in transitions:
            by_rule.setdefault(event["rule"], []).append(event)
            lines.append(
                f"  seq={event['seq']} at={event['at']:.3f} "
                f"{event['rule']}: {event['from_state']} -> "
                f"{event['to_state']} (value {event['value']:.4g})"
            )
        for rule in sorted(by_rule):
            fired = sum(
                1 for event in by_rule[rule] if event["to_state"] == "firing"
            )
            lines.append(
                f"  {rule}: {len(by_rule[rule])} transition(s), {fired} firing"
            )
        sections.append("\n".join(lines))
    if args.metrics:
        from repro.obs.export import parse_prometheus

        with open(args.metrics, "r", encoding="utf-8") as handle:
            samples = parse_prometheus(handle.read())
        wanted = (
            "alert_state", "slo_compliance", "slo_burn_rate",
            "alert_transitions_total",
            # Wire-server series (exported since the net layer landed).
            "wire_requests_total", "wire_protocol_errors_total",
            "wire_in_flight", "wire_connections_open", "wire_drains_total",
        )
        monitoring = [
            (name, labels, value)
            for name, series in sorted(samples.items())
            # Exported names may carry a namespace prefix (repro_...).
            if any(name == k or name.endswith(f"_{k}") for k in wanted)
            for labels, value in sorted(series.items())
        ]
        lines = [f"monitoring gauges: {len(monitoring)} series"]
        for name, labels, value in monitoring:
            label_text = ",".join(f"{k}={v}" for k, v in labels) or "-"
            lines.append(f"  {name}{{{label_text}}} = {value:g}")
        sections.append("\n".join(lines))
    print("\n\n".join(sections))
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.conformance import builtin_vectors, dumps_vector, run_vector

    failures = 0
    for name, vector in builtin_vectors():
        results = run_vector(vector)
        bad = [result for result in results if not result.passed]
        failures += len(bad)
        print(f"{name}: {len(results) - len(bad)}/{len(results)} checks passed")
        for result in bad:
            print(f"  {result}")
        if args.export_dir:
            target = Path(args.export_dir)
            target.mkdir(parents=True, exist_ok=True)
            (target / f"{name}.json").write_text(
                dumps_vector(vector, indent=2), encoding="utf-8"
            )
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run as run_lint

    return run_lint(args)


def _cmd_demo(_args: argparse.Namespace) -> int:
    # Imported lazily to keep CLI startup light.
    from repro.workloads.scenarios import example1, example1_log

    scenario = example1()
    validator = GroupedValidator.from_pool(scenario.pool)
    print("Example 1 pool: 5 redistribution licenses for (K, play)")
    print(f"overlap edges: {sorted(validator.graph.edges())}")
    print(f"groups: {[sorted(group) for group in validator.structure.groups]}")
    print(
        f"equations: {validator.equations_baseline} -> "
        f"{validator.equations_required} "
        f"(theoretical gain {validator.theoretical_gain:.1f}x, paper: 3.1x)"
    )
    report = validator.validate(example1_log())
    print(report.summary())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "validate": _cmd_validate,
        "experiment": _cmd_experiment,
        "headroom": _cmd_headroom,
        "diagnose": _cmd_diagnose,
        "profile": _cmd_profile,
        "simulate": _cmd_simulate,
        "serve-bench": _cmd_serve_bench,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "admin": _cmd_admin,
        "report": _cmd_report,
        "trace-assemble": _cmd_trace_assemble,
        "obs-report": _cmd_obs_report,
        "monitor-report": _cmd_monitor_report,
        "conformance": _cmd_conformance,
        "lint": _cmd_lint,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
