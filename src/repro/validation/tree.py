"""The validation tree of [10] (Algorithm 1 + subset-sum traversal).

The tree is a prefix tree over *ascending* license indexes: the record
``({L_D^1, L_D^2, L_D^4}, 30)`` creates/updates the path
``root -> 1 -> 2 -> 4`` and adds 30 to the terminal node's count.  The count
stored at a node is ``C[S]`` for the set ``S`` spelled by the path from the
root (Figure 1 of the paper).

Child lists are kept ordered by ascending index (the paper: "child nodes of
a node are ordered in increasing order of their indexes"), which the
insertion algorithm exploits to stop scanning early.

The key query is :meth:`ValidationTree.subset_sum`: the LHS ``C⟨S⟩`` of a
validation equation is the sum of counts over all stored sets that are
subsets of ``S`` -- computed by descending only into children whose index
belongs to ``S``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord

__all__ = ["TreeNode", "ValidationTree"]


class TreeNode:
    """One validation-tree node: a license index, a count, ordered children.

    ``index == 0`` marks the root (no license).  ``count`` is the aggregate
    ``C[S]`` of the set spelled by the root->node path; interior nodes whose
    set never appeared in the log carry 0.
    """

    __slots__ = ("index", "count", "children")

    def __init__(self, index: int = 0, count: int = 0):
        self.index = index
        self.count = count
        self.children: List["TreeNode"] = []

    def child_with_index(self, index: int) -> Optional["TreeNode"]:
        """Return the child holding ``index``, or ``None``.

        Sequential scan over the ordered child list, stopping as soon as a
        larger index is seen -- exactly step 1 of Algorithm 1.
        """
        for child in self.children:
            if child.index == index:
                return child
            if child.index > index:
                return None
        return None

    def insert_child(self, index: int) -> "TreeNode":
        """Insert (or return existing) child with ``index``, keeping the
        child list ordered ascending."""
        position = 0
        for position, child in enumerate(self.children):
            if child.index == index:
                return child
            if child.index > index:
                break
        else:
            position = len(self.children)
        node = TreeNode(index)
        self.children.insert(position, node)
        return node

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TreeNode(index={self.index}, count={self.count}, children={len(self.children)})"


class ValidationTree:
    """Prefix tree over log records (the paper's *validation tree*).

    Examples
    --------
    >>> tree = ValidationTree()
    >>> tree.insert_set((1, 2), 800)
    >>> tree.insert_set((2,), 400)
    >>> tree.subset_sum(0b11)          # C<{1,2}> = C[{1}]+C[{2}]+C[{1,2}]
    1200
    >>> tree.subset_sum(0b10)          # C<{2}> = C[{2}]
    400
    """

    def __init__(self, root: Optional[TreeNode] = None):
        self.root = root if root is not None else TreeNode()

    # ------------------------------------------------------------------
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------
    def insert(self, record: LogRecord) -> None:
        """Insert one log record (Algorithm 1)."""
        self.insert_set(record.sorted_indexes, record.count)

    def insert_set(self, sorted_indexes: Sequence[int], count: int) -> None:
        """Insert a pre-sorted index sequence with a count.

        The recursion of Algorithm 1 is unrolled into a loop: walk/extend
        the path ``root -> r1 -> r2 -> ...`` and add ``count`` at the final
        node.
        """
        if not sorted_indexes:
            raise ValidationError("cannot insert an empty license set")
        if count < 0:
            raise ValidationError(f"count must be non-negative, got {count}")
        previous = 0
        node = self.root
        for index in sorted_indexes:
            if index <= previous:
                raise ValidationError(
                    f"license indexes must be strictly ascending: {sorted_indexes!r}"
                )
            previous = index
            node = node.insert_child(index)
        node.count += count

    def insert_recursive(self, record: LogRecord) -> None:
        """Algorithm 1 transcribed literally (recursive ``Insert(T, R, count)``).

        Semantically identical to :meth:`insert` (tested); kept for
        fidelity with the paper's pseudocode.  Prefer :meth:`insert` in
        production -- very long records would recurse deeply.
        """

        def insert(node: TreeNode, remaining: Sequence[int], count: int) -> None:
            # Step 1-3: find or create the child holding the first index.
            first, rest = remaining[0], remaining[1:]
            child = node.child_with_index(first)
            if child is None:
                child = node.insert_child(first)
            # Step 4: add at the last node, else recurse on R'.
            if not rest:
                child.count += count
            else:
                insert(child, rest, count)

        indexes = record.sorted_indexes
        if not indexes:
            raise ValidationError("cannot insert an empty license set")
        insert(self.root, indexes, record.count)

    @classmethod
    def from_log(cls, log: ValidationLog) -> "ValidationTree":
        """Build a tree by inserting every record of a log in order."""
        tree = cls()
        for record in log:
            tree.insert(record)
        return tree

    @classmethod
    def from_counts(cls, counts_by_set: Dict[frozenset, int]) -> "ValidationTree":
        """Build a tree directly from aggregated ``{S: C[S]}`` counts."""
        tree = cls()
        for license_set, count in counts_by_set.items():
            tree.insert_set(tuple(sorted(license_set)), count)
        return tree

    def merge(self, other: "ValidationTree") -> None:
        """Add every count stored in ``other`` into this tree.

        Lets a validation authority combine log shards kept by different
        collectors: merging the shard trees equals building one tree over
        the concatenated logs (validation sees only aggregated counts).
        ``other`` is not modified.
        """
        stack: List[Tuple[TreeNode, Tuple[int, ...]]] = [
            (child, (child.index,)) for child in other.root.children
        ]
        while stack:
            node, path = stack.pop()
            if node.count:
                self.insert_set(path, node.count)
            stack.extend(
                (child, path + (child.index,)) for child in node.children
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def subset_sum(self, mask: int) -> int:
        """Return ``C⟨S⟩``: the sum of stored counts over all sets that are
        subsets of the set encoded by ``mask``.

        The traversal only descends into children whose index is in the
        mask; every node reached that way spells a subset of ``S``, so its
        count contributes.  Cost is proportional to the number of tree
        nodes whose path lies inside ``S``.
        """
        total = 0
        # Iterative DFS to avoid recursion-depth limits on deep trees.
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                if mask & (1 << (child.index - 1)):
                    total += child.count
                    if child.children:
                        stack.append(child)
        return total

    def subset_sum_counting(self, mask: int) -> Tuple[int, int]:
        """:meth:`subset_sum` plus the number of tree nodes visited.

        A separate method (rather than an optional counter argument) so
        the un-instrumented :meth:`subset_sum` hot loop stays exactly as
        fast; instrumented validators switch to this variant.
        """
        total = 0
        visited = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                visited += 1
                if mask & (1 << (child.index - 1)):
                    total += child.count
                    if child.children:
                        stack.append(child)
        return total, visited

    def counts_by_mask(self) -> Dict[int, int]:
        """Reconstruct the aggregated ``{mask: C[S]}`` mapping from the tree
        (zero-count interior nodes are omitted).  Used for cross-engine
        consistency checks."""
        counts: Dict[int, int] = {}
        stack: List[Tuple[TreeNode, int]] = [(self.root, 0)]
        while stack:
            node, mask = stack.pop()
            for child in node.children:
                child_mask = mask | (1 << (child.index - 1))
                if child.count:
                    counts[child_mask] = counts.get(child_mask, 0) + child.count
                stack.append((child, child_mask))
        return counts

    # ------------------------------------------------------------------
    # Introspection / metrics
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[TreeNode]:
        """Yield every node except the root (pre-order)."""
        stack = list(reversed(self.root.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def node_count(self) -> int:
        """Return the number of non-root nodes (the storage metric of
        Figure 10)."""
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Return the maximum path length from the root (0 for empty)."""
        best = 0
        stack: List[Tuple[TreeNode, int]] = [(self.root, 0)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            stack.extend((child, level + 1) for child in node.children)
        return best

    def max_index(self) -> int:
        """Return the largest license index stored, or 0 for an empty tree."""
        best = 0
        for node in self.iter_nodes():
            if node.index > best:
                best = node.index
        return best

    def to_nested_dict(self) -> Dict:
        """Render the tree as nested dicts (stable, for tests/debugging).

        Shape: ``{"index": i, "count": c, "children": [...]}`` with children
        in index order.
        """

        def render(node: TreeNode) -> Dict:
            return {
                "index": node.index,
                "count": node.count,
                "children": [render(child) for child in node.children],
            }

        return render(self.root)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ValidationTree(nodes={self.node_count()})"
