"""Headroom queries: how many more counts can a set still absorb?

When a new license is about to be issued against a set ``S``, only the
equations for **supersets** ``T ⊇ S`` tighten (a record with set ``S``
contributes to ``C⟨T⟩`` exactly when ``S ⊆ T``).  The maximum extra count is
therefore::

    headroom(S) = min over T ⊇ S of ( A[T] - C⟨T⟩ )

This module computes it by direct superset enumeration against a validation
tree.  Within the paper's grouped structure the enumeration can be
restricted to supersets inside ``S``'s own group (cross-group supersets are
redundant by Theorem 2), which :class:`repro.core.validator.GroupedValidator`
exploits; here the restriction is an optional ``universe_mask``.

On a *feasible* log the result agrees with the max-flow answer
(:meth:`repro.validation.flow.FlowFeasibilityOracle.remaining_capacity`);
both are property-tested against each other.  On an already-infeasible log
the two definitions intentionally differ: the flow answer is 0 ("nothing
keeps the log feasible"), while :func:`headroom` still reports the local
slack of the target's own superset equations (violations elsewhere in the
lattice do not poison unrelated sets).  Online sessions only ever query
feasible logs, where the distinction vanishes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ValidationError
from repro.validation.bitset import aggregate_sums, iter_supersets, popcount
from repro.validation.tree import ValidationTree

__all__ = ["headroom"]


def headroom(
    tree: ValidationTree,
    aggregates: Sequence[int],
    target_mask: int,
    universe_mask: Optional[int] = None,
) -> int:
    """Return the maximum extra count issuable against ``target_mask``.

    Parameters
    ----------
    tree:
        Validation tree built over the current log.
    aggregates:
        The aggregate array ``A`` (length ``N``).
    target_mask:
        Bitmask of the set ``S`` the prospective license matched.
    universe_mask:
        Restrict the superset enumeration to this universe.  Defaults to
        all ``N`` licenses; pass the target's group mask for the grouped
        (and equivalent, by Theorem 2) computation.

    Returns
    -------
    int
        ``min_{S ⊆ T ⊆ universe} (A[T] - C⟨T⟩)``, floored at 0 (a log that
        is already over capacity yields no headroom).
    """
    n = len(aggregates)
    full = (1 << n) - 1
    if target_mask == 0 or target_mask & ~full:
        raise ValidationError(f"target mask {target_mask:#b} out of range for N={n}")
    universe = full if universe_mask is None else universe_mask
    if universe & ~full:
        raise ValidationError(f"universe mask {universe:#b} out of range for N={n}")
    if target_mask & ~universe:
        raise ValidationError(
            f"target mask {target_mask:#b} not inside universe {universe:#b}"
        )
    rhs = aggregate_sums(aggregates)
    best: Optional[int] = None
    for superset in iter_supersets(target_mask, universe):
        slack = rhs[superset] - tree.subset_sum(superset)
        if best is None or slack < best:
            best = slack
            if best <= 0:
                break
    assert best is not None  # at least target_mask itself is enumerated
    return max(best, 0)


def superset_count(target_mask: int, universe_mask: int) -> int:
    """Return how many equations :func:`headroom` examines:
    ``2^(|universe| - |target|)``."""
    free = universe_mask & ~target_mask
    return 1 << popcount(free)
