"""Aggregate validation substrate: equations, the validation tree of [10],
baseline engines, the zeta-transform engine, and the max-flow oracle."""

from repro.validation.bitset import (
    aggregate_sums,
    indexes_of,
    iter_masks,
    iter_submasks,
    iter_supersets,
    mask_from_indexes,
    popcount,
)
from repro.validation.capacity import headroom
from repro.validation.complexity import (
    equation_count,
    equations_touched_by_issue,
    expansion_terms,
    grouped_equation_count,
    grouped_equations_touched,
    total_expansion_terms,
)
from repro.validation.diagnosis import (
    apply_revocation,
    min_revocation_total,
    minimal_violations,
    revocation_plan,
    select_revocations,
)
from repro.validation.equations import (
    ValidationEquation,
    enumerate_equations,
    equation_for_set,
)
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.limits import (
    DEFAULT_KERNEL_CAP,
    DENSE_TABLE_MAX_N,
    dense_table_bytes,
)
from repro.validation.naive import ExpansionValidator, ScanValidator
from repro.validation.report import ValidationReport, Violation
from repro.validation.tree import TreeNode, ValidationTree
from repro.validation.tree_io import (
    dumps_grouped,
    dumps_tree,
    loads_grouped,
    loads_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.validation.tree_validator import TreeValidator
from repro.validation.zeta import ZetaValidator, subset_sums_dense

__all__ = [
    "DEFAULT_KERNEL_CAP",
    "DENSE_TABLE_MAX_N",
    "ExpansionValidator",
    "FlowFeasibilityOracle",
    "ScanValidator",
    "TreeNode",
    "TreeValidator",
    "ValidationEquation",
    "ValidationReport",
    "ValidationTree",
    "Violation",
    "ZetaValidator",
    "aggregate_sums",
    "apply_revocation",
    "enumerate_equations",
    "equation_count",
    "equation_for_set",
    "equations_touched_by_issue",
    "expansion_terms",
    "grouped_equation_count",
    "grouped_equations_touched",
    "total_expansion_terms",
    "headroom",
    "min_revocation_total",
    "minimal_violations",
    "indexes_of",
    "iter_masks",
    "iter_submasks",
    "iter_supersets",
    "mask_from_indexes",
    "popcount",
    "dense_table_bytes",
    "revocation_plan",
    "select_revocations",
    "subset_sums_dense",
    "dumps_grouped",
    "dumps_tree",
    "loads_grouped",
    "loads_tree",
    "tree_from_dict",
    "tree_to_dict",
]
