"""Naive validation baselines (no validation tree).

Two reference engines, both operating on the aggregated ``{mask: C[S]}``
log counts:

* :class:`ScanValidator` -- for each of the ``2^N - 1`` equations, scan the
  *distinct* stored sets and add those that are subsets
  (``stored & mask == stored``).  Cost ``O(2^N · D)`` with ``D`` distinct
  sets; a decent baseline when logs are much sparser than the subset
  lattice.
* :class:`ExpansionValidator` -- the fully expanded Equation 1: enumerate
  all ``2^m - 1`` subset terms per equation (total ``3^N - 2^N`` lookups).
  This is the computation model the paper calls prohibitively expensive and
  that the validation tree of [10] was introduced to beat.

Both exist as correctness oracles and as ablation points
(``benchmarks/bench_ablation_engines.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ValidationError
from repro.logstore.log import ValidationLog
from repro.validation.bitset import aggregate_sums, iter_masks, iter_submasks
from repro.validation.report import ValidationReport, Violation, make_report

__all__ = ["ScanValidator", "ExpansionValidator"]


class _NaiveBase:
    """Shared setup for the log-scanning baselines."""

    def __init__(self, aggregates: Sequence[int]):
        if not aggregates:
            raise ValidationError("aggregate array must be non-empty")
        if any(a < 0 for a in aggregates):
            raise ValidationError(f"aggregates must be non-negative: {aggregates!r}")
        self._aggregates = list(aggregates)
        self._n = len(aggregates)
        self._rhs = aggregate_sums(self._aggregates)

    @property
    def n(self) -> int:
        """Return the number of redistribution licenses ``N``."""
        return self._n

    def _check_counts(self, counts_by_mask: Dict[int, int]) -> None:
        universe = (1 << self._n) - 1
        for mask in counts_by_mask:
            if mask == 0 or mask & ~universe:
                raise ValidationError(
                    f"log references mask {mask:#b} outside universe N={self._n}"
                )


class ScanValidator(_NaiveBase):
    """Per-equation scan over the distinct stored sets."""

    engine_name = "scan"

    def validate_counts(self, counts_by_mask: Dict[int, int]) -> ValidationReport:
        """Validate aggregated counts (``{mask: C[S]}``)."""
        self._check_counts(counts_by_mask)
        stored = list(counts_by_mask.items())
        violations: List[Violation] = []
        checked = 0
        for mask in iter_masks(self._n):
            checked += 1
            lhs = 0
            for stored_mask, count in stored:
                if stored_mask & mask == stored_mask:
                    lhs += count
            if lhs > self._rhs[mask]:
                violations.append(Violation(mask, lhs, self._rhs[mask]))
        return make_report(self.engine_name, checked, violations)

    def validate_log(self, log: ValidationLog) -> ValidationReport:
        """Validate a raw log."""
        return self.validate_counts(log.counts_by_mask())


class ExpansionValidator(_NaiveBase):
    """The fully expanded Equation 1 (``2^m - 1`` terms per equation)."""

    engine_name = "expansion"

    def validate_counts(self, counts_by_mask: Dict[int, int]) -> ValidationReport:
        """Validate aggregated counts by full subset expansion."""
        self._check_counts(counts_by_mask)
        violations: List[Violation] = []
        checked = 0
        for mask in iter_masks(self._n):
            checked += 1
            lhs = 0
            for sub in iter_submasks(mask):
                lhs += counts_by_mask.get(sub, 0)
            if lhs > self._rhs[mask]:
                violations.append(Violation(mask, lhs, self._rhs[mask]))
        return make_report(self.engine_name, checked, violations)

    def validate_log(self, log: ValidationLog) -> ValidationReport:
        """Validate a raw log."""
        return self.validate_counts(log.counts_by_mask())
