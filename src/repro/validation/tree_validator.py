"""Algorithm 2: validation of all equations via the validation tree.

For each mask ``i = 1 .. 2^N - 1`` the validator computes

* ``AV`` -- the RHS ``A[S]``, read from a precomputed subset-sum table of
  the aggregate array (the paper computes it per-equation with shift/AND;
  the table is the same arithmetic hoisted out of the loop), and
* ``CV`` -- the LHS ``C⟨S⟩``, via the validation tree's subset-sum
  traversal,

and records a violation whenever ``CV > AV``.  This is the baseline the
paper's proposed method is measured against (Figure 7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import ValidationError
from repro.logstore.log import ValidationLog
from repro.validation.bitset import aggregate_sums, iter_masks
from repro.validation.report import ValidationReport, Violation, make_report
from repro.validation.tree import ValidationTree

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.instrument import Instrumentation

__all__ = ["TreeValidator"]


class TreeValidator:
    """All-equations validator over a validation tree (paper Algorithm 2).

    Parameters
    ----------
    aggregates:
        The array ``A``: ``aggregates[j-1]`` is the aggregate constraint of
        license ``L_D^j``.  Its length fixes ``N``.

    Examples
    --------
    >>> from repro.validation.tree import ValidationTree
    >>> tree = ValidationTree()
    >>> tree.insert_set((1,), 120)
    >>> TreeValidator([100]).validate(tree).is_valid
    False
    """

    engine_name = "tree"

    def __init__(self, aggregates: Sequence[int]):
        if not aggregates:
            raise ValidationError("aggregate array must be non-empty")
        if any(a < 0 for a in aggregates):
            raise ValidationError(f"aggregates must be non-negative: {aggregates!r}")
        self._aggregates = list(aggregates)
        self._n = len(aggregates)
        self._rhs = aggregate_sums(self._aggregates)

    @property
    def n(self) -> int:
        """Return the number of redistribution licenses ``N``."""
        return self._n

    @property
    def aggregates(self) -> List[int]:
        """Return a copy of the aggregate array ``A``."""
        return list(self._aggregates)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        tree: ValidationTree,
        stop_at_first: bool = False,
        instrumentation: Optional["Instrumentation"] = None,
    ) -> ValidationReport:
        """Run every validation equation against ``tree``.

        Parameters
        ----------
        tree:
            A validation tree whose license indexes are all within
            ``1..N``.
        stop_at_first:
            If ``True``, return as soon as one violation is found (useful
            for feasibility-only queries); ``equations_checked`` then
            reflects the early exit.
        instrumentation:
            Optional :class:`repro.obs.instrument.Instrumentation`.  When
            given, ``equations_checked``/``node_visits``/``violations``
            counters are reported in bulk after the sweep (the default
            ``None`` leaves the hot loop untouched).
        """
        if tree.max_index() > self._n:
            raise ValidationError(
                f"tree references license index {tree.max_index()} "
                f"but only {self._n} aggregates were provided"
            )
        violations: List[Violation] = []
        checked = 0
        if instrumentation is None:
            for mask in iter_masks(self._n):
                checked += 1
                lhs = tree.subset_sum(mask)
                rhs = self._rhs[mask]
                if lhs > rhs:
                    violations.append(Violation(mask, lhs, rhs))
                    if stop_at_first:
                        break
        else:
            node_visits = 0
            with instrumentation.span("validate_all", n=self._n) as span:
                for mask in iter_masks(self._n):
                    checked += 1
                    lhs, visited = tree.subset_sum_counting(mask)
                    node_visits += visited
                    rhs = self._rhs[mask]
                    if lhs > rhs:
                        violations.append(Violation(mask, lhs, rhs))
                        if stop_at_first:
                            break
                span.set_attr("equations_checked", checked)
                span.set_attr("node_visits", node_visits)
            instrumentation.count("equations_checked", checked)
            instrumentation.count("node_visits", node_visits)
            if violations:
                instrumentation.count("violations", len(violations))
        return make_report(self.engine_name, checked, violations)

    def validate_log(
        self,
        log: ValidationLog,
        stop_at_first: bool = False,
        instrumentation: Optional["Instrumentation"] = None,
    ) -> ValidationReport:
        """Convenience: build the tree from ``log`` and validate."""
        return self.validate(
            ValidationTree.from_log(log),
            stop_at_first=stop_at_first,
            instrumentation=instrumentation,
        )

    def check_equation(self, tree: ValidationTree, mask: int) -> Optional[Violation]:
        """Evaluate a single validation equation; return the violation or
        ``None`` if it holds."""
        if not 1 <= mask < (1 << self._n):
            raise ValidationError(f"mask {mask} out of range for N={self._n}")
        lhs = tree.subset_sum(mask)
        rhs = self._rhs[mask]
        if lhs > rhs:
            return Violation(mask, lhs, rhs)
        return None

    def rhs(self, mask: int) -> int:
        """Return ``A[S]`` for the set encoded by ``mask``."""
        return self._rhs[mask]
