"""Validation equations as first-class objects.

Equation 1 of the paper, for a set ``S`` of redistribution licenses::

    C⟨S⟩ = Σ_{∅ ≠ T ⊆ S} C[T]   ≤   A[S] = Σ_{j ∈ S} A_j

This module materializes single equations (their full LHS term lists) for
inspection, teaching, and the "expansion" baseline that evaluates each
equation by enumerating all ``2^m - 1`` subset terms -- the
computation-intensive form the paper sets out to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import ValidationError
from repro.validation.bitset import (
    indexes_of,
    iter_masks,
    iter_submasks,
    mask_from_indexes,
    popcount,
)

__all__ = ["ValidationEquation", "enumerate_equations", "equation_for_set"]


@dataclass(frozen=True)
class ValidationEquation:
    """One fully expanded validation equation for a set ``S``.

    Attributes
    ----------
    mask:
        Bitmask of ``S``.
    rhs:
        ``A[S]`` -- the aggregate capacity of the set.
    """

    mask: int
    rhs: int

    @property
    def license_set(self) -> FrozenSet[int]:
        """Return ``S`` as 1-based indexes."""
        return frozenset(indexes_of(self.mask))

    @property
    def term_count(self) -> int:
        """Return the number of LHS summation terms: ``2^|S| - 1``."""
        return (1 << popcount(self.mask)) - 1

    def lhs_terms(self) -> Iterator[FrozenSet[int]]:
        """Yield every subset ``T ⊆ S`` appearing on the LHS."""
        for sub in iter_submasks(self.mask):
            yield frozenset(indexes_of(sub))

    def evaluate_lhs(self, counts_by_mask: Mapping[int, int]) -> int:
        """Evaluate ``C⟨S⟩`` by brute-force subset enumeration.

        This is the paper's "up to an exponential number of summation
        terms" cost model: ``2^m - 1`` dictionary lookups per equation.
        """
        return sum(
            counts_by_mask.get(sub, 0) for sub in iter_submasks(self.mask)
        )

    def holds(self, counts_by_mask: Mapping[int, int]) -> bool:
        """Return ``True`` if the equation is satisfied for these counts."""
        return self.evaluate_lhs(counts_by_mask) <= self.rhs

    def render(self) -> str:
        """Render the equation in the paper's notation (Example 2 style)."""
        terms = sorted(
            (tuple(sorted(term)) for term in self.lhs_terms()),
            key=lambda term: (len(term), term),
        )
        lhs = " + ".join(
            "C[{" + ", ".join(f"LD{i}" for i in term) + "}]" for term in terms
        )
        names = ", ".join(f"LD{i}" for i in sorted(self.license_set))
        return f"{lhs} <= A[{{{names}}}] = {self.rhs}"


def equation_for_set(
    license_set: "Sequence[int] | frozenset", aggregates: Sequence[int]
) -> ValidationEquation:
    """Build the equation for one explicit set of 1-based license indexes."""
    mask = mask_from_indexes(license_set)
    if mask == 0:
        raise ValidationError("validation equations require a non-empty set")
    highest = max(license_set)
    if highest > len(aggregates):
        raise ValidationError(
            f"set references license {highest} but only "
            f"{len(aggregates)} aggregates given"
        )
    rhs = sum(aggregates[i - 1] for i in license_set)
    return ValidationEquation(mask, rhs)


def enumerate_equations(aggregates: Sequence[int]) -> Iterator[ValidationEquation]:
    """Yield all ``2^N - 1`` validation equations for a pool's aggregates.

    >>> equations = list(enumerate_equations([10, 20]))
    >>> [(sorted(e.license_set), e.rhs) for e in equations]
    [([1], 10), ([2], 20), ([1, 2], 30)]
    """
    n = len(aggregates)
    if n == 0:
        raise ValidationError("aggregate array must be non-empty")
    # Reuse the subset-sum DP for the RHS values.
    rhs: List[int] = [0] * (1 << n)
    for mask in iter_masks(n):
        low_bit = mask & -mask
        rhs[mask] = rhs[mask ^ low_bit] + aggregates[low_bit.bit_length() - 1]
        yield ValidationEquation(mask, rhs[mask])


def total_term_count(n: int) -> int:
    """Return the total LHS terms across all equations: ``3^n - 2^n``.

    Each non-empty pair ``T ⊆ S`` is counted once; there are ``3^n``
    pairs ``(T, S)`` with ``T ⊆ S`` over an n-element universe, of which
    ``2^n`` have ``T = ∅``.  This quantifies the "exponential number of
    summation terms" complexity of the fully expanded validation.
    """
    return 3**n - 2**n
