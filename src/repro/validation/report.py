"""Validation outcomes: violations and reports.

A *failed* validation is a normal, reportable outcome (a distributor
over-issued against some set of redistribution licenses), not an exception.
Every engine returns a :class:`ValidationReport` so callers can compare
engines, count checked equations, and inspect violated sets uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.validation.bitset import indexes_of

__all__ = ["Violation", "ValidationReport"]


@dataclass(frozen=True)
class Violation:
    """One violated validation equation ``C⟨S⟩ > A[S]``.

    Attributes
    ----------
    mask:
        Bitmask of the violated set ``S`` (in the engine's local index
        space; grouped engines translate back to global indexes before
        reporting).
    lhs:
        The equation's left-hand side ``C⟨S⟩`` (issued counts).
    rhs:
        The right-hand side ``A[S]`` (aggregate capacity).
    """

    mask: int
    lhs: int
    rhs: int

    @property
    def license_set(self) -> FrozenSet[int]:
        """Return the violated set as 1-based license indexes."""
        return frozenset(indexes_of(self.mask))

    @property
    def excess(self) -> int:
        """Return by how many counts the equation is violated."""
        return self.lhs - self.rhs

    def __str__(self) -> str:  # pragma: no cover - trivial
        names = ", ".join(f"LD{i}" for i in sorted(self.license_set))
        return f"C<{{{names}}}> = {self.lhs} > A = {self.rhs}"


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of running a validation engine over a log.

    Attributes
    ----------
    engine:
        Human-readable engine name ("tree", "grouped-tree", "zeta", ...).
    equations_checked:
        How many validation equations the engine actually evaluated --
        the quantity the paper's performance gain (Eq. 3) is about.
    violations:
        Every violated equation, sorted by mask.  Empty iff valid.
    """

    engine: str
    equations_checked: int
    violations: Tuple[Violation, ...] = field(default_factory=tuple)

    @property
    def is_valid(self) -> bool:
        """Return ``True`` if no validation equation was violated."""
        return not self.violations

    @property
    def violated_sets(self) -> List[FrozenSet[int]]:
        """Return the violated license sets (1-based indexes)."""
        return [violation.license_set for violation in self.violations]

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        verdict = "VALID" if self.is_valid else f"INVALID ({len(self.violations)} violations)"
        return (
            f"[{self.engine}] {verdict}; "
            f"{self.equations_checked} equations checked"
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        lines = [self.summary()]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def make_report(
    engine: str, equations_checked: int, violations: List[Violation]
) -> ValidationReport:
    """Build a report with deterministically ordered violations."""
    ordered = tuple(sorted(violations, key=lambda violation: violation.mask))
    return ValidationReport(engine, equations_checked, ordered)
