"""Max-flow feasibility oracle for aggregate validation.

An extension beyond the paper that doubles as a correctness oracle.  The
``2^N - 1`` validation equations are exactly the Gale-Hoffman / deficiency-
Hall conditions for a transportation problem:

* every aggregated log entry ``(S, C[S])`` is a *demand* of ``C[S]`` counts
  that must be routed to redistribution licenses **within** ``S``;
* every license ``j`` has *capacity* ``A_j``.

A feasible routing exists **iff** for every subset ``S`` of licenses, the
total demand that can only go inside ``S`` (i.e. ``C⟨S⟩``, the sum of
``C[T]`` over ``T ⊆ S``) does not exceed ``A[S]`` -- which is Equation 1.
By max-flow/min-cut, feasibility is equivalent to the max flow of the
network below saturating all demands::

    source --C[S]--> (set S) --∞--> (license j ∈ S) --A_j--> sink

So a *polynomial* algorithm answers the yes/no validation question that the
paper's engines answer by checking exponentially many equations.  The
equation-based engines remain the paper's object of study (and report
*which* sets are violated, which the flow verdict does not); the oracle
property-checks all of them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.errors import ValidationError
from repro.logstore.log import ValidationLog
from repro.validation.bitset import indexes_of

__all__ = ["FlowFeasibilityOracle"]

_SOURCE = "source"
_SINK = "sink"


class FlowFeasibilityOracle:
    """Polynomial yes/no aggregate validation via max-flow.

    Examples
    --------
    >>> oracle = FlowFeasibilityOracle([100, 50])
    >>> oracle.feasible({0b01: 80, 0b11: 60})   # 80 into L1, 60 anywhere
    True
    >>> oracle.feasible({0b01: 120})            # 120 > A_1
    False
    """

    engine_name = "flow"

    def __init__(self, aggregates: Sequence[int]):
        if not aggregates:
            raise ValidationError("aggregate array must be non-empty")
        if any(a < 0 for a in aggregates):
            raise ValidationError(f"aggregates must be non-negative: {aggregates!r}")
        self._aggregates = list(aggregates)
        self._n = len(aggregates)

    @property
    def n(self) -> int:
        """Return the number of redistribution licenses ``N``."""
        return self._n

    # ------------------------------------------------------------------
    # Network construction
    # ------------------------------------------------------------------
    def build_network(self, counts_by_mask: Dict[int, int]) -> nx.DiGraph:
        """Build the transportation network for aggregated log counts."""
        universe = (1 << self._n) - 1
        graph = nx.DiGraph()
        graph.add_node(_SOURCE)
        graph.add_node(_SINK)
        for j in range(1, self._n + 1):
            graph.add_edge(("lic", j), _SINK, capacity=self._aggregates[j - 1])
        for mask, count in counts_by_mask.items():
            if mask == 0 or mask & ~universe:
                raise ValidationError(
                    f"log references mask {mask:#b} outside universe N={self._n}"
                )
            if count < 0:
                raise ValidationError(f"negative count for mask {mask:#b}")
            graph.add_edge(_SOURCE, ("set", mask), capacity=count)
            for j in indexes_of(mask):
                # Unbounded inner edges: omit 'capacity' => infinite in networkx.
                graph.add_edge(("set", mask), ("lic", j))
        return graph

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def max_routable(self, counts_by_mask: Dict[int, int]) -> int:
        """Return the maximum demand that can be feasibly assigned."""
        graph = self.build_network(counts_by_mask)
        value, _ = nx.maximum_flow(graph, _SOURCE, _SINK)
        return int(value)

    def feasible(self, counts_by_mask: Dict[int, int]) -> bool:
        """Return ``True`` iff all validation equations hold (all issued
        counts can be routed within their allowed license sets)."""
        demand = sum(counts_by_mask.values())
        if demand == 0:
            return True
        return self.max_routable(counts_by_mask) >= demand

    def feasible_log(self, log: ValidationLog) -> bool:
        """Feasibility check on a raw log."""
        return self.feasible(log.counts_by_mask())

    def assignment(
        self, counts_by_mask: Dict[int, int]
    ) -> Tuple[bool, Dict[Tuple[int, int], int]]:
        """Return ``(feasible, routing)`` where ``routing[(mask, j)]`` is how
        many counts of demand-set ``mask`` a max flow routes to license
        ``j``.  When infeasible the routing is a best-effort partial
        assignment (it maximizes routed demand)."""
        graph = self.build_network(counts_by_mask)
        value, flows = nx.maximum_flow(graph, _SOURCE, _SINK)
        routing: Dict[Tuple[int, int], int] = {}
        for node, edges in flows.items():
            if isinstance(node, tuple) and node[0] == "set":
                mask = node[1]
                for target, amount in edges.items():
                    if amount and isinstance(target, tuple) and target[0] == "lic":
                        routing[(mask, target[1])] = int(amount)
        demand = sum(counts_by_mask.values())
        return int(value) >= demand, routing

    def remaining_capacity(
        self, counts_by_mask: Dict[int, int], target_mask: int
    ) -> int:
        """Return the largest extra count a *new* issuance with set
        ``target_mask`` could carry while keeping validation feasible.

        Implemented as a parametric flow question: route all existing
        demand, then measure residual capacity reachable from the target
        set's licenses.  Returns 0 when the current log is already
        infeasible.
        """
        universe = (1 << self._n) - 1
        if target_mask == 0 or target_mask & ~universe:
            raise ValidationError(f"target mask {target_mask:#b} out of range")
        demand = sum(counts_by_mask.values())
        # Binary search on the answer using feasibility of (log + x@target).
        # Upper bound: total aggregate capacity.
        high = sum(self._aggregates)
        low = 0
        while low < high:
            middle = (low + high + 1) // 2
            probe = dict(counts_by_mask)
            probe[target_mask] = probe.get(target_mask, 0) + middle
            if self.max_routable(probe) >= demand + middle:
                low = middle
            else:
                high = middle - 1
        # If even x=0 is infeasible (log already invalid), report 0.
        if low == 0 and demand and self.max_routable(counts_by_mask) < demand:
            return 0
        return low
