"""Violation diagnosis: minimal violated sets and revocation planning.

When offline validation fails, the distributor (or the rights owner) needs
more than a list of `2^k` violated subsets:

* :func:`minimal_violations` -- the inclusion-minimal violated sets, the
  actionable core of a report (every other violation contains one of
  them).
* :func:`min_revocation_total` -- the smallest total permission count that
  must be revoked to restore validity.  By LP duality on the
  transportation relaxation this equals ``total demand - max routable``
  (the unroutable excess), computed with the max-flow oracle.
* :func:`revocation_plan` -- a concrete per-set revocation achieving that
  minimum: shave each demand set down to what a maximum flow managed to
  route.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.report import ValidationReport, Violation

__all__ = [
    "apply_revocation",
    "min_revocation_total",
    "minimal_violations",
    "revocation_plan",
    "select_revocations",
]


def minimal_violations(report: ValidationReport) -> List[Violation]:
    """Return the inclusion-minimal violated sets of a report.

    A violation for set ``S`` is *minimal* if no other violated set is a
    strict subset of ``S``.  Sorted by mask for determinism.

    >>> from repro.validation.report import make_report
    >>> r = make_report("x", 3, [Violation(0b01, 5, 4), Violation(0b11, 9, 8)])
    >>> [v.mask for v in minimal_violations(r)]
    [1]
    """
    masks = [violation.mask for violation in report.violations]
    minimal = []
    for violation in report.violations:
        if not any(
            other != violation.mask and other & violation.mask == other
            for other in masks
        ):
            minimal.append(violation)
    return sorted(minimal, key=lambda violation: violation.mask)


def min_revocation_total(
    counts_by_mask: Dict[int, int], aggregates: Sequence[int]
) -> int:
    """Return the minimum total counts to revoke to restore validity.

    Equal to ``total demand - max routable demand``: whatever a maximum
    flow cannot place has to go, and shaving exactly the unrouted residue
    restores feasibility (see :func:`revocation_plan`).
    """
    oracle = FlowFeasibilityOracle(aggregates)
    demand = sum(counts_by_mask.values())
    if demand == 0:
        return 0
    return demand - oracle.max_routable(counts_by_mask)


def revocation_plan(
    counts_by_mask: Dict[int, int], aggregates: Sequence[int]
) -> Tuple[int, Dict[int, int]]:
    """Return ``(total revoked, {mask: counts to revoke})``.

    The plan shaves each demand set down to the amount a maximum flow
    routed for it, so applying it yields a feasible log and the total
    matches :func:`min_revocation_total`.
    """
    oracle = FlowFeasibilityOracle(aggregates)
    feasible, routing = oracle.assignment(counts_by_mask)
    routed: Dict[int, int] = {}
    for (mask, _license_index), amount in routing.items():
        routed[mask] = routed.get(mask, 0) + amount
    plan: Dict[int, int] = {}
    total = 0
    for mask, demanded in counts_by_mask.items():
        if demanded < 0:
            raise ValidationError(f"negative count for mask {mask:#b}")
        excess = demanded - routed.get(mask, 0)
        if excess > 0:
            plan[mask] = excess
            total += excess
    if feasible and plan:  # pragma: no cover - defensive consistency check
        raise ValidationError("feasible log produced a non-empty revocation plan")
    return total, plan


def select_revocations(log, plan: Dict[int, int]) -> Tuple[List[str], int]:
    """Pick concrete issuances to revoke that satisfy a count plan.

    The flow-based :func:`revocation_plan` says how many *counts* to shave
    per set; real remediation revokes whole issued licenses.  This helper
    greedily picks, per set, the largest-count issuances first (fewest
    licenses revoked) until the set's target is met -- possibly
    over-shooting by at most one license's count per set, since licenses
    are indivisible.

    Parameters
    ----------
    log:
        A :class:`repro.logstore.log.ValidationLog` whose records carry
        ``issued_id`` values.
    plan:
        ``{mask: counts to revoke}`` from :func:`revocation_plan`.

    Returns
    -------
    (ids, total):
        License ids to revoke and the total counts they carry
        (``>= sum(plan.values())``).

    Raises
    ------
    ValidationError
        If a set's revocable (id-carrying) records cannot cover its
        target.
    """
    ids: List[str] = []
    total = 0
    for mask, target in plan.items():
        candidates = sorted(
            (
                record
                for record in log
                if record.issued_id is not None and record.mask == mask
            ),
            key=lambda record: record.count,
            reverse=True,
        )
        shaved = 0
        for record in candidates:
            if shaved >= target:
                break
            ids.append(record.issued_id)
            shaved += record.count
        if shaved < target:
            raise ValidationError(
                f"set mask {mask:#b} needs {target} counts revoked but only "
                f"{shaved} are carried by identifiable issuances"
            )
        total += shaved
    return ids, total


def apply_revocation(
    counts_by_mask: Dict[int, int], plan: Dict[int, int]
) -> Dict[int, int]:
    """Return a copy of the counts with a revocation plan applied.

    Sets shaved to zero are dropped.
    """
    out = dict(counts_by_mask)
    for mask, revoke in plan.items():
        remaining = out.get(mask, 0) - revoke
        if remaining < 0:
            raise ValidationError(
                f"plan revokes {revoke} from mask {mask:#b} holding {out.get(mask, 0)}"
            )
        if remaining:
            out[mask] = remaining
        else:
            out.pop(mask, None)
    return out
