"""Checkpointing validation trees (and divided tree bundles).

Offline validation authorities accumulate logs between runs; persisting
the *tree* rather than replaying the raw log makes restart cost
proportional to the number of distinct sets instead of the number of
issuances.  The format is plain JSON over the nested-dict rendering the
tree already exposes::

    {"version": 1, "tree": {"index": 0, "count": 0, "children": [...]}}

Grouped bundles persist the structure alongside the per-group trees so a
restart can resume incremental validation without re-deriving groups.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.errors import SerializationError
from repro.core.grouping import GroupStructure
from repro.validation.tree import TreeNode, ValidationTree

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "dumps_tree",
    "loads_tree",
    "dumps_grouped",
    "loads_grouped",
]

_VERSION = 1


def tree_to_dict(tree: ValidationTree) -> Dict:
    """Render a tree into a JSON-safe dict (versioned envelope)."""
    return {"version": _VERSION, "tree": tree.to_nested_dict()}


def _node_from_dict(payload: Dict) -> TreeNode:
    try:
        node = TreeNode(int(payload["index"]), int(payload["count"]))
        children = payload["children"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed tree node: {payload!r}") from exc
    previous = 0
    for child_payload in children:
        child = _node_from_dict(child_payload)
        if child.index <= previous:
            raise SerializationError(
                f"children out of order under index {node.index}: "
                f"{[c['index'] for c in children]}"
            )
        previous = child.index
        node.children.append(child)
    return node


def tree_from_dict(payload: Dict) -> ValidationTree:
    """Rebuild a tree from :func:`tree_to_dict` output."""
    if payload.get("version") != _VERSION:
        raise SerializationError(
            f"unsupported tree checkpoint version: {payload.get('version')!r}"
        )
    root = _node_from_dict(payload["tree"])
    if root.index != 0:
        raise SerializationError("tree root must have index 0")
    if root.count != 0:
        raise SerializationError("tree root must carry no count")
    return ValidationTree(root)


def dumps_tree(tree: ValidationTree) -> str:
    """Serialize a tree to a JSON string."""
    return json.dumps(tree_to_dict(tree))


def loads_tree(text: str) -> ValidationTree:
    """Load a tree from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid tree JSON: {exc}") from exc
    return tree_from_dict(payload)


def dumps_grouped(
    structure: GroupStructure, trees: List[ValidationTree]
) -> str:
    """Serialize a group structure plus its per-group (remapped) trees."""
    if len(trees) != structure.count:
        raise SerializationError(
            f"{len(trees)} trees for {structure.count} groups"
        )
    payload = {
        "version": _VERSION,
        "n": structure.n,
        "groups": [sorted(group) for group in structure.groups],
        "trees": [tree.to_nested_dict() for tree in trees],
    }
    return json.dumps(payload)


def loads_grouped(text: str):
    """Load ``(structure, trees)`` from :func:`dumps_grouped` output."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid checkpoint JSON: {exc}") from exc
    if payload.get("version") != _VERSION:
        raise SerializationError(
            f"unsupported checkpoint version: {payload.get('version')!r}"
        )
    try:
        structure = GroupStructure(
            tuple(frozenset(group) for group in payload["groups"]),
            int(payload["n"]),
        )
        trees = [
            tree_from_dict({"version": _VERSION, "tree": tree_payload})
            for tree_payload in payload["trees"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed checkpoint: {exc}") from exc
    if len(trees) != structure.count:
        raise SerializationError(
            f"{len(trees)} trees for {structure.count} groups"
        )
    return structure, trees
