"""Closed-form cost model of validation (Section 2.1, "Complexity of
Validation", plus the grouped counterparts).

The paper quantifies why naive validation is infeasible:

* with ``N`` redistribution licenses there are ``2^N - 1`` validation
  equations;
* a newly issued license matching ``k`` of them appears in ``2^(N-k)``
  equations (every superset of its match set);
* the fully expanded Equation 1 has ``2^m - 1`` summation terms for an
  ``m``-license set -- ``3^N - 2^N`` terms across all equations.

These helpers expose those quantities (and their grouped counterparts) so
tests, docs and examples can reason about costs without re-deriving them.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ValidationError

__all__ = [
    "equation_count",
    "equations_touched_by_issue",
    "expansion_terms",
    "total_expansion_terms",
    "grouped_equation_count",
    "grouped_equations_touched",
]


def equation_count(n: int) -> int:
    """Return ``2^N - 1``: the number of validation equations.

    >>> equation_count(5)
    31
    """
    if n < 1:
        raise ValidationError(f"need n >= 1, got {n}")
    return (1 << n) - 1


def equations_touched_by_issue(n: int, k: int) -> int:
    """Return ``2^(N-k)``: equations affected by a license matching ``k``
    of the ``N`` redistribution licenses (Section 2.1).

    >>> equations_touched_by_issue(5, 2)
    8
    """
    if not 1 <= k <= n:
        raise ValidationError(f"need 1 <= k <= n, got k={k}, n={n}")
    return 1 << (n - k)


def expansion_terms(m: int) -> int:
    """Return ``2^m - 1``: LHS summation terms of one equation over an
    ``m``-license set (Equation 1's summation limit)."""
    if m < 1:
        raise ValidationError(f"need m >= 1, got {m}")
    return (1 << m) - 1


def total_expansion_terms(n: int) -> int:
    """Return ``3^N - 2^N``: total LHS terms across all equations.

    (Each pair ``∅ ≠ T ⊆ S`` is one term; there are ``3^N`` subset pairs
    of which ``2^N`` have ``T = ∅``.)

    >>> total_expansion_terms(2)
    5
    """
    if n < 1:
        raise ValidationError(f"need n >= 1, got {n}")
    return 3**n - 2**n


def grouped_equation_count(group_sizes: Sequence[int]) -> int:
    """Return ``Σ_k (2^{N_k} - 1)`` (alias of
    :func:`repro.core.gain.equations_with_grouping`, here for cost-model
    completeness)."""
    if not group_sizes or any(size < 1 for size in group_sizes):
        raise ValidationError(f"invalid group sizes: {group_sizes!r}")
    return sum((1 << size) - 1 for size in group_sizes)


def grouped_equations_touched(group_size: int, k: int) -> int:
    """Return ``2^(N_g - k)``: equations affected by an issue matching
    ``k`` licenses, all inside a group of ``N_g`` licenses.

    The grouped analogue of :func:`equations_touched_by_issue`: by
    Theorem 2 only the issue's own group's equations can be affected, so
    the superset enumeration shrinks from ``2^(N-k)`` to ``2^(N_g-k)``.
    """
    if not 1 <= k <= group_size:
        raise ValidationError(
            f"need 1 <= k <= group size, got k={k}, size={group_size}"
        )
    return 1 << (group_size - k)
