"""Shared memory caps for the dense ``2^N``-table engines.

Two engines materialize per-mask int64 arrays over a local universe of
``N`` licenses: the bulk :class:`repro.validation.zeta.ZetaValidator`
(one subset-sum table per validation) and the incremental
:class:`repro.core.kernel.DenseHeadroomKernel` (three resident tables
per group).  Both are exponential in memory -- ``8 * 2^N`` bytes per
table -- so each carries a refusal threshold.  Before this module the
two caps were independent literals that could silently drift apart;
they now share one home, and the serving layer surfaces the kernel cap
through :class:`repro.service.config.ServiceConfig` so a deployment can
tune it without touching engine code.

Constants
---------
``DENSE_TABLE_MAX_N``
    The absolute refusal threshold for *any* dense per-mask table
    (default 26: one table is ``8 * 2^26`` = 512 MiB).  ``ZetaValidator``
    uses it as its default ``max_n``; nothing may raise a cap above it.
``DEFAULT_KERNEL_CAP``
    The default per-group opt-in threshold for the resident
    :class:`~repro.core.kernel.DenseHeadroomKernel` (default 20: about
    8 MiB per table, ~24 MiB per group for the three resident tables).
    Groups larger than the cap fall back to the validation-tree walk.
"""

from __future__ import annotations

__all__ = [
    "DENSE_TABLE_MAX_N",
    "DEFAULT_KERNEL_CAP",
    "dense_table_bytes",
]

#: Absolute refusal threshold for any dense per-mask int64 table
#: (``8 * 2^26`` bytes = 512 MiB per table).
DENSE_TABLE_MAX_N = 26

#: Default per-group universe cap for the resident dense headroom
#: kernel (``8 * 2^20`` bytes = 8 MiB per table; the kernel keeps
#: three).  Must never exceed :data:`DENSE_TABLE_MAX_N`.
DEFAULT_KERNEL_CAP = 20


def dense_table_bytes(n: int, tables: int = 1) -> int:
    """Return the resident size of ``tables`` dense int64 tables over an
    ``n``-license universe (``tables * 8 * 2^n`` bytes).

    >>> dense_table_bytes(20)
    8388608
    >>> dense_table_bytes(20, tables=3)
    25165824
    """
    return tables * (8 << n)
