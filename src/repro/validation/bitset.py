"""Bitmask helpers shared by every validation engine.

The paper's Algorithm 2 walks an integer counter ``i`` from 1 to
``2^N - 1``; the positions of the 1-bits of ``i`` name the redistribution
licenses of the equation's set (bit ``j-1`` <-> license ``L_D^j``).  All of
our engines use the same encoding, and these helpers keep the bit-twiddling
in one place.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "aggregate_sums",
    "indexes_of",
    "iter_masks",
    "iter_submasks",
    "iter_supersets",
    "mask_from_indexes",
    "popcount",
]


def popcount(mask: int) -> int:
    """Return the number of set bits (the paper's ``licNumber``)."""
    return mask.bit_count()


def indexes_of(mask: int) -> Tuple[int, ...]:
    """Return the 1-based license indexes encoded by ``mask``, ascending.

    >>> indexes_of(0b1011)
    (1, 2, 4)
    """
    out: List[int] = []
    index = 1
    while mask:
        if mask & 1:
            out.append(index)
        mask >>= 1
        index += 1
    return tuple(out)


def mask_from_indexes(indexes: "Sequence[int] | frozenset") -> int:
    """Inverse of :func:`indexes_of`.

    >>> mask_from_indexes((1, 2, 4))
    11
    """
    mask = 0
    for index in indexes:
        mask |= 1 << (index - 1)
    return mask


def iter_masks(n: int) -> Iterator[int]:
    """Yield every non-empty subset mask of ``{1..n}``: the paper's
    equation counter ``i = 1 .. 2^n - 1``."""
    yield from range(1, 1 << n)


def iter_submasks(mask: int) -> Iterator[int]:
    """Yield every non-empty submask of ``mask`` (the sets summed on the
    LHS of Equation 1).

    Uses the standard ``sub = (sub - 1) & mask`` enumeration, which visits
    each of the ``2^m - 1`` non-empty submasks exactly once.

    >>> sorted(iter_submasks(0b101))
    [1, 4, 5]
    """
    sub = mask
    while sub:
        yield sub
        sub = (sub - 1) & mask


def iter_supersets(mask: int, universe: int) -> Iterator[int]:
    """Yield every superset of ``mask`` contained in ``universe``.

    Used by headroom queries: issuing more counts against set ``S`` only
    tightens equations for supersets of ``S``.

    >>> sorted(iter_supersets(0b001, 0b011))
    [1, 3]
    """
    free = universe & ~mask
    sub = 0
    while True:
        yield mask | sub
        if sub == free:
            return
        # Enumerate submasks of `free` in increasing order.
        sub = (sub - free) & free


def aggregate_sums(aggregates: Sequence[int]) -> List[int]:
    """Return ``A[mask]`` for every mask: the RHS of every validation
    equation, computed by the standard subset-sum DP in O(2^N).

    ``aggregates[j-1]`` is license ``j``'s aggregate constraint (the
    paper's array ``A``); the result's entry at ``mask`` is
    ``sum(aggregates[j-1] for j in indexes_of(mask))``.

    >>> aggregate_sums([5, 7])
    [0, 5, 7, 12]
    """
    n = len(aggregates)
    sums = [0] * (1 << n)
    for mask in range(1, 1 << n):
        low_bit = mask & -mask
        sums[mask] = sums[mask ^ low_bit] + aggregates[low_bit.bit_length() - 1]
    return sums
