"""Fast all-equations validation via the subset-sum (zeta) transform.

An extension beyond the paper: all ``2^N - 1`` LHS values ``C⟨S⟩`` can be
computed *simultaneously* with the standard subset-sum dynamic program
("zeta transform" / SOS DP) in ``O(N · 2^N)`` word operations::

    f[mask] = C[set(mask)]                      # sparse init from the log
    for each bit j:                             # N vectorized passes
        f[mask with bit j] += f[mask without bit j]

After the transform ``f[mask] == C⟨mask⟩``.  With numpy the N passes are
array slices, so the engine validates N≈20 in milliseconds where the
per-equation tree traversal takes seconds.  It serves as a strong modern
baseline in the engine ablation and as a bulk correctness oracle.

Memory is the limit: the DP table has ``2^N`` int64 entries (8·2^N bytes),
so the engine refuses N beyond a configurable cap (default
:data:`repro.validation.limits.DENSE_TABLE_MAX_N` = 26 ≈ 512 MiB -- the
shared ceiling for every dense per-mask table, including the serving
kernel's; see :mod:`repro.validation.limits`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.logstore.log import ValidationLog
from repro.validation.limits import DENSE_TABLE_MAX_N
from repro.validation.report import ValidationReport, Violation, make_report

__all__ = ["ZetaValidator", "subset_sums_dense"]

#: Default refusal threshold for the dense DP table.  An alias of the
#: shared :data:`repro.validation.limits.DENSE_TABLE_MAX_N` so this cap
#: and the incremental kernel's cannot drift apart.
DEFAULT_MAX_N = DENSE_TABLE_MAX_N


def subset_sums_dense(values: Dict[int, int], n: int) -> np.ndarray:
    """Return the dense array ``g`` with ``g[mask] = Σ_{sub ⊆ mask} values[sub]``.

    Parameters
    ----------
    values:
        Sparse ``{mask: value}`` initialization.
    n:
        Universe size; masks must fit in ``n`` bits.
    """
    size = 1 << n
    table = np.zeros(size, dtype=np.int64)
    for mask, value in values.items():
        if mask >= size or mask < 0:
            raise ValidationError(f"mask {mask} outside universe N={n}")
        table[mask] += value
    # SOS DP, one vectorized pass per bit: view the table as
    # (high, 2, low)-shaped and add the bit=0 plane into the bit=1 plane.
    for bit in range(n):
        shaped = table.reshape(1 << (n - bit - 1), 2, 1 << bit)
        shaped[:, 1, :] += shaped[:, 0, :]
    return table


class ZetaValidator:
    """All-equations validator using the dense subset-sum transform."""

    engine_name = "zeta"

    def __init__(self, aggregates: Sequence[int], max_n: int = DEFAULT_MAX_N):
        if not aggregates:
            raise ValidationError("aggregate array must be non-empty")
        if any(a < 0 for a in aggregates):
            raise ValidationError(f"aggregates must be non-negative: {aggregates!r}")
        if len(aggregates) > max_n:
            raise ValidationError(
                f"N={len(aggregates)} exceeds the dense-table cap max_n={max_n} "
                f"(8·2^N bytes of memory needed)"
            )
        self._aggregates = list(aggregates)
        self._n = len(aggregates)
        # RHS for every mask via the same dense DP over singleton masks.
        singleton = {1 << j: aggregates[j] for j in range(self._n)}
        self._rhs = subset_sums_dense(singleton, self._n)

    @property
    def n(self) -> int:
        """Return the number of redistribution licenses ``N``."""
        return self._n

    def lhs_table(self, counts_by_mask: Dict[int, int]) -> np.ndarray:
        """Return ``C⟨mask⟩`` for every mask as a dense array."""
        return subset_sums_dense(counts_by_mask, self._n)

    def validate_counts(self, counts_by_mask: Dict[int, int]) -> ValidationReport:
        """Validate aggregated counts (``{mask: C[S]}``)."""
        lhs = self.lhs_table(counts_by_mask)
        bad = np.nonzero(lhs > self._rhs)[0]
        violations: List[Violation] = [
            Violation(int(mask), int(lhs[mask]), int(self._rhs[mask]))
            for mask in bad
            if mask  # mask 0 is the empty set; C<∅> = 0 ≤ 0 always, skip defensively
        ]
        checked = (1 << self._n) - 1
        return make_report(self.engine_name, checked, violations)

    def validate_log(self, log: ValidationLog) -> ValidationReport:
        """Validate a raw log."""
        return self.validate_counts(log.counts_by_mask())
