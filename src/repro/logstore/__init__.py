"""Issuance log storage (the paper's Table 2 as a data structure)."""

from repro.logstore.compaction import compact, compaction_ratio
from repro.logstore.io import dump_log, load_log, read_records, write_records
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord, mask_of, set_of

__all__ = [
    "LogRecord",
    "ValidationLog",
    "compact",
    "compaction_ratio",
    "dump_log",
    "load_log",
    "mask_of",
    "read_records",
    "set_of",
    "write_records",
]
