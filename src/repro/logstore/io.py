"""Persistence for validation logs (JSON Lines).

One record per line keeps the format append-friendly, mirroring how a
validation authority would accumulate issuance logs between offline
validation runs::

    {"set": [1, 2], "count": 800, "issued_id": "LU1"}
    {"set": [2], "count": 400, "issued_id": "LU2"}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.errors import LogError, SerializationError
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord

__all__ = ["dump_log", "load_log", "write_records", "read_records"]

PathLike = Union[str, Path]


def _record_to_line(record: LogRecord) -> str:
    payload = {"set": sorted(record.license_set), "count": record.count}
    if record.issued_id is not None:
        payload["issued_id"] = record.issued_id
    return json.dumps(payload)


def _line_to_record(line: str, line_number: int) -> LogRecord:
    try:
        payload = json.loads(line)
        return LogRecord(
            license_set=frozenset(int(i) for i in payload["set"]),
            count=int(payload["count"]),
            issued_id=payload.get("issued_id"),
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError, LogError) as exc:
        raise SerializationError(
            f"malformed log line {line_number}: {line!r}"
        ) from exc


def write_records(records: Iterable[LogRecord], stream: IO[str]) -> int:
    """Write records to an open text stream; return the number written."""
    written = 0
    for record in records:
        stream.write(_record_to_line(record))
        stream.write("\n")
        written += 1
    return written


def read_records(stream: IO[str]) -> Iterator[LogRecord]:
    """Yield records from an open text stream, skipping blank lines."""
    for line_number, line in enumerate(stream, start=1):
        stripped = line.strip()
        if stripped:
            yield _line_to_record(stripped, line_number)


def dump_log(log: ValidationLog, path: PathLike) -> int:
    """Write a whole log to ``path``; return the record count."""
    with open(path, "w", encoding="utf-8") as stream:
        return write_records(log, stream)


def load_log(path: PathLike) -> ValidationLog:
    """Load a log previously written by :func:`dump_log`."""
    log = ValidationLog()
    with open(path, "r", encoding="utf-8") as stream:
        log.extend(read_records(stream))
    return log
