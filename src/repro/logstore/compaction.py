"""Log compaction.

Aggregate validation only depends on the *aggregated* set counts ``C[S]``,
not on individual issuance records (Equation 1 sums them anyway).  A
validation authority that has archived the raw records elsewhere can
therefore compact a log of tens of thousands of issuances into one record
per distinct set -- typically a 100-1000x reduction at the paper's
workload scale -- without changing any validation verdict.

:func:`compact` is pure (returns a new log); per-issuance traceability
(``issued_id``) is the price, so compaction is for archival/restart paths,
not for live dispute resolution.
"""

from __future__ import annotations

from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord

__all__ = ["compact", "compaction_ratio"]


def compact(log: ValidationLog) -> ValidationLog:
    """Return a log with one record per distinct license set.

    Records are emitted in ascending (mask) order for determinism.  The
    compacted log has identical ``counts_by_set()`` / ``counts_by_mask()``
    and therefore identical validation behaviour under every engine.

    >>> log = ValidationLog()
    >>> log.record({1, 2}, 800)
    >>> log.record({1, 2}, 40)
    >>> compacted = compact(log)
    >>> len(compacted), compacted.set_count({1, 2})
    (1, 840)
    """
    compacted = ValidationLog()
    entries = sorted(
        log.counts_by_set().items(),
        key=lambda item: sorted(item[0]),
    )
    for license_set, count in entries:
        compacted.append(LogRecord(license_set, count))
    return compacted


def compaction_ratio(log: ValidationLog) -> float:
    """Return ``len(log) / distinct sets`` (1.0 for an empty log)."""
    if log.distinct_sets == 0:
        return 1.0
    return len(log) / log.distinct_sets
