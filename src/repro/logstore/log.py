"""The validation log: an append-only sequence of issued-license records.

This is the paper's Table 2 as a data structure.  Besides raw records the
log maintains the aggregated *set counts* ``C[S]`` (sum of permission counts
of all records whose set equals ``S``), which is what every validation
engine consumes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.errors import LogError
from repro.licenses.license import UsageLicense
from repro.logstore.record import LogRecord

__all__ = ["ValidationLog"]


class ValidationLog:
    """Append-only log of :class:`LogRecord` with incremental aggregation.

    Examples
    --------
    >>> log = ValidationLog()
    >>> log.record({1, 2}, 800)
    >>> log.record({1, 2}, 40)
    >>> log.set_count({1, 2})
    840
    >>> log.total_count
    840
    """

    def __init__(self, records: Iterable[LogRecord] = ()):
        self._records: List[LogRecord] = []
        self._counts: Dict[FrozenSet[int], int] = {}
        self._total = 0
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, record: LogRecord) -> None:
        """Append one record, updating the aggregated counts."""
        if not isinstance(record, LogRecord):
            raise LogError(f"expected LogRecord, got {type(record).__name__}")
        self._records.append(record)
        self._counts[record.license_set] = (
            self._counts.get(record.license_set, 0) + record.count
        )
        self._total += record.count

    def record(
        self,
        license_set: Iterable[int],
        count: int,
        issued_id: Optional[str] = None,
    ) -> None:
        """Convenience: build and append a :class:`LogRecord`."""
        self.append(LogRecord(frozenset(license_set), count, issued_id))

    def record_issuance(self, issued: UsageLicense, license_set: Iterable[int]) -> None:
        """Append a record for an issued usage license and its match set."""
        self.record(license_set, issued.count, issued.license_id)

    def extend(self, records: Iterable[LogRecord]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Aggregated views
    # ------------------------------------------------------------------
    def set_count(self, license_set: Iterable[int]) -> int:
        """Return ``C[S]``: total counts of records whose set equals ``S``.

        (Not the validation-equation LHS ``C⟨S⟩`` -- that sums over all
        subsets and lives in :mod:`repro.validation`.)
        """
        return self._counts.get(frozenset(license_set), 0)

    def counts_by_set(self) -> Dict[FrozenSet[int], int]:
        """Return a copy of the aggregated ``{S: C[S]}`` mapping."""
        return dict(self._counts)

    def counts_by_mask(self) -> Dict[int, int]:
        """Return the aggregation keyed by bitmask (validation engines'
        preferred representation)."""
        masks: Dict[int, int] = {}
        for license_set, count in self._counts.items():
            mask = 0
            for index in license_set:
                mask |= 1 << (index - 1)
            masks[mask] = count
        return masks

    @property
    def total_count(self) -> int:
        """Return the total permission counts across all records."""
        return self._total

    @property
    def distinct_sets(self) -> int:
        """Return the number of distinct license sets seen."""
        return len(self._counts)

    def max_index(self) -> int:
        """Return the highest license index referenced, or 0 if empty."""
        if not self._counts:
            return 0
        return max(max(license_set) for license_set in self._counts)

    # ------------------------------------------------------------------
    # Derived logs
    # ------------------------------------------------------------------
    def without(self, issued_ids: Iterable[str]) -> "ValidationLog":
        """Return a new log with the given issuances removed (revoked).

        Records without an ``issued_id`` can never be targeted.  Unknown
        ids are ignored (revoking twice is a no-op), keeping the operation
        idempotent for remediation replays.
        """
        revoked = set(issued_ids)
        return ValidationLog(
            record
            for record in self._records
            if record.issued_id is None or record.issued_id not in revoked
        )

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __getitem__(self, position: int) -> LogRecord:
        return self._records[position]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ValidationLog(records={len(self._records)}, "
            f"distinct_sets={len(self._counts)}, total={self._total})"
        )
