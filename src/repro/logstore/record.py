"""Log records: one line of the paper's Table 2.

Aggregate validation is performed *offline* (Section 2.1): every time the
distributor issues a license, the validation authority appends a record
``(S, count)`` to a log, where ``S`` is the set of redistribution-license
indexes the issued license instance-matched and ``count`` its permission
count.  The validation tree is built from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.errors import LogError

__all__ = ["LogRecord", "mask_of", "set_of"]


def mask_of(license_set: Iterable[int]) -> int:
    """Encode a set of 1-based license indexes as a bitmask.

    Bit ``i-1`` of the mask corresponds to license ``L_D^i`` -- the same
    encoding Algorithm 2 of the paper uses for its equation counter ``i``.

    >>> mask_of({1, 2, 4})
    11
    """
    mask = 0
    for index in license_set:
        if index < 1:
            raise LogError(f"license indexes are 1-based, got {index}")
        mask |= 1 << (index - 1)
    return mask


def set_of(mask: int) -> FrozenSet[int]:
    """Decode a bitmask back into a frozenset of 1-based license indexes.

    >>> sorted(set_of(11))
    [1, 2, 4]
    """
    if mask < 0:
        raise LogError(f"mask must be non-negative, got {mask}")
    indexes = set()
    index = 1
    while mask:
        if mask & 1:
            indexes.add(index)
        mask >>= 1
        index += 1
    return frozenset(indexes)


@dataclass(frozen=True)
class LogRecord:
    """One issued-license entry: ``(set S, permission count)``.

    Attributes
    ----------
    license_set:
        1-based indexes of the redistribution licenses that the issued
        license instance-matched (the paper's set ``S``).  Must be
        non-empty -- an empty match set means the license was invalid and
        never reaches the log.
    count:
        The permission count carried by the issued license.
    issued_id:
        Optional identifier of the issued license, for traceability.
    """

    license_set: FrozenSet[int]
    count: int
    issued_id: Optional[str] = None

    def __post_init__(self) -> None:
        license_set = frozenset(self.license_set)
        object.__setattr__(self, "license_set", license_set)
        if not license_set:
            raise LogError("log record needs a non-empty license set")
        if any(not isinstance(i, int) or isinstance(i, bool) or i < 1
               for i in license_set):
            raise LogError(
                f"license set must contain 1-based int indexes: {sorted(license_set)!r}"
            )
        if not isinstance(self.count, int) or isinstance(self.count, bool):
            raise LogError(f"count must be an int, got {self.count!r}")
        if self.count <= 0:
            raise LogError(f"count must be positive, got {self.count}")

    @property
    def mask(self) -> int:
        """Return the bitmask encoding of :attr:`license_set`."""
        return mask_of(self.license_set)

    @property
    def sorted_indexes(self) -> Tuple[int, ...]:
        """Return the license indexes in ascending order.

        The validation-tree insertion algorithm (Algorithm 1) requires
        record indexes in increasing order, matching the tree's child
        ordering.
        """
        return tuple(sorted(self.license_set))

    def __str__(self) -> str:  # pragma: no cover - trivial
        names = ", ".join(f"LD{i}" for i in self.sorted_indexes)
        return f"{{{names}}}: {self.count}"
