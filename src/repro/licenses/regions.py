"""Hierarchical region taxonomy for categorical region constraints.

Example 1 of the paper issues a usage license for ``R = [India]`` against a
redistribution license allowing ``R = [Asia, Europe]`` -- "India" must
therefore be recognized as contained in "Asia".  We model regions as a tree
(taxonomy); every region name expands to the *frozenset of leaf regions*
beneath it, and constraint geometry then reduces to exact set operations on
leaves (see :class:`repro.geometry.discrete.DiscreteSet`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple, Union

from repro.errors import RegionError
from repro.geometry.discrete import DiscreteSet

__all__ = ["RegionTaxonomy", "WORLD"]

#: A taxonomy node: either a list of leaf names or a nested mapping.
TaxonomySpec = Mapping[str, Union[Sequence[str], "TaxonomySpec"]]


class RegionTaxonomy:
    """A tree of region names with leaf-set expansion.

    Parameters
    ----------
    spec:
        Nested mapping from region name to either a sequence of leaf names
        or another mapping of sub-regions.  Names are case-insensitive and
        must be globally unique within the taxonomy.

    Examples
    --------
    >>> tax = RegionTaxonomy({"asia": ["india", "japan"], "europe": ["france"]})
    >>> sorted(tax.leaves("asia"))
    ['india', 'japan']
    >>> tax.is_within("india", "asia")
    True
    """

    def __init__(self, spec: TaxonomySpec):
        self._leaf_sets: Dict[str, FrozenSet[str]] = {}
        self._parents: Dict[str, str] = {}
        self._roots: Tuple[str, ...] = tuple(self._normalize(name) for name in spec)
        for name, children in spec.items():
            self._build(self._normalize(name), children)

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise RegionError(f"invalid region name: {name!r}")
        return name.strip().lower()

    def _build(self, name: str, children: Union[Sequence[str], TaxonomySpec]) -> FrozenSet[str]:
        if name in self._leaf_sets:
            raise RegionError(f"duplicate region name in taxonomy: {name!r}")
        # Reserve the slot to detect cycles/duplicates during recursion.
        self._leaf_sets[name] = frozenset()
        if isinstance(children, Mapping):
            leaves: set = set()
            for child_name, grand_children in children.items():
                child = self._normalize(child_name)
                leaves |= self._build(child, grand_children)
                self._parents[child] = name
        else:
            leaves = set()
            for leaf_name in children:
                leaf = self._normalize(leaf_name)
                if leaf in self._leaf_sets:
                    raise RegionError(f"duplicate region name in taxonomy: {leaf!r}")
                self._leaf_sets[leaf] = frozenset({leaf})
                self._parents[leaf] = name
                leaves.add(leaf)
            if not leaves:
                # A region declared with no children is itself a leaf.
                leaves = {name}
        self._leaf_sets[name] = frozenset(leaves)
        return self._leaf_sets[name]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def roots(self) -> Tuple[str, ...]:
        """Return the top-level region names in declaration order."""
        return self._roots

    @property
    def names(self) -> FrozenSet[str]:
        """Return every region name in the taxonomy (internal and leaf)."""
        return frozenset(self._leaf_sets)

    @property
    def all_leaves(self) -> FrozenSet[str]:
        """Return the set of all leaf region names."""
        return frozenset(
            name for name, leaves in self._leaf_sets.items() if leaves == {name}
        )

    def leaves(self, name: str) -> FrozenSet[str]:
        """Return the leaf regions beneath ``name`` (itself, if a leaf)."""
        key = self._normalize(name)
        try:
            return self._leaf_sets[key]
        except KeyError:
            raise RegionError(f"unknown region: {name!r}") from None

    def parent(self, name: str) -> Union[str, None]:
        """Return the parent region name, or ``None`` for roots."""
        key = self._normalize(name)
        if key not in self._leaf_sets:
            raise RegionError(f"unknown region: {name!r}")
        return self._parents.get(key)

    def expand(self, names: Union[str, Iterable[str]]) -> DiscreteSet:
        """Expand region name(s) into a leaf-level :class:`DiscreteSet`.

        This is the bridge between user-facing license constraints
        (``R = [Asia, Europe]``) and the exact set geometry the validator
        works with.
        """
        if isinstance(names, str):
            names = [names]
        leaves: set = set()
        for name in names:
            leaves |= self.leaves(name)
        if not leaves:
            raise RegionError("region constraint expanded to the empty set")
        return DiscreteSet(leaves)

    def is_within(self, inner: str, outer: str) -> bool:
        """Return ``True`` if region ``inner`` lies entirely inside ``outer``."""
        return self.leaves(inner) <= self.leaves(outer)

    def overlap(self, left: str, right: str) -> bool:
        """Return ``True`` if two regions share at least one leaf."""
        return bool(self.leaves(left) & self.leaves(right))

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        try:
            return self._normalize(name) in self._leaf_sets
        except RegionError:
            return False

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_spec(self) -> Dict[str, object]:
        """Reconstruct the nested-mapping spec this taxonomy was built
        from (leaf lists sorted for determinism)."""
        children: Dict[str, list] = {}
        for child, parent in self._parents.items():
            children.setdefault(parent, []).append(child)

        def build(name: str):
            kids = sorted(children.get(name, []))
            if not kids:
                return []
            if all(not children.get(kid) for kid in kids):
                return kids
            return {kid: build(kid) for kid in kids}

        return {root: build(root) for root in self._roots}

    def to_json(self, **json_kwargs: object) -> str:
        """Serialize the taxonomy spec to JSON."""
        import json

        return json.dumps(self.to_spec(), **json_kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json(cls, text: str) -> "RegionTaxonomy":
        """Build a taxonomy from :meth:`to_json` output."""
        import json

        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RegionError(f"invalid taxonomy JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise RegionError("taxonomy JSON must be an object")
        return cls(spec)


#: A compact default world taxonomy, sufficient for the paper's examples
#: (Asia/Europe/America with the countries Example 1 mentions) plus enough
#: breadth for synthetic workloads.
WORLD = RegionTaxonomy(
    {
        "world": {
            "asia": ["india", "japan", "china", "singapore", "korea", "thailand"],
            "europe": ["france", "germany", "uk", "spain", "italy", "poland"],
            "america": ["usa", "canada", "mexico", "brazil", "argentina", "chile"],
            "africa": ["egypt", "nigeria", "kenya", "south-africa"],
            "oceania": ["australia", "new-zealand", "fiji"],
        }
    }
)
