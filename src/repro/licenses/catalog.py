"""Multi-content license catalogs.

A real distributor holds redistribution licenses for *many* contents and
permissions.  Validation is always scoped to one ``(content, permission)``
pair -- Section 2's whole apparatus assumes a single scope -- so a
:class:`LicenseCatalog` simply routes licenses, issuances and validation
requests to the right per-scope pool/log, building grouped validators
lazily and invalidating them when a scope's pool grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import LicenseError, ValidationError
from repro.core.validator import GroupedValidator
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.validation.report import ValidationReport

__all__ = ["LicenseCatalog", "Scope"]

#: One validation scope: a content id plus a permission.
Scope = Tuple[str, Permission]


@dataclass
class _ScopeState:
    """Everything the catalog tracks for one (content, permission)."""

    pool: LicensePool = field(default_factory=LicensePool)
    log: ValidationLog = field(default_factory=ValidationLog)
    matcher: Optional[IndexedMatcher] = None
    validator: Optional[GroupedValidator] = None


class LicenseCatalog:
    """Routes multi-content license traffic to per-scope validation state.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> catalog = LicenseCatalog()
    >>> for lic in example1().pool:
    ...     _ = catalog.add_license(lic)
    >>> catalog.scopes()
    [('K', <Permission.PLAY: 'play'>)]
    """

    def __init__(self) -> None:
        self._scopes: Dict[Scope, _ScopeState] = {}

    # ------------------------------------------------------------------
    # Scope management
    # ------------------------------------------------------------------
    @staticmethod
    def _scope_of(lic) -> Scope:
        return (lic.content_id, lic.permission)

    def scopes(self) -> list:
        """Return every known scope, sorted for determinism."""
        return sorted(self._scopes, key=lambda scope: (scope[0], scope[1].value))

    def _state(self, scope: Scope) -> _ScopeState:
        try:
            return self._scopes[scope]
        except KeyError:
            raise LicenseError(f"no licenses for scope {scope!r}") from None

    def pool(self, content_id: str, permission: "Permission | str") -> LicensePool:
        """Return the pool for a scope."""
        return self._state((content_id, Permission(permission))).pool

    def log(self, content_id: str, permission: "Permission | str") -> ValidationLog:
        """Return the issuance log for a scope."""
        return self._state((content_id, Permission(permission))).log

    def __len__(self) -> int:
        return len(self._scopes)

    def __iter__(self) -> Iterator[Scope]:
        return iter(self.scopes())

    # ------------------------------------------------------------------
    # License intake
    # ------------------------------------------------------------------
    def add_license(self, lic: RedistributionLicense) -> int:
        """File a received redistribution license; return its pool index."""
        if not isinstance(lic, RedistributionLicense):
            raise LicenseError(
                f"catalog stores redistribution licenses, got {type(lic).__name__}"
            )
        state = self._scopes.setdefault(self._scope_of(lic), _ScopeState())
        index = state.pool.add(lic)
        state.matcher = None
        state.validator = None
        return index

    # ------------------------------------------------------------------
    # Issuance
    # ------------------------------------------------------------------
    def match(self, usage: UsageLicense) -> frozenset:
        """Instance-match a usage license within its scope.

        Unknown scopes simply match nothing (the distributor holds no
        rights for that content/permission at all).
        """
        state = self._scopes.get(self._scope_of(usage))
        if state is None:
            return frozenset()
        if state.matcher is None:
            state.matcher = IndexedMatcher(state.pool)
        return state.matcher.match(usage)

    def record_issuance(self, usage: UsageLicense) -> frozenset:
        """Match + append to the scope's log; returns the matched set.

        Raises
        ------
        ValidationError
            If the usage license matches nothing (it must not be logged).
        """
        matched = self.match(usage)
        if not matched:
            raise ValidationError(
                f"usage {usage.license_id!r} matches no license in scope "
                f"{self._scope_of(usage)!r}"
            )
        self._state(self._scope_of(usage)).log.record_issuance(usage, matched)
        return matched

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validator(
        self, content_id: str, permission: "Permission | str"
    ) -> GroupedValidator:
        """Return (building lazily) the grouped validator for a scope."""
        state = self._state((content_id, Permission(permission)))
        if state.validator is None:
            state.validator = GroupedValidator.from_pool(state.pool)
        return state.validator

    def validate_scope(
        self, content_id: str, permission: "Permission | str"
    ) -> ValidationReport:
        """Offline-validate one scope's log."""
        permission = Permission(permission)
        return self.validator(content_id, permission).validate(
            self._state((content_id, permission)).log
        )

    def validate_all(self) -> Dict[Scope, ValidationReport]:
        """Offline-validate every scope; returns reports keyed by scope."""
        return {
            scope: self.validate_scope(scope[0], scope[1])
            for scope in self.scopes()
        }
