"""DRM permissions.

The license format of the paper is ``(K; P; I_1..I_M; A)`` where ``P`` is a
permission such as *play*, *copy* or *rip*.  Validation is always performed
within one ``(content, permission)`` scope: a redistribution license for
*play* counts says nothing about *copy* counts.
"""

from __future__ import annotations

import enum

__all__ = ["Permission"]


class Permission(str, enum.Enum):
    """The permission verbs used throughout the DRM literature the paper
    cites (MPEG-21 REL / ODRL-style action vocabulary).

    The enum derives from :class:`str` so members serialize naturally and
    compare equal to their lowercase names, which keeps JSON round-trips and
    user-facing APIs simple (``Permission("play") is Permission.PLAY``).
    """

    PLAY = "play"
    COPY = "copy"
    RIP = "rip"
    PRINT = "print"
    EXPORT = "export"
    STREAM = "stream"
    DOWNLOAD = "download"
    EMBED = "embed"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
