"""Date helpers matching the paper's ``dd/mm/yy`` license notation.

Example 1 of the paper writes validity periods like ``T = [10/03/09,
20/03/09]``.  Internally we model a validity period as an
:class:`~repro.geometry.interval.Interval` over *day ordinals*
(:meth:`datetime.date.toordinal`), which keeps the geometry numeric and
totally ordered while letting user-facing code speak in calendar dates.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Union

from repro.errors import LicenseError
from repro.geometry.interval import Interval

__all__ = [
    "DateLike",
    "date_interval",
    "format_date",
    "interval_to_dates",
    "parse_date",
    "to_ordinal",
]

#: Anything accepted where a calendar date is expected.
DateLike = Union[str, _dt.date, int]

_DDMMYY = re.compile(r"^(\d{1,2})/(\d{1,2})/(\d{2}|\d{4})$")
_ISO = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")


def parse_date(text: str) -> _dt.date:
    """Parse a date in the paper's ``dd/mm/yy`` notation (or ISO-8601).

    Two-digit years are interpreted in 2000-2099, matching the paper's
    ``10/03/09`` == 10 March 2009.

    >>> parse_date("10/03/09")
    datetime.date(2009, 3, 10)
    >>> parse_date("2009-03-10")
    datetime.date(2009, 3, 10)
    """
    match = _DDMMYY.match(text)
    if match:
        day, month, year = (int(part) for part in match.groups())
        if year < 100:
            year += 2000
        try:
            return _dt.date(year, month, day)
        except ValueError as exc:
            raise LicenseError(f"invalid calendar date: {text!r}") from exc
    match = _ISO.match(text)
    if match:
        year, month, day = (int(part) for part in match.groups())
        try:
            return _dt.date(year, month, day)
        except ValueError as exc:
            raise LicenseError(f"invalid calendar date: {text!r}") from exc
    raise LicenseError(f"unrecognized date format: {text!r} (want dd/mm/yy or ISO)")


def to_ordinal(value: DateLike) -> int:
    """Coerce a date-like value to its proleptic-Gregorian day ordinal.

    Plain ints pass through, so geometry code can stay agnostic about
    whether an axis is a date axis.
    """
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise LicenseError(f"not a date-like value: {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, _dt.date):
        return value.toordinal()
    if isinstance(value, str):
        return parse_date(value).toordinal()
    raise LicenseError(f"not a date-like value: {value!r}")


def date_interval(start: DateLike, end: DateLike) -> Interval:
    """Build a closed day-ordinal :class:`Interval` from two date-likes.

    >>> date_interval("10/03/09", "20/03/09").length
    10
    """
    return Interval(to_ordinal(start), to_ordinal(end))


def format_date(ordinal: int) -> str:
    """Render a day ordinal back into the paper's ``dd/mm/yy`` form."""
    day = _dt.date.fromordinal(ordinal)
    return f"{day.day:02d}/{day.month:02d}/{day.year % 100:02d}"


def interval_to_dates(interval: Interval) -> tuple[_dt.date, _dt.date]:
    """Convert a day-ordinal interval back into ``(start, end)`` dates."""
    return (
        _dt.date.fromordinal(int(interval.low)),
        _dt.date.fromordinal(int(interval.high)),
    )
