"""Constraint schemas: named, typed dimensions for license boxes.

Every content/permission scope fixes an ordered list of instance-based
constraint dimensions (the paper's ``I_1 .. I_M``).  A
:class:`ConstraintSchema` declares those dimensions once -- their names,
whether they are ordered ranges or categorical sets, and how raw user values
(date strings, region names) are coerced -- and then manufactures
:class:`~repro.geometry.box.Box` instances from keyword constraints.

This keeps license construction readable::

    schema = ConstraintSchema([
        DimensionSpec.date("validity"),
        DimensionSpec.region("region", taxonomy=WORLD),
    ])
    box = schema.box(validity=("10/03/09", "20/03/09"), region=["asia", "europe"])
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.geometry.box import Box, Extent
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.dates import format_date, to_ordinal
from repro.licenses.regions import RegionTaxonomy

__all__ = ["DimensionKind", "DimensionSpec", "ConstraintSchema"]


class DimensionKind(enum.Enum):
    """How a constraint dimension behaves geometrically."""

    #: Ordered range (numbers, day ordinals): extent is an Interval.
    INTERVAL = "interval"
    #: Categorical set (regions, device classes): extent is a DiscreteSet.
    DISCRETE = "discrete"


@dataclass(frozen=True)
class DimensionSpec:
    """Declaration of one constraint dimension.

    Attributes
    ----------
    name:
        Keyword used when building boxes and in serialized licenses.
    kind:
        Geometric behaviour of the axis.
    is_date:
        For interval axes: coerce endpoint values through
        :func:`repro.licenses.dates.to_ordinal` (accepting ``dd/mm/yy``
        strings, :class:`datetime.date`, or raw ordinals).
    taxonomy:
        For discrete axes: optional region taxonomy used to expand names
        such as ``"asia"`` into leaf sets.
    """

    name: str
    kind: DimensionKind
    is_date: bool = False
    taxonomy: Optional[RegionTaxonomy] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"dimension name must be an identifier: {self.name!r}")
        if self.is_date and self.kind is not DimensionKind.INTERVAL:
            raise SchemaError(f"dimension {self.name!r}: only interval axes can be dates")
        if self.taxonomy is not None and self.kind is not DimensionKind.DISCRETE:
            raise SchemaError(
                f"dimension {self.name!r}: only discrete axes can have a taxonomy"
            )

    # -- convenient constructors ---------------------------------------
    @classmethod
    def numeric(cls, name: str) -> "DimensionSpec":
        """An ordered numeric range dimension."""
        return cls(name, DimensionKind.INTERVAL)

    @classmethod
    def date(cls, name: str) -> "DimensionSpec":
        """An ordered calendar-date dimension (stored as day ordinals)."""
        return cls(name, DimensionKind.INTERVAL, is_date=True)

    @classmethod
    def categorical(cls, name: str) -> "DimensionSpec":
        """A plain categorical set dimension."""
        return cls(name, DimensionKind.DISCRETE)

    @classmethod
    def region(cls, name: str, taxonomy: RegionTaxonomy) -> "DimensionSpec":
        """A categorical dimension whose values are taxonomy region names."""
        return cls(name, DimensionKind.DISCRETE, taxonomy=taxonomy)

    # -- coercion -------------------------------------------------------
    def to_extent(self, raw: Any) -> Extent:
        """Coerce a raw constraint value into this axis' extent type.

        Interval axes accept an existing :class:`Interval`, a 2-tuple/list
        ``(low, high)``, or a single point value.  Discrete axes accept an
        existing :class:`DiscreteSet`, an iterable of atoms, or a single
        atom; with a taxonomy attached, atoms are region names that get
        expanded to leaf sets.
        """
        if self.kind is DimensionKind.INTERVAL:
            return self._to_interval(raw)
        return self._to_discrete(raw)

    def _to_interval(self, raw: Any) -> Interval:
        if isinstance(raw, Interval):
            low, high = raw.low, raw.high
        elif isinstance(raw, (tuple, list)):
            if len(raw) != 2:
                raise SchemaError(
                    f"dimension {self.name!r}: interval needs (low, high), got {raw!r}"
                )
            low, high = raw
        else:
            low = high = raw  # degenerate single-value constraint
        if self.is_date:
            low, high = to_ordinal(low), to_ordinal(high)
        return Interval(low, high)

    def _to_discrete(self, raw: Any) -> DiscreteSet:
        if isinstance(raw, DiscreteSet):
            if self.taxonomy is None:
                return raw
            raw = raw.atoms
        if isinstance(raw, str) or not isinstance(raw, Iterable):
            raw = [raw]
        if self.taxonomy is not None:
            return self.taxonomy.expand([str(name) for name in raw])
        return DiscreteSet(raw)

    def describe_extent(self, extent: Extent) -> Any:
        """Render an extent back into a JSON-friendly value."""
        if isinstance(extent, Interval):
            if self.is_date:
                return [format_date(int(extent.low)), format_date(int(extent.high))]
            return [extent.low, extent.high]
        return sorted(extent.atoms, key=repr)


class ConstraintSchema:
    """An ordered collection of :class:`DimensionSpec` for one license scope.

    All licenses validated against each other must share a schema -- the
    paper assumes a fixed ``M`` per content.
    """

    def __init__(self, dimensions: Sequence[DimensionSpec]):
        if not dimensions:
            raise SchemaError("a schema needs at least one dimension")
        names = [spec.name for spec in dimensions]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension names in schema: {names}")
        self._dimensions: Tuple[DimensionSpec, ...] = tuple(dimensions)
        self._by_name: Dict[str, DimensionSpec] = {
            spec.name: spec for spec in dimensions
        }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> Tuple[DimensionSpec, ...]:
        """Return the dimension specs in axis order."""
        return self._dimensions

    @property
    def names(self) -> Tuple[str, ...]:
        """Return dimension names in axis order."""
        return tuple(spec.name for spec in self._dimensions)

    def __len__(self) -> int:
        return len(self._dimensions)

    def __getitem__(self, name: str) -> DimensionSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown dimension: {name!r}") from None

    # ------------------------------------------------------------------
    # Box construction / description
    # ------------------------------------------------------------------
    def box(self, **constraints: Any) -> Box:
        """Build a :class:`Box` from one keyword argument per dimension.

        Raises
        ------
        SchemaError
            If any dimension is missing or an unknown keyword is supplied.
        """
        unknown = set(constraints) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown constraint dimension(s): {sorted(unknown)}")
        missing = [spec.name for spec in self._dimensions if spec.name not in constraints]
        if missing:
            raise SchemaError(f"missing constraint dimension(s): {missing}")
        return Box([spec.to_extent(constraints[spec.name]) for spec in self._dimensions])

    def box_from_mapping(self, constraints: Mapping[str, Any]) -> Box:
        """Like :meth:`box` but taking a plain mapping (for deserialization)."""
        return self.box(**dict(constraints))

    def describe(self, box: Box) -> Dict[str, Any]:
        """Render a box into a JSON-friendly ``{dimension: value}`` mapping."""
        if box.dimensions != len(self._dimensions):
            raise SchemaError(
                f"box has {box.dimensions} axes, schema has {len(self._dimensions)}"
            )
        return {
            spec.name: spec.describe_extent(extent)
            for spec, extent in zip(self._dimensions, box.extents)
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConstraintSchema):
            return NotImplemented
        return self._dimensions == other._dimensions

    def __hash__(self) -> int:
        return hash(self._dimensions)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ConstraintSchema({list(self.names)!r})"
