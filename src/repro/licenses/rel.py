"""A small JSON rights-expression layer (serialization of licenses).

Real DRM systems exchange licenses in a rights expression language (MPEG-21
REL, ODRL, MPML).  For this reproduction a compact JSON dialect suffices; it
round-trips schemas, redistribution/usage licenses and whole pools, so logs
and experiments can be persisted and replayed.

Document shapes::

    schema   {"dimensions": [{"name": "validity", "kind": "interval",
                              "is_date": true, "taxonomy": null}, ...]}
    license  {"type": "redistribution", "license_id": "LD1", "content_id": "K",
              "permission": "play", "aggregate": 2000,
              "constraints": {"validity": ["10/03/09", "20/03/09"],
                              "region": ["india", "japan", ...]}}
    pool     {"schema": {...}, "licenses": [{...}, ...]}

Discrete constraints are always serialized at *leaf* level, so documents can
be loaded without the original taxonomy object.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import SerializationError
from repro.licenses.license import (
    LicenseBase,
    RedistributionLicense,
    UsageLicense,
)
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.licenses.regions import WORLD, RegionTaxonomy
from repro.licenses.schema import ConstraintSchema, DimensionKind, DimensionSpec

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "license_to_dict",
    "license_from_dict",
    "pool_to_dict",
    "pool_from_dict",
    "dumps_pool",
    "loads_pool",
]

#: Taxonomies resolvable by name during deserialization.
_KNOWN_TAXONOMIES: Dict[str, RegionTaxonomy] = {"world": WORLD}


def schema_to_dict(schema: ConstraintSchema) -> Dict[str, Any]:
    """Serialize a :class:`ConstraintSchema` into a JSON-friendly dict."""
    dims = []
    for spec in schema.dimensions:
        taxonomy_name: Optional[str] = None
        if spec.taxonomy is WORLD:
            taxonomy_name = "world"
        elif spec.taxonomy is not None:
            taxonomy_name = "custom"
        dims.append(
            {
                "name": spec.name,
                "kind": spec.kind.value,
                "is_date": spec.is_date,
                "taxonomy": taxonomy_name,
            }
        )
    return {"dimensions": dims}


def schema_from_dict(
    document: Mapping[str, Any],
    taxonomies: Optional[Mapping[str, RegionTaxonomy]] = None,
) -> ConstraintSchema:
    """Rebuild a :class:`ConstraintSchema` from :func:`schema_to_dict` output.

    ``taxonomies`` maps taxonomy names to live objects; the built-in
    ``"world"`` taxonomy is always resolvable.  Unresolvable taxonomy names
    degrade gracefully to plain categorical dimensions (documents carry
    leaf-level values, so geometry is unaffected).
    """
    lookup = dict(_KNOWN_TAXONOMIES)
    if taxonomies:
        lookup.update(taxonomies)
    try:
        dims = document["dimensions"]
    except KeyError as exc:
        raise SerializationError("schema document missing 'dimensions'") from exc
    specs = []
    for dim in dims:
        try:
            kind = DimensionKind(dim["kind"])
            name = dim["name"]
        except (KeyError, ValueError) as exc:
            raise SerializationError(f"malformed dimension entry: {dim!r}") from exc
        taxonomy = lookup.get(dim.get("taxonomy") or "")
        specs.append(
            DimensionSpec(
                name=name,
                kind=kind,
                is_date=bool(dim.get("is_date", False)),
                taxonomy=taxonomy if kind is DimensionKind.DISCRETE else None,
            )
        )
    return ConstraintSchema(specs)


def license_to_dict(lic: LicenseBase, schema: ConstraintSchema) -> Dict[str, Any]:
    """Serialize a license (either kind) against its schema."""
    document: Dict[str, Any] = {
        "license_id": lic.license_id,
        "content_id": lic.content_id,
        "permission": lic.permission.value,
        "constraints": schema.describe(lic.box),
    }
    if isinstance(lic, RedistributionLicense):
        document["type"] = "redistribution"
        document["aggregate"] = lic.aggregate
    elif isinstance(lic, UsageLicense):
        document["type"] = "usage"
        document["count"] = lic.count
    else:  # pragma: no cover - defensive
        raise SerializationError(f"unknown license type: {type(lic).__name__}")
    return document


def license_from_dict(
    document: Mapping[str, Any], schema: ConstraintSchema
) -> LicenseBase:
    """Rebuild a license from :func:`license_to_dict` output."""
    try:
        kind = document["type"]
        box = schema.box_from_mapping(document["constraints"])
        common = {
            "license_id": document["license_id"],
            "content_id": document["content_id"],
            "permission": Permission(document["permission"]),
            "box": box,
        }
    except KeyError as exc:
        raise SerializationError(f"license document missing field: {exc}") from exc
    if kind == "redistribution":
        return RedistributionLicense(aggregate=int(document["aggregate"]), **common)
    if kind == "usage":
        return UsageLicense(count=int(document["count"]), **common)
    raise SerializationError(f"unknown license type: {kind!r}")


def pool_to_dict(pool: LicensePool, schema: ConstraintSchema) -> Dict[str, Any]:
    """Serialize a whole pool with its schema."""
    return {
        "schema": schema_to_dict(schema),
        "licenses": [license_to_dict(lic, schema) for lic in pool],
    }


def pool_from_dict(
    document: Mapping[str, Any],
    taxonomies: Optional[Mapping[str, RegionTaxonomy]] = None,
) -> tuple:
    """Rebuild ``(pool, schema)`` from :func:`pool_to_dict` output."""
    schema = schema_from_dict(document.get("schema", {}), taxonomies)
    pool = LicensePool()
    for entry in document.get("licenses", []):
        lic = license_from_dict(entry, schema)
        if not isinstance(lic, RedistributionLicense):
            raise SerializationError(
                f"pool documents may only contain redistribution licenses, "
                f"found {entry.get('type')!r}"
            )
        pool.add(lic)
    return pool, schema


def dumps_pool(pool: LicensePool, schema: ConstraintSchema, **json_kwargs: Any) -> str:
    """Serialize a pool to a JSON string."""
    return json.dumps(pool_to_dict(pool, schema), **json_kwargs)


def loads_pool(
    text: str, taxonomies: Optional[Mapping[str, RegionTaxonomy]] = None
) -> tuple:
    """Load ``(pool, schema)`` from a JSON string."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid pool JSON: {exc}") from exc
    return pool_from_dict(document, taxonomies)
