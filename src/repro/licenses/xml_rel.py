"""XML rights-expression serialization (MPML/ODRL-flavoured).

Real DRM deployments exchange licenses as XML rights expressions; the
paper's own architecture reference ([9], MPML) and the broader REL
literature (ODRL, MPEG-21 REL) all use XML documents of roughly this
shape.  This module provides a compact, self-contained XML dialect that
round-trips everything the JSON layer (:mod:`repro.licenses.rel`) does::

    <license type="redistribution" id="LD1" content="K" permission="play">
      <constraint name="validity" kind="interval" date="true">
        <low>10/03/09</low><high>20/03/09</high>
      </constraint>
      <constraint name="region" kind="discrete">
        <atom>india</atom><atom>japan</atom>
      </constraint>
      <aggregate>2000</aggregate>
    </license>

    <pool content="K" permission="play">
      <schema>...</schema>
      <license .../>
    </pool>

Only the standard library's :mod:`xml.etree.ElementTree` is used.
Discrete constraints are serialized at leaf level, so documents load
without the original taxonomy (matching the JSON layer's convention).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Tuple

from repro.errors import SerializationError
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.dates import format_date, to_ordinal
from repro.licenses.license import (
    LicenseBase,
    RedistributionLicense,
    UsageLicense,
)
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionKind, DimensionSpec
from repro.geometry.box import Box

__all__ = [
    "license_to_xml",
    "license_from_xml",
    "pool_to_xml",
    "pool_from_xml",
]


def _constraint_element(spec: DimensionSpec, extent) -> ET.Element:
    element = ET.Element(
        "constraint",
        {"name": spec.name, "kind": spec.kind.value},
    )
    if isinstance(extent, Interval):
        if spec.is_date:
            element.set("date", "true")
            low_text = format_date(int(extent.low))
            high_text = format_date(int(extent.high))
        else:
            low_text, high_text = repr(extent.low), repr(extent.high)
        ET.SubElement(element, "low").text = low_text
        ET.SubElement(element, "high").text = high_text
    else:
        for atom in sorted(extent.atoms, key=repr):
            ET.SubElement(element, "atom").text = str(atom)
    return element


def license_to_xml(lic: LicenseBase, schema: ConstraintSchema) -> ET.Element:
    """Serialize a license into an ``<license>`` element."""
    if isinstance(lic, RedistributionLicense):
        kind, quantity_tag, quantity = "redistribution", "aggregate", lic.aggregate
    elif isinstance(lic, UsageLicense):
        kind, quantity_tag, quantity = "usage", "count", lic.count
    else:  # pragma: no cover - defensive
        raise SerializationError(f"unknown license type: {type(lic).__name__}")
    element = ET.Element(
        "license",
        {
            "type": kind,
            "id": lic.license_id,
            "content": lic.content_id,
            "permission": lic.permission.value,
        },
    )
    for spec, extent in zip(schema.dimensions, lic.box.extents):
        element.append(_constraint_element(spec, extent))
    ET.SubElement(element, quantity_tag).text = str(quantity)
    return element


def _parse_number(text: str):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            raise SerializationError(f"not a number: {text!r}") from None


def _parse_constraint(element: ET.Element) -> Tuple[str, DimensionKind, bool, object]:
    name = element.get("name")
    kind_text = element.get("kind")
    if not name or not kind_text:
        raise SerializationError("constraint element needs name and kind")
    try:
        kind = DimensionKind(kind_text)
    except ValueError:
        raise SerializationError(f"unknown constraint kind: {kind_text!r}") from None
    is_date = element.get("date") == "true"
    if kind is DimensionKind.INTERVAL:
        low_el, high_el = element.find("low"), element.find("high")
        if low_el is None or high_el is None or low_el.text is None or high_el.text is None:
            raise SerializationError(f"interval constraint {name!r} needs low/high")
        if is_date:
            extent = Interval(to_ordinal(low_el.text), to_ordinal(high_el.text))
        else:
            extent = Interval(_parse_number(low_el.text), _parse_number(high_el.text))
    else:
        atoms = [atom.text for atom in element.findall("atom") if atom.text]
        if not atoms:
            raise SerializationError(f"discrete constraint {name!r} has no atoms")
        extent = DiscreteSet(atoms)
    return name, kind, is_date, extent


def license_from_xml(
    element: ET.Element, schema: Optional[ConstraintSchema] = None
) -> Tuple[LicenseBase, ConstraintSchema]:
    """Rebuild a license from XML; returns ``(license, schema)``.

    With ``schema=None``, a schema is inferred from the constraint
    elements (names, kinds, date flags) -- sufficient because documents
    always carry leaf-level discrete atoms.
    """
    if element.tag != "license":
        raise SerializationError(f"expected <license>, got <{element.tag}>")
    kind = element.get("type")
    constraints = element.findall("constraint")
    if not constraints:
        raise SerializationError("license has no constraints")
    specs = []
    extents = []
    for constraint in constraints:
        name, dimension_kind, is_date, extent = _parse_constraint(constraint)
        specs.append(DimensionSpec(name, dimension_kind, is_date=is_date))
        extents.append(extent)
    inferred = ConstraintSchema(specs)
    if schema is not None:
        if tuple((s.name, s.kind, s.is_date) for s in schema.dimensions) != tuple(
            (s.name, s.kind, s.is_date) for s in inferred.dimensions
        ):
            raise SerializationError(
                "license constraints do not match the provided schema"
            )
        inferred = schema
    common = {
        "license_id": element.get("id") or "",
        "content_id": element.get("content") or "",
        "permission": Permission(element.get("permission") or ""),
        "box": Box(extents),
    }
    if kind == "redistribution":
        quantity = element.findtext("aggregate")
        if quantity is None:
            raise SerializationError("redistribution license needs <aggregate>")
        return RedistributionLicense(aggregate=int(quantity), **common), inferred
    if kind == "usage":
        quantity = element.findtext("count")
        if quantity is None:
            raise SerializationError("usage license needs <count>")
        return UsageLicense(count=int(quantity), **common), inferred
    raise SerializationError(f"unknown license type: {kind!r}")


def pool_to_xml(pool: LicensePool, schema: ConstraintSchema) -> str:
    """Serialize a pool into an XML document string."""
    root = ET.Element(
        "pool",
        {"content": pool.content_id, "permission": pool.permission.value}
        if pool
        else {},
    )
    for lic in pool:
        root.append(license_to_xml(lic, schema))
    return ET.tostring(root, encoding="unicode")


def pool_from_xml(text: str) -> Tuple[LicensePool, ConstraintSchema]:
    """Load ``(pool, schema)`` from :func:`pool_to_xml` output."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid pool XML: {exc}") from exc
    if root.tag != "pool":
        raise SerializationError(f"expected <pool>, got <{root.tag}>")
    pool = LicensePool()
    schema: Optional[ConstraintSchema] = None
    for element in root.findall("license"):
        lic, schema = license_from_xml(element, schema)
        if not isinstance(lic, RedistributionLicense):
            raise SerializationError(
                "pool documents may only contain redistribution licenses"
            )
        pool.add(lic)
    if schema is None:
        raise SerializationError("pool document contains no licenses")
    return pool, schema
