"""License model: permissions, constraints, regions, license objects, pools."""

from repro.licenses.dates import date_interval, format_date, parse_date, to_ordinal
from repro.licenses.license import (
    LicenseBase,
    LicenseFactory,
    RedistributionLicense,
    UsageLicense,
)
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.licenses.regions import WORLD, RegionTaxonomy
from repro.licenses.schema import ConstraintSchema, DimensionKind, DimensionSpec

__all__ = [
    "ConstraintSchema",
    "DimensionKind",
    "DimensionSpec",
    "LicenseBase",
    "LicenseFactory",
    "LicensePool",
    "Permission",
    "RedistributionLicense",
    "RegionTaxonomy",
    "UsageLicense",
    "WORLD",
    "date_interval",
    "format_date",
    "parse_date",
    "to_ordinal",
]
