"""License objects: redistribution and usage licenses.

The paper's license format is ``(K; P; I_1, I_2, ..., I_M; A)``:

* ``K`` -- the content identifier,
* ``P`` -- a permission (play, copy, ...),
* ``I_1..I_M`` -- instance-based constraints, modelled here as an
  M-dimensional :class:`~repro.geometry.box.Box`,
* ``A`` -- the aggregate constraint: how many permission counts the license
  may distribute (redistribution) or consume (usage).

Licenses are immutable value objects; all bookkeeping about *remaining*
counts lives in the validation layer, not on the license itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import LicenseError
from repro.geometry.box import Box
from repro.licenses.permission import Permission
from repro.licenses.schema import ConstraintSchema

__all__ = ["LicenseBase", "RedistributionLicense", "UsageLicense", "LicenseFactory"]


@dataclass(frozen=True)
class LicenseBase:
    """Fields shared by redistribution and usage licenses."""

    license_id: str
    content_id: str
    permission: Permission
    box: Box

    def __post_init__(self) -> None:
        if not self.license_id:
            raise LicenseError("license_id must be non-empty")
        if not self.content_id:
            raise LicenseError("content_id must be non-empty")
        if not isinstance(self.permission, Permission):
            object.__setattr__(self, "permission", Permission(self.permission))
        if not isinstance(self.box, Box):
            raise LicenseError(f"box must be a Box, got {type(self.box).__name__}")

    def same_scope(self, other: "LicenseBase") -> bool:
        """Return ``True`` if both licenses cover the same content/permission."""
        return (
            self.content_id == other.content_id
            and self.permission is other.permission
        )


@dataclass(frozen=True)
class RedistributionLicense(LicenseBase):
    """A license allowing a distributor to generate further licenses.

    ``aggregate`` is the aggregate constraint ``A``: the total permission
    counts that may be distributed across all licenses generated from this
    one.
    """

    aggregate: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.aggregate, int) or isinstance(self.aggregate, bool):
            raise LicenseError(f"aggregate must be an int, got {self.aggregate!r}")
        if self.aggregate <= 0:
            raise LicenseError(f"aggregate must be positive, got {self.aggregate}")

    def can_instance_validate(self, issued: "LicenseBase") -> bool:
        """Instance-based validation: does this license's hyper-rectangle
        fully contain the issued license's hyper-rectangle?

        (Section 3.1 -- the set ``S`` for an issued license is exactly the
        set of redistribution licenses for which this returns ``True``.)
        """
        if not self.same_scope(issued):
            return False
        return self.box.contains(issued.box)

    def overlaps_with(self, other: "RedistributionLicense") -> bool:
        """Overlapping-licenses relation of Section 3.2 (same scope + all
        constraint axes overlap)."""
        return self.same_scope(other) and self.box.overlaps(other.box)


@dataclass(frozen=True)
class UsageLicense(LicenseBase):
    """A license issued to a consumer (or sub-distributor).

    ``count`` is the permission count carried by the license -- the amount
    that is debited from the issuing redistribution licenses' aggregates.
    """

    count: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.count, int) or isinstance(self.count, bool):
            raise LicenseError(f"count must be an int, got {self.count!r}")
        if self.count <= 0:
            raise LicenseError(f"count must be positive, got {self.count}")


class LicenseFactory:
    """Builds licenses for one ``(content, permission, schema)`` scope.

    Using a factory keeps constraint keywords symbolic and guarantees every
    produced license shares the same schema -- a precondition of all
    validation code.

    Examples
    --------
    >>> from repro.licenses.schema import ConstraintSchema, DimensionSpec
    >>> schema = ConstraintSchema([DimensionSpec.numeric("level")])
    >>> factory = LicenseFactory(schema, content_id="K", permission="play")
    >>> lic = factory.redistribution("LD1", aggregate=100, level=(0, 10))
    >>> lic.aggregate
    100
    """

    def __init__(
        self,
        schema: ConstraintSchema,
        content_id: str,
        permission: "Permission | str",
    ):
        self._schema = schema
        self._content_id = content_id
        self._permission = Permission(permission)
        self._serial = 0

    @property
    def schema(self) -> ConstraintSchema:
        """Return the constraint schema shared by produced licenses."""
        return self._schema

    @property
    def content_id(self) -> str:
        """Return the content identifier of this scope."""
        return self._content_id

    @property
    def permission(self) -> Permission:
        """Return the permission of this scope."""
        return self._permission

    def _next_id(self, prefix: str) -> str:
        self._serial += 1
        return f"{prefix}{self._serial}"

    def redistribution(
        self,
        license_id: "str | None" = None,
        *,
        aggregate: int,
        **constraints: Any,
    ) -> RedistributionLicense:
        """Create a redistribution license from keyword constraints."""
        return RedistributionLicense(
            license_id=license_id or self._next_id("LD"),
            content_id=self._content_id,
            permission=self._permission,
            box=self._schema.box(**constraints),
            aggregate=aggregate,
        )

    def usage(
        self,
        license_id: "str | None" = None,
        *,
        count: int,
        **constraints: Any,
    ) -> UsageLicense:
        """Create a usage license from keyword constraints."""
        return UsageLicense(
            license_id=license_id or self._next_id("LU"),
            content_id=self._content_id,
            permission=self._permission,
            box=self._schema.box(**constraints),
            count=count,
        )
