"""License pools: the ``N`` redistribution licenses held by a distributor.

All validation machinery in this library is scoped to one pool -- the
paper's set ``S^N = [L_D^1 .. L_D^N]`` of redistribution licenses a
distributor has acquired for one content/permission.  The pool assigns the
1-based indexes the paper uses throughout (``L_D^1`` is index 1) and exposes
the aggregate-constraint array ``A`` of Section 2.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import LicenseError
from repro.geometry.box import Box
from repro.licenses.license import RedistributionLicense
from repro.licenses.permission import Permission
from repro.licenses.license import UsageLicense

__all__ = ["LicensePool"]


class LicensePool:
    """An ordered, indexable collection of redistribution licenses.

    Indexes are **1-based** to match the paper's ``L_D^i`` notation and the
    bit positions of the validation-equation masks (bit ``i-1`` of a mask
    corresponds to license ``i``).

    Examples
    --------
    >>> from repro.licenses.schema import ConstraintSchema, DimensionSpec
    >>> from repro.licenses.license import LicenseFactory
    >>> schema = ConstraintSchema([DimensionSpec.numeric("x")])
    >>> f = LicenseFactory(schema, "K", "play")
    >>> pool = LicensePool([f.redistribution(aggregate=10, x=(0, 5))])
    >>> len(pool)
    1
    >>> pool[1].aggregate
    10
    """

    def __init__(self, licenses: Iterable[RedistributionLicense] = ()):
        self._licenses: List[RedistributionLicense] = []
        self._by_id: Dict[str, int] = {}
        for lic in licenses:
            self.add(lic)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, lic: RedistributionLicense) -> int:
        """Append a license and return its 1-based index.

        Raises
        ------
        LicenseError
            On duplicate license ids or a content/permission/schema scope
            mismatch with licenses already in the pool.
        """
        if not isinstance(lic, RedistributionLicense):
            raise LicenseError(
                f"pool accepts RedistributionLicense, got {type(lic).__name__}"
            )
        if lic.license_id in self._by_id:
            raise LicenseError(f"duplicate license id: {lic.license_id!r}")
        if self._licenses and not self._licenses[0].same_scope(lic):
            first = self._licenses[0]
            raise LicenseError(
                f"scope mismatch: pool holds ({first.content_id}, "
                f"{first.permission}) but got ({lic.content_id}, {lic.permission})"
            )
        if self._licenses and self._licenses[0].box.dimensions != lic.box.dimensions:
            raise LicenseError(
                f"dimension mismatch: pool uses {self._licenses[0].box.dimensions} "
                f"constraint axes but got {lic.box.dimensions}"
            )
        self._licenses.append(lic)
        index = len(self._licenses)
        self._by_id[lic.license_id] = index
        return index

    # ------------------------------------------------------------------
    # Indexed access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._licenses)

    def __bool__(self) -> bool:
        return bool(self._licenses)

    def __iter__(self) -> Iterator[RedistributionLicense]:
        return iter(self._licenses)

    def __getitem__(self, index: int) -> RedistributionLicense:
        """Return the license at a **1-based** index."""
        if not isinstance(index, int) or isinstance(index, bool):
            raise LicenseError(f"pool index must be an int, got {index!r}")
        if not 1 <= index <= len(self._licenses):
            raise LicenseError(
                f"pool index {index} out of range 1..{len(self._licenses)}"
            )
        return self._licenses[index - 1]

    def index_of(self, license_id: str) -> int:
        """Return the 1-based index for a license id."""
        try:
            return self._by_id[license_id]
        except KeyError:
            raise LicenseError(f"unknown license id: {license_id!r}") from None

    def enumerate(self) -> Iterator[Tuple[int, RedistributionLicense]]:
        """Yield ``(1-based index, license)`` pairs in pool order."""
        for position, lic in enumerate(self._licenses, start=1):
            yield position, lic

    # ------------------------------------------------------------------
    # Derived arrays used by validation
    # ------------------------------------------------------------------
    def aggregate_array(self) -> List[int]:
        """Return the paper's array ``A``: ``A[j-1]`` is the aggregate of
        the ``j``-th license (0-based list, 1-based license indexes)."""
        return [lic.aggregate for lic in self._licenses]

    def boxes(self) -> List[Box]:
        """Return every license's constraint box in index order."""
        return [lic.box for lic in self._licenses]

    def matching_indexes(self, issued: UsageLicense) -> frozenset:
        """Return the paper's set ``S`` for an issued license: the 1-based
        indexes of all redistribution licenses that instance-validate it.

        (Convenience wrapper; :mod:`repro.matching` offers indexed matchers
        for bulk workloads.)
        """
        return frozenset(
            index
            for index, lic in self.enumerate()
            if lic.can_instance_validate(issued)
        )

    @property
    def content_id(self) -> str:
        """Return the content id shared by pool licenses."""
        if not self._licenses:
            raise LicenseError("empty pool has no content id")
        return self._licenses[0].content_id

    @property
    def permission(self) -> Permission:
        """Return the permission shared by pool licenses."""
        if not self._licenses:
            raise LicenseError("empty pool has no permission")
        return self._licenses[0].permission

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LicensePool(n={len(self._licenses)})"
