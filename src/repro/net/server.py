"""Asyncio TCP admission server over a :class:`ValidationService`.

:class:`AdmissionServer` is the wire-level face of the serving layer --
the paper's distributor node answering online admission checks over a
real socket.  Design points:

* **Pure transport.**  The server decodes requests, calls
  :meth:`ValidationService.submit`, and batches completions through
  :meth:`ValidationService.drain`.  It never makes an admission decision
  itself, so verdicts are byte-identical to in-process admission for the
  same per-group request order (the parity tests pin this down).
* **Bounded in-flight window.**  At most ``max_inflight`` requests may
  be submitted-but-unanswered; past that, the server answers a wire
  ``OVERLOADED`` error -- the same shape a full shard queue
  (:class:`repro.errors.ServiceOverloadedError`) produces -- and keeps
  the connection alive.  Backpressure is always an explicit response,
  never a dropped connection or an unbounded buffer.
* **Read-side backpressure.**  Connections are read in bounded chunks
  through asyncio's flow-controlled streams (``limit=`` on the reader),
  so one firehosing client cannot balloon server memory.
* **Batched flushes.**  Requests parsed from one TCP read chunk are
  submitted together and completed by a single service drain, so
  pipelining clients get the same batch-amortized revalidation the
  in-process :meth:`ValidationService.process` loop enjoys.
* **Graceful drain.**  :meth:`shutdown` (also armed for SIGTERM/SIGINT
  by the ``repro serve`` CLI) stops accepting, flushes every in-flight
  request, emits a ``drain`` event, and only then closes connections.
* **Distributed tracing (protocol v2).**  REQUEST frames may carry a
  client trace context; the server threads it into
  :meth:`ValidationService.submit` so server spans parent under the
  client's wire span, and echoes a per-request phase breakdown
  (:class:`repro.obs.distrib.ServerTiming`) in RESPONSE frames.  Both
  are negotiated away transparently for v1 peers.
* **Live introspection (protocol v2).**  The ADMIN message family
  answers metrics-snapshot, health, SLO, top-N-slowest and event-tail
  queries over the same port (see :meth:`admin_snapshot` and the
  ``repro admin`` CLI) -- the monitor becomes a queryable endpoint
  instead of a file sink.
* **Telemetry.**  Connection/request counters land in the service's
  :class:`~repro.service.metrics.MetricsRegistry` (``wire_*`` names) and
  ``conn_open``/``conn_close``/``drain`` events in the optional
  :class:`~repro.obs.events.EventLog` -- strictly out-of-band, like all
  observability in this repository.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.net import protocol
from repro.net.protocol import Frame, FrameDecoder
from repro.obs.events import (
    EVENT_CONN_CLOSE,
    EVENT_CONN_OPEN,
    EVENT_DRAIN,
    EventLog,
)
from repro.service.service import ValidationService

__all__ = ["AdmissionServer", "WireServerConfig"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class WireServerConfig:
    """Tuning knobs of an :class:`AdmissionServer`.

    Attributes
    ----------
    host, port:
        Listen address.  Port ``0`` binds an ephemeral port; read the
        actual one from :attr:`AdmissionServer.address` after
        :meth:`AdmissionServer.start`.
    max_inflight:
        Bound on submitted-but-unanswered requests across all
        connections.  Arrivals beyond it get a wire ``OVERLOADED``
        error (retryable; the connection stays alive).
    read_limit:
        High-water mark of each connection's stream reader -- the
        per-connection read-side backpressure bound, in bytes.
    auto_flush:
        When ``True`` (default), requests are flushed through the
        service as soon as the batch parsed from one read chunk has been
        submitted.  Tests set ``False`` to drive :meth:`flush` manually
        and observe window saturation deterministically.
    timing_echo:
        When ``True`` (default), the service collects a per-request
        phase breakdown (:class:`repro.obs.distrib.ServerTiming`) and
        the server echoes it under the ``"timing"`` key of RESPONSE
        frames on protocol-v2 connections.  v1 connections never see
        the key; disabling skips clock reads entirely (benchmarked
        baseline path).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 256
    read_limit: int = 1 << 16
    auto_flush: bool = True
    timing_echo: bool = True

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ServiceError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.read_limit < protocol.HEADER_SIZE:
            raise ServiceError(
                f"read_limit must cover at least one frame header "
                f"({protocol.HEADER_SIZE} bytes), got {self.read_limit}"
            )


class _Connection:
    """Per-connection bookkeeping (writer + counters)."""

    __slots__ = ("writer", "peer", "requests", "negotiated")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        peername = writer.get_extra_info("peername")
        self.peer = (
            f"{peername[0]}:{peername[1]}"
            if isinstance(peername, tuple) and len(peername) >= 2
            else str(peername)
        )
        self.requests = 0
        self.negotiated: Optional[int] = None


class AdmissionServer:
    """Wire admission front end over one :class:`ValidationService`.

    The server assumes it is the service's only submitter while running
    (drains map completions back to wire requests by sequence number).

    Examples
    --------
    ::

        service = ValidationService(pool, ServiceConfig(shards=4))
        server = AdmissionServer(service, WireServerConfig(port=0))
        host, port = await server.start()
        ...
        await server.shutdown()   # graceful drain
    """

    def __init__(
        self,
        service: ValidationService,
        config: Optional[WireServerConfig] = None,
        *,
        events: Optional[EventLog] = None,
    ):
        self.service = service
        self.config = config or WireServerConfig()
        self.events = events if events is not None else service.events
        self.metrics = service.metrics
        if self.config.timing_echo:
            service.enable_request_timings()
        monitor = service.monitor
        if monitor is not None:
            # Lets the monitor grade wire window saturation (the sixth
            # health indicator) against this server's actual capacity.
            monitor.set_wire_capacity(self.config.max_inflight)
        self._server: Optional[asyncio.base_events.Server] = None
        #: seq -> (connection, request id) for submitted, unanswered requests.
        self._pending: Dict[int, Tuple[_Connection, int]] = {}
        self._connections: Set[_Connection] = set()
        self._flush_mutex = asyncio.Lock()
        self._draining = False
        self._drained = asyncio.Event()
        self._requests_served = 0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; return the actual ``(host, port)``."""
        if self._started:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.read_limit,
        )
        self._started = True
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        logger.info("admission server listening on %s:%d", host, port)
        return host, port

    @property
    def address(self) -> Tuple[str, int]:
        """Return the bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening")
        sock = self._server.sockets[0]
        return tuple(sock.getsockname()[:2])  # type: ignore[return-value]

    @property
    def in_flight(self) -> int:
        """Return submitted-but-unanswered request count."""
        return len(self._pending)

    @property
    def requests_served(self) -> int:
        """Return how many wire requests have been answered."""
        return self._requests_served

    @property
    def connections_open(self) -> int:
        """Return the number of currently open connections."""
        return len(self._connections)

    async def wait_drained(self) -> None:
        """Block until a graceful :meth:`shutdown` has completed."""
        await self._drained.wait()

    async def shutdown(self) -> None:
        """Gracefully drain: stop accepting, flush in-flight, close.

        Idempotent.  New requests arriving on still-open connections
        while the drain flushes get a ``SHUTTING_DOWN`` error response.
        Emits one ``drain`` event with the flushed in-flight count.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        flushed = len(self._pending)
        await self.flush()
        if self.events is not None:
            self.events.emit(
                EVENT_DRAIN,
                in_flight_flushed=flushed,
                requests_served=self._requests_served,
                connections=len(self._connections),
            )
        self.metrics.counter("wire_drains_total").inc()
        for connection in list(self._connections):
            await self._close_connection(connection)
        logger.info(
            "admission server drained: %d in-flight flushed, %d served",
            flushed,
            self._requests_served,
        )
        self._drained.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self.metrics.counter("wire_connections_total").inc()
        self.metrics.gauge("wire_connections_open").set(len(self._connections))
        if self.events is not None:
            self.events.emit(EVENT_CONN_OPEN, peer=connection.peer)
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(self.config.read_limit)
                if not chunk:
                    decoder.finish()
                    break
                frames = decoder.feed(chunk)
                submitted = 0
                for frame in frames:
                    submitted += await self._handle_frame(connection, frame)
                if submitted and self.config.auto_flush:
                    await self.flush()
        except ProtocolError as exc:
            logger.warning(
                "protocol error from %s: %s", connection.peer, exc
            )
            self.metrics.counter("wire_protocol_errors_total").inc()
            await self._send_error(
                connection, 0, protocol.ERR_BAD_REQUEST, str(exc)
            )
        except ServiceError as exc:
            # The service refused or broke mid-flush (closed, another
            # submitter, ...).  Frame it as INTERNAL so the peer learns
            # the admission failed instead of watching the socket drop.
            logger.error(
                "service failure on connection %s: %s", connection.peer, exc
            )
            self.metrics.counter("wire_internal_errors_total").inc()
            await self._send_error(
                connection, 0, protocol.ERR_INTERNAL, str(exc)
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            logger.info("connection from %s dropped", connection.peer)
        finally:
            await self._close_connection(connection)

    async def _handle_frame(self, connection: _Connection, frame: Frame) -> int:
        """Process one frame; return 1 if a request was submitted."""
        if frame.msg_type == protocol.MSG_HELLO:
            await self._handle_hello(connection, frame)
            return 0
        if frame.msg_type == protocol.MSG_PING:
            await self._send(
                connection,
                protocol.encode_frame(
                    protocol.MSG_PONG,
                    frame.request_id,
                    version=self._wire_version(connection),
                ),
            )
            return 0
        if frame.msg_type == protocol.MSG_ADMIN:
            await self._handle_admin(connection, frame)
            return 0
        if frame.msg_type != protocol.MSG_REQUEST:
            await self._send_error(
                connection,
                frame.request_id,
                protocol.ERR_BAD_REQUEST,
                f"unexpected message type {frame.msg_type:#x} on the "
                f"server side of the connection",
            )
            return 0
        return await self._handle_request(connection, frame)

    async def _handle_hello(self, connection: _Connection, frame: Frame) -> None:
        offered = frame.payload.get("versions")
        try:
            if not isinstance(offered, list):
                raise ProtocolError(
                    f"HELLO payload must list offered versions, got "
                    f"{offered!r}"
                )
            version = protocol.negotiate_version(offered)
        except ProtocolError as exc:
            await self._send_error(
                connection,
                frame.request_id,
                protocol.ERR_UNSUPPORTED_VERSION,
                str(exc),
            )
            return
        connection.negotiated = version
        await self._send(
            connection,
            protocol.encode_frame(
                protocol.MSG_HELLO_OK,
                frame.request_id,
                {
                    "version": version,
                    "server": "repro",
                    "groups": self.service.group_count,
                    "licenses": len(self.service.pool),
                    "shards": self.service.shard_count,
                },
                # Framed at the negotiated version: a v1-only peer must
                # be able to decode everything we send from here on.
                version=version,
            ),
        )

    async def _handle_request(self, connection: _Connection, frame: Frame) -> int:
        if connection.negotiated is None:
            await self._send_error(
                connection,
                frame.request_id,
                protocol.ERR_BAD_REQUEST,
                "REQUEST before HELLO: negotiate a version first",
            )
            return 0
        if self._draining:
            await self._send_error(
                connection,
                frame.request_id,
                protocol.ERR_SHUTTING_DOWN,
                "server is draining; no new admissions",
            )
            return 0
        try:
            usage = protocol.usage_from_payload(frame.payload)
            # The trace context only exists on v2 connections; a v1
            # client cannot have sent one, so don't even look (a stray
            # "trace" key from a v1 peer is ignored, not an error).
            context = (
                protocol.trace_context_from_payload(frame.payload)
                if connection.negotiated >= 2
                else None
            )
        except ProtocolError as exc:
            self.metrics.counter("wire_requests_total").inc(("bad_request",))
            await self._send_error(
                connection, frame.request_id, protocol.ERR_BAD_REQUEST, str(exc)
            )
            return 0
        if len(self._pending) >= self.config.max_inflight:
            self.metrics.counter("wire_requests_total").inc(("overloaded",))
            await self._send_error(
                connection,
                frame.request_id,
                protocol.ERR_OVERLOADED,
                f"in-flight window full ({self.config.max_inflight} "
                f"submitted, none drained yet); retry with backoff",
            )
            return 0
        try:
            # The service is single-submitter, and flush() runs its drain
            # on a worker thread while holding this mutex: submitting --
            # and recording the seq as in flight -- must not interleave
            # with a drain, or responses could no longer be mapped back.
            async with self._flush_mutex:
                seq = self.service.submit(usage, trace_context=context)
                self._pending[seq] = (connection, frame.request_id)
        except ServiceOverloadedError as exc:
            self.metrics.counter("wire_requests_total").inc(("overloaded",))
            await self._send_error(
                connection, frame.request_id, protocol.ERR_OVERLOADED, str(exc)
            )
            return 0
        except ServiceError as exc:
            self.metrics.counter("wire_requests_total").inc(("internal",))
            await self._send_error(
                connection, frame.request_id, protocol.ERR_INTERNAL, str(exc)
            )
            return 0
        connection.requests += 1
        self.metrics.counter("wire_requests_total").inc(("submitted",))
        # Kept current on the submit side too (not just after flushes),
        # so health evaluation sees true window occupancy under load.
        self.metrics.gauge("wire_in_flight").set(len(self._pending))
        return 1

    # ------------------------------------------------------------------
    # Admin introspection (protocol v2)
    # ------------------------------------------------------------------
    def admin_snapshot(self) -> Dict[str, object]:
        """Wire-level occupancy summary served by admin ``health``.

        This is the live feed of the wire-saturation health indicator:
        window occupancy vs. capacity, open connections, served count.
        """
        return {
            "in_flight": len(self._pending),
            "max_inflight": self.config.max_inflight,
            "connections_open": len(self._connections),
            "requests_served": self._requests_served,
            "draining": self._draining,
            "timing_echo": self.config.timing_echo,
        }

    async def _handle_admin(self, connection: _Connection, frame: Frame) -> None:
        """Answer one MSG_ADMIN query with a MSG_ADMIN_OK frame.

        ADMIN is a v2 message: it requires a negotiated v2 connection
        (v1 peers never send it -- the type postdates their codec).
        """
        if connection.negotiated is None or connection.negotiated < 2:
            await self._send_error(
                connection,
                frame.request_id,
                protocol.ERR_BAD_REQUEST,
                "ADMIN requires a negotiated protocol-v2 connection",
            )
            return
        try:
            query, limit = protocol.admin_query_from_payload(frame.payload)
        except ProtocolError as exc:
            await self._send_error(
                connection, frame.request_id, protocol.ERR_BAD_REQUEST, str(exc)
            )
            return
        monitor = self.service.monitor
        data: object
        if query == "metrics":
            self.metrics.gauge("wire_in_flight").set(len(self._pending))
            data = self.metrics.snapshot()
        elif query == "health":
            self.metrics.gauge("wire_in_flight").set(len(self._pending))
            if monitor is not None and monitor.attached:
                monitor.tick()
            data = {
                "wire": self.admin_snapshot(),
                "monitor": monitor.snapshot() if monitor is not None else None,
            }
        elif query == "slo":
            data = (
                [status.to_dict() for status in monitor.slo_statuses()]
                if monitor is not None
                else []
            )
        elif query == "slowest":
            tracer = self.service.tracer
            records = list(tracer.records()) if tracer is not None else []
            records.sort(key=lambda r: (-r.duration, r.trace_id, r.span_id))
            data = [record.to_dict() for record in records[: limit or 10]]
        else:  # "events" -- admin_query_from_payload vetted the name
            data = self.events.tail(limit or 50) if self.events is not None else []
        await self._send(
            connection,
            protocol.encode_frame(
                protocol.MSG_ADMIN_OK,
                frame.request_id,
                {"query": query, "data": data},
                version=self._wire_version(connection),
            ),
        )

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    async def flush(self) -> int:
        """Drain the service; answer every completed request.

        Returns how many responses were written.  Concurrent callers are
        serialized; a second caller whose requests were already flushed
        by the first simply finds nothing pending.
        """
        async with self._flush_mutex:
            if not self._pending:
                # Nothing of ours in flight -- nothing to map back.
                return 0
            ordered_seqs = sorted(self._pending)
            # drain() joins shard worker futures -- blocking work that
            # would stall every connection if run on the event loop.
            # The flush mutex still serializes drains, so outcome order
            # stays deterministic.
            loop = asyncio.get_running_loop()
            outcomes = await loop.run_in_executor(None, self.service.drain)
            if len(outcomes) != len(ordered_seqs):
                # The server must be the service's only submitter; a
                # mismatch means that contract broke and responses can
                # no longer be routed trustworthily.
                raise ServiceError(
                    f"drain returned {len(outcomes)} outcome(s) for "
                    f"{len(ordered_seqs)} wire request(s); the service "
                    f"has another submitter"
                )
            self.metrics.counter("wire_flushes_total").inc()
            written = 0
            for seq, outcome in zip(ordered_seqs, outcomes):
                connection, request_id = self._pending.pop(seq)
                self._requests_served += 1
                payload = protocol.outcome_to_payload(outcome)
                # Timings must be claimed for every seq (the buffer is
                # pop-once); only v2 peers get the echo on the wire.
                timing = self.service.pop_request_timing(seq)
                version = self._wire_version(connection)
                if timing is not None and version >= 2:
                    payload["timing"] = protocol.timing_to_payload(timing)
                frame = protocol.encode_frame(
                    protocol.MSG_RESPONSE, request_id, payload, version=version
                )
                await self._send(connection, frame)
                written += 1
            self.metrics.gauge("wire_in_flight").set(len(self._pending))
            return written

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    async def _send(self, connection: _Connection, data: bytes) -> None:
        writer = connection.writer
        if writer.is_closing():
            return
        try:
            writer.write(data)
            await writer.drain()
        except ConnectionError:  # peer vanished mid-write
            logger.info("write to %s failed; closing", connection.peer)

    @staticmethod
    def _wire_version(connection: _Connection) -> int:
        """Frame version for replies: the negotiated one, else v1 (the
        lowest common denominator every client can decode)."""
        return connection.negotiated if connection.negotiated is not None else 1

    async def _send_error(
        self, connection: _Connection, request_id: int, code: int, detail: str
    ) -> None:
        try:
            frame = protocol.encode_frame(
                protocol.MSG_ERROR,
                request_id,
                protocol.error_payload(code, detail),
                version=self._wire_version(connection),
            )
        except ProtocolError:  # pragma: no cover - server-built payload
            # The ERROR frame itself would not encode; there is nothing
            # better left to answer with, so log and let the connection
            # close instead of raising out of the error path.
            logger.exception(
                "could not encode ERROR frame for %s", connection.peer
            )
            return
        await self._send(connection, frame)

    async def _close_connection(self, connection: _Connection) -> None:
        if connection not in self._connections:
            return
        self._connections.discard(connection)
        self.metrics.gauge("wire_connections_open").set(len(self._connections))
        if self.events is not None:
            self.events.emit(
                EVENT_CONN_CLOSE,
                peer=connection.peer,
                requests=connection.requests,
            )
        writer = connection.writer
        if not writer.is_closing():
            writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - racy peer teardown
            pass
