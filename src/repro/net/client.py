"""Asyncio admission client: deadlines, bounded retry, pipelining.

:class:`AdmissionClient` speaks the :mod:`repro.net.protocol` framing to
an :class:`~repro.net.server.AdmissionServer`:

* **Handshake.**  :meth:`connect` sends HELLO with every locally
  supported protocol version and records the negotiated one.
* **Deadlines.**  Every request carries a client-side timeout; a server
  that never answers raises :class:`repro.errors.RequestTimeoutError`.
* **Bounded retry with jitter.**  A wire ``OVERLOADED`` error is
  backpressure, not failure: the client sleeps
  ``min(cap, base * 2^attempt) * (0.5 + u)`` with ``u`` drawn from a
  *seeded* ``random.Random`` (the repository's REP001 determinism
  discipline -- no ambient entropy) and retries up to ``retries`` times
  before raising :class:`repro.errors.WireOverloadedError`.  The sleep
  function is injectable so tests run the whole ladder in microseconds.
* **Pipelining.**  :meth:`request_many` keeps up to ``window`` requests
  in flight on one connection; responses are matched back by request id,
  so the server can batch one read chunk's worth of requests through a
  single service drain.

The client is a pure transport too: it never reorders the stream it is
given, so per-group submission order -- the thing verdicts depend on --
is exactly the caller's order.

Distributed tracing (protocol v2): give the client a
:class:`~repro.obs.trace.Tracer` and every request becomes a
``wire_request`` span whose context (trace id + span id) rides in the
REQUEST frame, so the server's ``request`` span tree parents under it --
one request, one trace, across the process boundary.  The server's
per-phase timing echo comes back on :class:`WireResult` (and as span
attributes).  Both features negotiate away cleanly against v1 servers.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

from repro.errors import (
    ProtocolError,
    RequestTimeoutError,
    TransportError,
    WireOverloadedError,
)
from repro.net import protocol
from repro.net.protocol import Frame, FrameDecoder
from repro.obs.distrib import ServerTiming, TraceContext
from repro.obs.trace import NULL_SPAN, Tracer
from repro.online.session import IssuanceOutcome

__all__ = ["AdmissionClient", "RequestStats", "WireResult"]

#: Injectable sleeper type (tests swap in a no-op recorder).
SleepFn = Callable[[float], Awaitable[None]]


class RequestStats:
    """Mutable counters of one client's traffic (attempts, retries)."""

    __slots__ = ("requests", "responses", "retries", "overloaded", "timeouts")

    def __init__(self) -> None:
        self.requests = 0
        self.responses = 0
        self.retries = 0
        self.overloaded = 0
        self.timeouts = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}


@dataclass(frozen=True)
class WireResult:
    """One answered request: verdict plus v2 tracing extras.

    ``timing`` and ``trace_id`` are ``None`` on v1 connections, when the
    server's timing echo is off, or when no client tracer is configured
    (respectively) -- the verdict itself is identical either way.
    """

    outcome: IssuanceOutcome
    timing: Optional[ServerTiming] = None
    trace_id: Optional[str] = None
    attempts: int = 1


class AdmissionClient:
    """One connection to an admission server (see module docstring).

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-attempt deadline in seconds.
    retries:
        Extra attempts after the first when the server answers
        ``OVERLOADED`` (so ``retries=4`` makes at most 5 attempts).
    backoff_base, backoff_cap:
        Exponential backoff parameters (seconds).
    jitter_seed:
        Seed of the backoff jitter's ``random.Random``.
    sleep:
        Awaitable sleeper used between retries (default
        ``asyncio.sleep``; tests inject a recorder).
    client_name:
        Advertised in HELLO, echoed in server logs.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when set, every
        request emits a ``wire_request`` span and (on v2 connections)
        propagates its context to the server.
    protocol_versions:
        Versions offered in HELLO (default: everything this codec
        speaks).  Pin to ``(1,)`` to behave exactly like a pre-v2
        client -- compatibility tests and the tracing-overhead baseline
        benchmark do.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        retries: int = 4,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        jitter_seed: int = 0,
        sleep: Optional[SleepFn] = None,
        client_name: str = "repro-client",
        tracer: Optional[Tracer] = None,
        protocol_versions: Sequence[int] = protocol.SUPPORTED_VERSIONS,
    ):
        if timeout <= 0:
            raise TransportError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise TransportError(f"retries must be >= 0, got {retries}")
        versions = tuple(sorted(set(protocol_versions)))
        if not versions or any(
            v not in protocol.SUPPORTED_VERSIONS for v in versions
        ):
            raise TransportError(
                f"protocol_versions must be a non-empty subset of "
                f"{protocol.SUPPORTED_VERSIONS}, got {protocol_versions!r}"
            )
        self.tracer = tracer
        self._versions = versions
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.client_name = client_name
        self.stats = RequestStats()
        self._sleep: SleepFn = sleep if sleep is not None else asyncio.sleep
        self._jitter = random.Random(jitter_seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._negotiated: Optional[int] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> Dict[str, object]:
        """Open the connection and negotiate; return the HELLO_OK payload."""
        if self._writer is not None:
            raise TransportError("client is already connected")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        request_id = self._allocate_id()
        future = self._register(request_id)
        await self._send(
            protocol.encode_frame(
                protocol.MSG_HELLO,
                request_id,
                protocol.hello_payload(
                    client=self.client_name, versions=self._versions
                ),
                # HELLO precedes negotiation, so it is framed at the
                # lowest offered version -- the one frame any server in
                # the offer's range is guaranteed to decode.
                version=min(self._versions),
            )
        )
        frame = await self._await_frame(future, request_id)
        if frame.msg_type == protocol.MSG_ERROR:
            raise ProtocolError(
                f"handshake refused: {frame.payload.get('detail')}"
            )
        if frame.msg_type != protocol.MSG_HELLO_OK:
            raise ProtocolError(
                f"expected HELLO_OK, got message type {frame.msg_type:#x}"
            )
        version = frame.payload.get("version")
        if not isinstance(version, int) or version not in self._versions:
            raise ProtocolError(f"server negotiated unusable version {version!r}")
        self._negotiated = version
        return dict(frame.payload)

    @property
    def negotiated_version(self) -> Optional[int]:
        """Return the negotiated protocol version (None before connect)."""
        return self._negotiated

    async def close(self) -> None:
        """Close the connection; outstanding requests fail fast."""
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(TransportError("client closed"))

    async def __aenter__(self) -> "AdmissionClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def ping(self) -> None:
        """Round-trip a PING frame (liveness probe)."""
        request_id = self._allocate_id()
        future = self._register(request_id)
        await self._send(
            protocol.encode_frame(
                protocol.MSG_PING, request_id, version=self._frame_version()
            )
        )
        frame = await self._await_frame(future, request_id)
        if frame.msg_type != protocol.MSG_PONG:
            raise ProtocolError(
                f"expected PONG, got message type {frame.msg_type:#x}"
            )

    async def request(self, usage) -> IssuanceOutcome:
        """Submit one usage license; return the server's verdict.

        Retries (with jittered exponential backoff) when the server
        answers ``OVERLOADED``; raises
        :class:`repro.errors.WireOverloadedError` once the retry budget
        is spent and :class:`repro.errors.RequestTimeoutError` when an
        attempt's deadline passes with no response at all.
        """
        return (await self.call(usage)).outcome

    async def call(self, usage) -> WireResult:
        """Like :meth:`request`, but return the full :class:`WireResult`
        (verdict + server timing echo + the request's trace id)."""
        payload = protocol.usage_to_payload(usage)
        tracer = self.tracer
        span = (
            tracer.start_span("wire_request", usage_id=usage.license_id)
            if tracer is not None
            else NULL_SPAN
        )
        if span and self._speaks_v2():
            payload["trace"] = protocol.trace_context_to_payload(
                TraceContext(span.trace_id, span.span_id)
            )
        attempts = self.retries + 1
        last_id = 0
        try:
            for attempt in range(attempts):
                request_id = self._allocate_id()
                last_id = request_id
                future = self._register(request_id)
                self.stats.requests += 1
                await self._send(
                    protocol.encode_frame(
                        protocol.MSG_REQUEST,
                        request_id,
                        payload,
                        version=self._frame_version(),
                    )
                )
                frame = await self._await_frame(future, request_id)
                outcome = self._interpret(frame)
                if outcome is not None:
                    self.stats.responses += 1
                    timing = protocol.timing_from_payload(frame.payload)
                    trace_id = None
                    if span:
                        trace_id = span.trace_id
                        self._finish_span(span, outcome, timing, attempt + 1)
                        span = NULL_SPAN
                    return WireResult(
                        outcome=outcome,
                        timing=timing,
                        trace_id=trace_id,
                        attempts=attempt + 1,
                    )
                # OVERLOADED: back off and retry on the same connection.
                self.stats.overloaded += 1
                if attempt + 1 < attempts:
                    self.stats.retries += 1
                    await self._sleep(self._backoff_delay(attempt))
        except BaseException:
            if span:
                span.set_attr("outcome", "error")
                span.end()
            raise
        if span:
            span.set_attr("outcome", "overloaded")
            span.set_attr("attempts", attempts)
            span.end()
        raise WireOverloadedError(last_id, attempts)

    async def admin(
        self, query: str, *, limit: Optional[int] = None
    ) -> Dict[str, object]:
        """Run one live-introspection query (protocol v2 only).

        ``query`` is one of :data:`repro.net.protocol.ADMIN_QUERIES`;
        ``limit`` bounds the ``slowest``/``events`` replies.  Returns
        the ADMIN_OK payload (``{"query": ..., "data": ...}``).
        """
        if not self._speaks_v2():
            raise TransportError(
                f"admin queries need a protocol-v2 connection "
                f"(negotiated: {self._negotiated})"
            )
        request_id = self._allocate_id()
        future = self._register(request_id)
        await self._send(
            protocol.encode_frame(
                protocol.MSG_ADMIN,
                request_id,
                protocol.admin_payload(query, limit=limit),
                version=self._frame_version(),
            )
        )
        frame = await self._await_frame(future, request_id)
        if frame.msg_type == protocol.MSG_ERROR:
            raise TransportError(
                f"admin query refused: {frame.payload.get('detail')}"
            )
        if frame.msg_type != protocol.MSG_ADMIN_OK:
            raise ProtocolError(
                f"expected ADMIN_OK, got message type {frame.msg_type:#x}"
            )
        return dict(frame.payload)

    def _speaks_v2(self) -> bool:
        return self._negotiated is not None and self._negotiated >= 2

    def _frame_version(self) -> int:
        """Frame version for outgoing messages: the negotiated one, or
        the lowest we offer while the handshake is still pending."""
        return (
            self._negotiated
            if self._negotiated is not None
            else min(self._versions)
        )

    @staticmethod
    def _finish_span(
        span, outcome: IssuanceOutcome, timing: Optional[ServerTiming], attempts: int
    ) -> None:
        """Close a ``wire_request`` span with verdict + timing attrs."""
        span.set_attr("outcome", "accepted" if outcome.accepted else "rejected")
        span.set_attr("attempts", attempts)
        if timing is not None:
            span.set_attr("server_queue_us", timing.queue_us)
            span.set_attr("server_match_us", timing.match_us)
            span.set_attr("server_admission_us", timing.admission_us)
            span.set_attr("server_revalidate_us", timing.revalidate_us)
            span.set_attr("server_total_us", timing.total_us)
            span.set_attr("shard", timing.shard_id)
            span.set_attr("kernel", timing.kernel)
        span.end()

    async def request_many(
        self, usages: Sequence[object], *, window: int = 64
    ) -> List[IssuanceOutcome]:
        """Pipeline a stream; return verdicts in stream order.

        Keeps up to ``window`` requests outstanding.  Requests that come
        back ``OVERLOADED`` are retried (with the same backoff budget as
        :meth:`request`) *after* the main sweep, so one saturated window
        does not head-of-line-block the rest of the stream.
        """
        if window < 1:
            raise TransportError(f"window must be >= 1, got {window}")
        results: List[Optional[IssuanceOutcome]] = [None] * len(usages)
        retry_queue: List[int] = []
        in_flight: Dict[int, int] = {}  # request id -> stream index
        futures: Dict[int, asyncio.Future] = {}
        spans: Dict[int, object] = {}  # request id -> live wire span

        async def _collect_one() -> None:
            done, _ = await asyncio.wait(
                set(futures.values()),
                return_when=asyncio.FIRST_COMPLETED,
                timeout=self.timeout,
            )
            if not done:
                raise RequestTimeoutError(next(iter(in_flight)), self.timeout)
            for future in done:
                frame = future.result()
                index = in_flight.pop(frame.request_id)
                futures.pop(frame.request_id, None)
                span = spans.pop(frame.request_id, None)
                outcome = self._interpret(frame)
                if outcome is None:
                    self.stats.overloaded += 1
                    retry_queue.append(index)
                    if span is not None:
                        # The post-sweep retry opens its own span (a new
                        # attempt is a new wire exchange).
                        span.set_attr("outcome", "overloaded")
                        span.end()
                else:
                    self.stats.responses += 1
                    results[index] = outcome
                    if span is not None:
                        self._finish_span(
                            span,
                            outcome,
                            protocol.timing_from_payload(frame.payload),
                            1,
                        )

        for index in range(len(usages)):
            while len(in_flight) >= window:
                await _collect_one()
            request_id = self._allocate_id()
            futures[request_id] = self._register(request_id)
            in_flight[request_id] = index
            self.stats.requests += 1
            payload = protocol.usage_to_payload(usages[index])
            tracer = self.tracer
            if tracer is not None:
                span = tracer.start_span(
                    "wire_request", usage_id=usages[index].license_id
                )
                if span:
                    spans[request_id] = span
                    if self._speaks_v2():
                        payload["trace"] = protocol.trace_context_to_payload(
                            TraceContext(span.trace_id, span.span_id)
                        )
            await self._send(
                protocol.encode_frame(
                    protocol.MSG_REQUEST,
                    request_id,
                    payload,
                    version=self._frame_version(),
                )
            )
        while in_flight:
            await _collect_one()
        for index in retry_queue:
            results[index] = await self.request(usages[index])
        missing = sum(1 for outcome in results if outcome is None)
        if missing:
            raise TransportError(
                f"{missing} request(s) completed with no verdict"
            )
        return [outcome for outcome in results if outcome is not None]

    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return base * (0.5 + self._jitter.random())

    def _interpret(self, frame: Frame) -> Optional[IssuanceOutcome]:
        """Map a response frame to a verdict; ``None`` means retryable."""
        if frame.msg_type == protocol.MSG_RESPONSE:
            return protocol.outcome_from_payload(frame.payload)
        if frame.msg_type == protocol.MSG_ERROR:
            code = frame.payload.get("code")
            if code == protocol.ERR_OVERLOADED:
                return None
            raise TransportError(
                f"server error {frame.payload.get('error')!r}: "
                f"{frame.payload.get('detail')}"
            )
        raise ProtocolError(
            f"unexpected message type {frame.msg_type:#x} in response"
        )

    def _allocate_id(self) -> int:
        self._next_id = (self._next_id + 1) % 0xFFFFFFFF
        return self._next_id

    def _register(self, request_id: int) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._waiters[request_id] = future
        return future

    async def _await_frame(
        self, future: asyncio.Future, request_id: int
    ) -> Frame:
        try:
            return await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(request_id, None)
            self.stats.timeouts += 1
            raise RequestTimeoutError(request_id, self.timeout) from None

    async def _send(self, data: bytes) -> None:
        if self._writer is None or self._closed:
            raise TransportError("client is not connected")
        try:
            self._writer.write(data)
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError(f"connection lost mid-send: {exc}") from exc

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await self._reader.read(1 << 16)
                if not chunk:
                    decoder.finish()
                    self._fail_waiters(
                        TransportError("server closed the connection")
                    )
                    return
                for frame in decoder.feed(chunk):
                    waiter = self._waiters.pop(frame.request_id, None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(frame)
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            self._fail_waiters(exc)
        except (ConnectionError, OSError) as exc:
            self._fail_waiters(TransportError(f"connection lost: {exc}"))

    def _fail_waiters(self, exc: Exception) -> None:
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)
        self._waiters.clear()
