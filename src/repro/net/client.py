"""Asyncio admission client: deadlines, bounded retry, pipelining.

:class:`AdmissionClient` speaks the :mod:`repro.net.protocol` framing to
an :class:`~repro.net.server.AdmissionServer`:

* **Handshake.**  :meth:`connect` sends HELLO with every locally
  supported protocol version and records the negotiated one.
* **Deadlines.**  Every request carries a client-side timeout; a server
  that never answers raises :class:`repro.errors.RequestTimeoutError`.
* **Bounded retry with jitter.**  A wire ``OVERLOADED`` error is
  backpressure, not failure: the client sleeps
  ``min(cap, base * 2^attempt) * (0.5 + u)`` with ``u`` drawn from a
  *seeded* ``random.Random`` (the repository's REP001 determinism
  discipline -- no ambient entropy) and retries up to ``retries`` times
  before raising :class:`repro.errors.WireOverloadedError`.  The sleep
  function is injectable so tests run the whole ladder in microseconds.
* **Pipelining.**  :meth:`request_many` keeps up to ``window`` requests
  in flight on one connection; responses are matched back by request id,
  so the server can batch one read chunk's worth of requests through a
  single service drain.

The client is a pure transport too: it never reorders the stream it is
given, so per-group submission order -- the thing verdicts depend on --
is exactly the caller's order.
"""

from __future__ import annotations

import asyncio
import random
from typing import Awaitable, Callable, Dict, List, Optional, Sequence

from repro.errors import (
    ProtocolError,
    RequestTimeoutError,
    TransportError,
    WireOverloadedError,
)
from repro.net import protocol
from repro.net.protocol import Frame, FrameDecoder
from repro.online.session import IssuanceOutcome

__all__ = ["AdmissionClient", "RequestStats"]

#: Injectable sleeper type (tests swap in a no-op recorder).
SleepFn = Callable[[float], Awaitable[None]]


class RequestStats:
    """Mutable counters of one client's traffic (attempts, retries)."""

    __slots__ = ("requests", "responses", "retries", "overloaded", "timeouts")

    def __init__(self) -> None:
        self.requests = 0
        self.responses = 0
        self.retries = 0
        self.overloaded = 0
        self.timeouts = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict."""
        return {name: getattr(self, name) for name in self.__slots__}


class AdmissionClient:
    """One connection to an admission server (see module docstring).

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-attempt deadline in seconds.
    retries:
        Extra attempts after the first when the server answers
        ``OVERLOADED`` (so ``retries=4`` makes at most 5 attempts).
    backoff_base, backoff_cap:
        Exponential backoff parameters (seconds).
    jitter_seed:
        Seed of the backoff jitter's ``random.Random``.
    sleep:
        Awaitable sleeper used between retries (default
        ``asyncio.sleep``; tests inject a recorder).
    client_name:
        Advertised in HELLO, echoed in server logs.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        retries: int = 4,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        jitter_seed: int = 0,
        sleep: Optional[SleepFn] = None,
        client_name: str = "repro-client",
    ):
        if timeout <= 0:
            raise TransportError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise TransportError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.client_name = client_name
        self.stats = RequestStats()
        self._sleep: SleepFn = sleep if sleep is not None else asyncio.sleep
        self._jitter = random.Random(jitter_seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._negotiated: Optional[int] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> Dict[str, object]:
        """Open the connection and negotiate; return the HELLO_OK payload."""
        if self._writer is not None:
            raise TransportError("client is already connected")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())
        request_id = self._allocate_id()
        future = self._register(request_id)
        await self._send(
            protocol.encode_frame(
                protocol.MSG_HELLO,
                request_id,
                protocol.hello_payload(client=self.client_name),
            )
        )
        frame = await self._await_frame(future, request_id)
        if frame.msg_type == protocol.MSG_ERROR:
            raise ProtocolError(
                f"handshake refused: {frame.payload.get('detail')}"
            )
        if frame.msg_type != protocol.MSG_HELLO_OK:
            raise ProtocolError(
                f"expected HELLO_OK, got message type {frame.msg_type:#x}"
            )
        version = frame.payload.get("version")
        if not isinstance(version, int) or version not in protocol.SUPPORTED_VERSIONS:
            raise ProtocolError(f"server negotiated unusable version {version!r}")
        self._negotiated = version
        return dict(frame.payload)

    @property
    def negotiated_version(self) -> Optional[int]:
        """Return the negotiated protocol version (None before connect)."""
        return self._negotiated

    async def close(self) -> None:
        """Close the connection; outstanding requests fail fast."""
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_waiters(TransportError("client closed"))

    async def __aenter__(self) -> "AdmissionClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def ping(self) -> None:
        """Round-trip a PING frame (liveness probe)."""
        request_id = self._allocate_id()
        future = self._register(request_id)
        await self._send(protocol.encode_frame(protocol.MSG_PING, request_id))
        frame = await self._await_frame(future, request_id)
        if frame.msg_type != protocol.MSG_PONG:
            raise ProtocolError(
                f"expected PONG, got message type {frame.msg_type:#x}"
            )

    async def request(self, usage) -> IssuanceOutcome:
        """Submit one usage license; return the server's verdict.

        Retries (with jittered exponential backoff) when the server
        answers ``OVERLOADED``; raises
        :class:`repro.errors.WireOverloadedError` once the retry budget
        is spent and :class:`repro.errors.RequestTimeoutError` when an
        attempt's deadline passes with no response at all.
        """
        payload = protocol.usage_to_payload(usage)
        attempts = self.retries + 1
        last_id = 0
        for attempt in range(attempts):
            request_id = self._allocate_id()
            last_id = request_id
            future = self._register(request_id)
            self.stats.requests += 1
            await self._send(
                protocol.encode_frame(protocol.MSG_REQUEST, request_id, payload)
            )
            frame = await self._await_frame(future, request_id)
            outcome = self._interpret(frame)
            if outcome is not None:
                self.stats.responses += 1
                return outcome
            # OVERLOADED: back off and retry on the same connection.
            self.stats.overloaded += 1
            if attempt + 1 < attempts:
                self.stats.retries += 1
                await self._sleep(self._backoff_delay(attempt))
        raise WireOverloadedError(last_id, attempts)

    async def request_many(
        self, usages: Sequence[object], *, window: int = 64
    ) -> List[IssuanceOutcome]:
        """Pipeline a stream; return verdicts in stream order.

        Keeps up to ``window`` requests outstanding.  Requests that come
        back ``OVERLOADED`` are retried (with the same backoff budget as
        :meth:`request`) *after* the main sweep, so one saturated window
        does not head-of-line-block the rest of the stream.
        """
        if window < 1:
            raise TransportError(f"window must be >= 1, got {window}")
        results: List[Optional[IssuanceOutcome]] = [None] * len(usages)
        retry_queue: List[int] = []
        in_flight: Dict[int, int] = {}  # request id -> stream index
        futures: Dict[int, asyncio.Future] = {}

        async def _collect_one() -> None:
            done, _ = await asyncio.wait(
                set(futures.values()),
                return_when=asyncio.FIRST_COMPLETED,
                timeout=self.timeout,
            )
            if not done:
                raise RequestTimeoutError(next(iter(in_flight)), self.timeout)
            for future in done:
                frame = future.result()
                index = in_flight.pop(frame.request_id)
                futures.pop(frame.request_id, None)
                outcome = self._interpret(frame)
                if outcome is None:
                    self.stats.overloaded += 1
                    retry_queue.append(index)
                else:
                    self.stats.responses += 1
                    results[index] = outcome

        for index in range(len(usages)):
            while len(in_flight) >= window:
                await _collect_one()
            request_id = self._allocate_id()
            futures[request_id] = self._register(request_id)
            in_flight[request_id] = index
            self.stats.requests += 1
            await self._send(
                protocol.encode_frame(
                    protocol.MSG_REQUEST,
                    request_id,
                    protocol.usage_to_payload(usages[index]),
                )
            )
        while in_flight:
            await _collect_one()
        for index in retry_queue:
            results[index] = await self.request(usages[index])
        missing = sum(1 for outcome in results if outcome is None)
        if missing:
            raise TransportError(
                f"{missing} request(s) completed with no verdict"
            )
        return [outcome for outcome in results if outcome is not None]

    def _backoff_delay(self, attempt: int) -> float:
        base = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return base * (0.5 + self._jitter.random())

    def _interpret(self, frame: Frame) -> Optional[IssuanceOutcome]:
        """Map a response frame to a verdict; ``None`` means retryable."""
        if frame.msg_type == protocol.MSG_RESPONSE:
            return protocol.outcome_from_payload(frame.payload)
        if frame.msg_type == protocol.MSG_ERROR:
            code = frame.payload.get("code")
            if code == protocol.ERR_OVERLOADED:
                return None
            raise TransportError(
                f"server error {frame.payload.get('error')!r}: "
                f"{frame.payload.get('detail')}"
            )
        raise ProtocolError(
            f"unexpected message type {frame.msg_type:#x} in response"
        )

    def _allocate_id(self) -> int:
        self._next_id = (self._next_id + 1) % 0xFFFFFFFF
        return self._next_id

    def _register(self, request_id: int) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._waiters[request_id] = future
        return future

    async def _await_frame(
        self, future: asyncio.Future, request_id: int
    ) -> Frame:
        try:
            return await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError:
            self._waiters.pop(request_id, None)
            self.stats.timeouts += 1
            raise RequestTimeoutError(request_id, self.timeout) from None

    async def _send(self, data: bytes) -> None:
        if self._writer is None or self._closed:
            raise TransportError("client is not connected")
        try:
            self._writer.write(data)
            await self._writer.drain()
        except ConnectionError as exc:
            raise TransportError(f"connection lost mid-send: {exc}") from exc

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await self._reader.read(1 << 16)
                if not chunk:
                    decoder.finish()
                    self._fail_waiters(
                        TransportError("server closed the connection")
                    )
                    return
                for frame in decoder.feed(chunk):
                    waiter = self._waiters.pop(frame.request_id, None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(frame)
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            self._fail_waiters(exc)
        except (ConnectionError, OSError) as exc:
            self._fail_waiters(TransportError(f"connection lost: {exc}"))

    def _fail_waiters(self, exc: Exception) -> None:
        for waiter in self._waiters.values():
            if not waiter.done():
                waiter.set_exception(exc)
        self._waiters.clear()
