"""Async load harness: open-loop / closed-loop traffic over the wire.

:class:`LoadGenerator` drives a usage-license stream at an
:class:`~repro.net.server.AdmissionServer` and measures end-to-end
latency the way serving papers do:

* **Closed-loop** -- ``concurrency`` workers, each on its own
  connection, issue back-to-back requests: a worker sends the next
  request only after its previous verdict arrives.  Throughput is
  limited by latency (Little's law); this is the classic saturation
  probe.
* **Open-loop** -- requests are *scheduled* at a fixed arrival rate
  (request ``i`` fires at ``i / rate`` seconds) independent of response
  times, the shape real traffic has.  Slow servers accumulate in-flight
  work instead of silently slowing the generator down, so tail latencies
  include coordinated-omission-free queueing delay.

Measurement discipline (the repository's REP001 rule): the measurement
path reads time only through the injectable ``clock`` callable
(``time.perf_counter`` by default -- monotonic, never wall clock), and
latency percentiles are exact nearest-rank over the recorded samples,
matching :meth:`repro.service.metrics.Histogram.quantile`.  The first
``warmup`` responses are excluded from latency/throughput accounting.

Distributed tracing: pass a :class:`~repro.obs.trace.Tracer` and each
pooled client emits ``wire_request`` spans with propagated contexts.
The server's per-request timing echo (protocol v2) is aggregated into a
per-phase breakdown on :class:`LoadReport` -- client-observed latency
decomposes into wire time plus the server's queue / match / admission /
revalidate phases -- and the top-N slowest measured requests carry their
trace ids as exemplars, ready for ``repro trace-assemble``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import TransportError, WireOverloadedError
from repro.net import protocol
from repro.net.client import AdmissionClient
from repro.obs import quantiles
from repro.obs.trace import Tracer

__all__ = ["LoadGenerator", "LoadReport", "LoadgenConfig", "nearest_rank"]

#: Injectable monotonic clock type.
ClockFn = Callable[[], float]

#: Loadgen traffic modes.
MODE_CLOSED = "closed"
MODE_OPEN = "open"
MODES = (MODE_CLOSED, MODE_OPEN)


def nearest_rank(samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank quantile (the paper-reproduction discipline:
    no interpolation).  A thin wrapper over the shared
    :func:`repro.obs.quantiles.nearest_rank` under the ceil convention,
    keeping this module's historical behavior: empty samples short-
    circuit to 0.0 *before* validation, and a bad ``q`` raises the wire
    layer's :class:`~repro.errors.TransportError`."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise TransportError(f"quantile {q} outside [0, 1]")
    return quantiles.nearest_rank(samples, q, method=quantiles.METHOD_CEIL)


@dataclass(frozen=True)
class LoadgenConfig:
    """Tuning knobs of a :class:`LoadGenerator` run.

    Attributes
    ----------
    mode:
        ``"closed"`` (fixed concurrency, back-to-back) or ``"open"``
        (fixed arrival rate, response-time independent).
    concurrency:
        Worker/connection count (closed loop) or connection-pool size
        (open loop).
    rate:
        Open-loop arrival rate in requests/second (ignored closed-loop).
    warmup:
        Leading responses excluded from the measured window.
    timeout, retries:
        Per-request client deadline and ``OVERLOADED`` retry budget
        (see :class:`~repro.net.client.AdmissionClient`).
    window:
        Max outstanding open-loop requests per pooled connection before
        the scheduler awaits completions (bounds generator memory).
    """

    mode: str = MODE_CLOSED
    concurrency: int = 4
    rate: float = 500.0
    warmup: int = 0
    timeout: float = 10.0
    retries: int = 4
    window: int = 256

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise TransportError(
                f"unknown loadgen mode {self.mode!r}; "
                f"choose from {', '.join(MODES)}"
            )
        if self.concurrency < 1:
            raise TransportError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if self.rate <= 0:
            raise TransportError(f"rate must be positive, got {self.rate}")
        if self.warmup < 0:
            raise TransportError(f"warmup must be >= 0, got {self.warmup}")
        if self.window < 1:
            raise TransportError(f"window must be >= 1, got {self.window}")


@dataclass
class LoadReport:
    """Results of one load run (measured window only, warmup excluded)."""

    mode: str
    concurrency: int
    requests: int
    measured: int
    warmup: int
    accepted: int
    rejected_by_reason: Dict[str, int]
    overloaded_failures: int
    retries: int
    elapsed: float
    rps: float
    latencies: List[float] = field(default_factory=list, repr=False)
    #: Measured responses that carried a server timing echo (v2 only).
    timed: int = 0
    #: Summed server phase micros over the ``timed`` responses.
    phase_totals_us: Dict[str, int] = field(default_factory=dict)
    #: Top-N slowest measured requests: ``{"latency": s, "trace_id": ...}``
    #: (trace ids present only when the run was traced).
    exemplars: List[Dict[str, object]] = field(default_factory=list)

    def quantile(self, q: float) -> float:
        """Nearest-rank latency quantile over the measured window."""
        return nearest_rank(self.latencies, q)

    def phase_means_us(self) -> Dict[str, float]:
        """Mean server phase micros per timed response, plus the ``wire``
        remainder (client-observed latency minus server-side total)."""
        if not self.timed:
            return {}
        means = {
            phase: total / self.timed
            for phase, total in sorted(self.phase_totals_us.items())
        }
        mean_latency_us = (
            sum(self.latencies) / len(self.latencies) * 1e6
            if self.latencies
            else 0.0
        )
        means["wire"] = max(0.0, mean_latency_us - sum(means.values()))
        return means

    def to_json(self) -> Dict[str, object]:
        """Return the machine-readable summary (no raw samples)."""
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "requests": self.requests,
            "measured": self.measured,
            "warmup": self.warmup,
            "accepted": self.accepted,
            "rejected": dict(sorted(self.rejected_by_reason.items())),
            "overloaded_failures": self.overloaded_failures,
            "retries": self.retries,
            "elapsed": self.elapsed,
            "rps": self.rps,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "timed": self.timed,
            "phases_us": self.phase_means_us(),
            "exemplars": [dict(entry) for entry in self.exemplars],
        }

    def render(self) -> str:
        """Return a human-readable summary block."""
        rejected = sum(self.rejected_by_reason.values())
        lines = [
            f"loadgen ({self.mode}-loop, concurrency={self.concurrency}): "
            f"{self.requests} request(s), {self.measured} measured "
            f"({self.warmup} warmup)",
            f"  accepted {self.accepted}, rejected {rejected} "
            + (
                "("
                + ", ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(self.rejected_by_reason.items())
                )
                + ")"
                if rejected
                else ""
            ),
            f"  {self.elapsed:.3f}s elapsed -> {self.rps:,.0f} req/s",
            f"  latency p50 {self.quantile(0.5) * 1e3:.3f}ms, "
            f"p95 {self.quantile(0.95) * 1e3:.3f}ms, "
            f"p99 {self.quantile(0.99) * 1e3:.3f}ms",
            f"  retries {self.retries}, "
            f"overload failures {self.overloaded_failures}",
        ]
        if self.timed:
            means = self.phase_means_us()
            wire = means.pop("wire", 0.0)
            lines.append(
                f"  server phases ({self.timed} timed): "
                + ", ".join(
                    f"{phase.replace('_us', '')} {mean:,.0f}us"
                    for phase, mean in means.items()
                )
                + f"; wire remainder {wire:,.0f}us"
            )
        for entry in self.exemplars:
            latency = float(entry.get("latency", 0.0))
            trace_id = entry.get("trace_id")
            suffix = f" trace={trace_id}" if trace_id else ""
            lines.append(f"  slowest {latency * 1e3:.3f}ms{suffix}")
        return "\n".join(lines)


class _Recorder:
    """Shared accounting across workers (single event loop: no locks)."""

    def __init__(self, warmup: int):
        self.warmup = warmup
        self.seen = 0
        self.accepted = 0
        self.rejected: Dict[str, int] = {}
        self.overloaded_failures = 0
        self.latencies: List[float] = []
        self.measured_started: Optional[float] = None
        self.measured_ended: Optional[float] = None
        self.timed = 0
        self.phase_totals_us: Dict[str, int] = {}
        #: (latency, trace_id) per measured response, for exemplars.
        self.samples: List[tuple] = []

    def record(
        self,
        outcome,
        latency: float,
        started: float,
        ended: float,
        *,
        timing=None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.seen += 1
        if self.seen <= self.warmup:
            return
        if self.measured_started is None:
            self.measured_started = started
        self.measured_ended = ended
        self.latencies.append(latency)
        self.samples.append((latency, trace_id))
        if timing is not None:
            self.timed += 1
            for phase, value in timing.to_dict().items():
                if phase.endswith("_us"):
                    self.phase_totals_us[phase] = (
                        self.phase_totals_us.get(phase, 0) + int(value)
                    )
        if outcome.accepted:
            self.accepted += 1
        else:
            reason = outcome.rejection_reason or "unknown"
            self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_overload_failure(self) -> None:
        self.seen += 1
        self.overloaded_failures += 1


class LoadGenerator:
    """Drive a usage stream at a wire server; see module docstring.

    Parameters
    ----------
    config:
        The traffic shape.
    clock:
        Injectable monotonic clock for every latency measurement
        (default ``time.perf_counter``).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` shared by every pooled
        client: each request emits a ``wire_request`` span whose context
        propagates to the server (protocol v2), and the report's slowest
        exemplars carry trace ids.
    protocol_versions:
        Wire versions the pooled clients offer at HELLO (defaults to
        everything this build speaks; pin to ``(1,)`` to measure the
        legacy no-echo path).
    """

    def __init__(
        self,
        config: Optional[LoadgenConfig] = None,
        *,
        clock: ClockFn = time.perf_counter,
        tracer: Optional[Tracer] = None,
        protocol_versions: Sequence[int] = protocol.SUPPORTED_VERSIONS,
    ):
        self.config = config or LoadgenConfig()
        self.clock = clock
        self.tracer = tracer
        self.protocol_versions = tuple(protocol_versions)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    async def run(self, host: str, port: int, usages: Sequence[object]) -> LoadReport:
        """Run the configured load shape; return the measured report."""
        if self.config.mode == MODE_CLOSED:
            return await self._run_closed(host, port, usages)
        return await self._run_open(host, port, usages)

    def run_sync(self, host: str, port: int, usages: Sequence[object]) -> LoadReport:
        """Blocking convenience wrapper around :meth:`run`."""
        return asyncio.run(self.run(host, port, usages))

    # ------------------------------------------------------------------
    # Closed loop
    # ------------------------------------------------------------------
    async def _run_closed(
        self, host: str, port: int, usages: Sequence[object]
    ) -> LoadReport:
        config = self.config
        recorder = _Recorder(config.warmup)
        clients = [
            self._make_client(host, port, seed_offset)
            for seed_offset in range(config.concurrency)
        ]
        for client in clients:
            await client.connect()
        queue: asyncio.Queue = asyncio.Queue()
        for usage in usages:
            queue.put_nowait(usage)

        async def _worker(client: AdmissionClient) -> None:
            while True:
                try:
                    usage = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = self.clock()
                try:
                    result = await client.call(usage)
                except WireOverloadedError:
                    recorder.record_overload_failure()
                    continue
                ended = self.clock()
                recorder.record(
                    result.outcome,
                    ended - started,
                    started,
                    ended,
                    timing=result.timing,
                    trace_id=result.trace_id,
                )

        run_started = self.clock()
        try:
            await asyncio.gather(*(_worker(client) for client in clients))
        finally:
            for client in clients:
                await client.close()
        run_ended = self.clock()
        retries = sum(client.stats.retries for client in clients)
        return self._report(recorder, len(usages), retries, run_started, run_ended)

    # ------------------------------------------------------------------
    # Open loop
    # ------------------------------------------------------------------
    async def _run_open(
        self, host: str, port: int, usages: Sequence[object]
    ) -> LoadReport:
        config = self.config
        recorder = _Recorder(config.warmup)
        clients = [
            self._make_client(host, port, seed_offset)
            for seed_offset in range(config.concurrency)
        ]
        for client in clients:
            await client.connect()
        max_outstanding = config.window * config.concurrency
        outstanding: set = set()

        async def _fire(index: int, usage: object) -> None:
            client = clients[index % len(clients)]
            started = self.clock()
            try:
                result = await client.call(usage)
            except WireOverloadedError:
                recorder.record_overload_failure()
                return
            ended = self.clock()
            recorder.record(
                result.outcome,
                ended - started,
                started,
                ended,
                timing=result.timing,
                trace_id=result.trace_id,
            )

        run_started = self.clock()
        try:
            for index, usage in enumerate(usages):
                # Open-loop schedule: request i departs at i / rate.
                target = run_started + index / config.rate
                delay = target - self.clock()
                if delay > 0:
                    await asyncio.sleep(delay)
                while len(outstanding) >= max_outstanding:
                    done, outstanding = await asyncio.wait(
                        outstanding, return_when=asyncio.FIRST_COMPLETED
                    )
                task = asyncio.ensure_future(_fire(index, usage))
                outstanding.add(task)
            if outstanding:
                await asyncio.gather(*outstanding)
        finally:
            for client in clients:
                await client.close()
        run_ended = self.clock()
        retries = sum(client.stats.retries for client in clients)
        return self._report(recorder, len(usages), retries, run_started, run_ended)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_client(self, host: str, port: int, seed_offset: int) -> AdmissionClient:
        return AdmissionClient(
            host,
            port,
            timeout=self.config.timeout,
            retries=self.config.retries,
            jitter_seed=seed_offset,
            client_name=f"repro-loadgen-{seed_offset}",
            tracer=self.tracer,
            protocol_versions=self.protocol_versions,
        )

    def _report(
        self,
        recorder: _Recorder,
        requests: int,
        retries: int,
        run_started: float,
        run_ended: float,
    ) -> LoadReport:
        started = (
            recorder.measured_started
            if recorder.measured_started is not None
            else run_started
        )
        ended = (
            recorder.measured_ended
            if recorder.measured_ended is not None
            else run_ended
        )
        elapsed = max(ended - started, 1e-9)
        measured = len(recorder.latencies)
        slowest = sorted(
            recorder.samples, key=lambda sample: -sample[0]
        )[:5]
        exemplars: List[Dict[str, object]] = []
        for latency, trace_id in slowest:
            entry: Dict[str, object] = {"latency": latency}
            if trace_id is not None:
                entry["trace_id"] = trace_id
            exemplars.append(entry)
        return LoadReport(
            mode=self.config.mode,
            concurrency=self.config.concurrency,
            requests=requests,
            measured=measured,
            warmup=self.config.warmup,
            accepted=recorder.accepted,
            rejected_by_reason=dict(recorder.rejected),
            overloaded_failures=recorder.overloaded_failures,
            retries=retries,
            elapsed=elapsed,
            rps=measured / elapsed if measured else 0.0,
            latencies=recorder.latencies,
            timed=recorder.timed,
            phase_totals_us=dict(recorder.phase_totals_us),
            exemplars=exemplars,
        )
