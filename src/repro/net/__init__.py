"""Wire-level serving: a framed admission protocol over asyncio TCP.

Everything below :mod:`repro.service` is in-process; this package puts a
real request/response surface in front of it -- the paper's distributor
node as an *online admission server* (Section 2 topology) rather than a
Python iterable:

* :mod:`repro.net.protocol` -- the framed, versioned binary protocol.
  Pure encode/decode functions plus an incremental :class:`FrameDecoder`;
  no sockets, fully unit-testable.
* :mod:`repro.net.server` -- :class:`AdmissionServer`, an asyncio TCP
  front end wrapping a :class:`repro.service.ValidationService` with a
  bounded in-flight window, wire-level ``OVERLOADED`` backpressure
  (never a dropped connection), and graceful drain.
* :mod:`repro.net.client` -- :class:`AdmissionClient`, an asyncio client
  with deadlines, bounded retry-with-jitter on ``OVERLOADED``, and
  request pipelining.
* :mod:`repro.net.loadgen` -- :class:`LoadGenerator`, an open-loop /
  closed-loop async load harness with nearest-rank latency histograms on
  an injectable clock.

Protocol v2 adds cross-process observability on the same port: REQUEST
frames may carry a trace context (so one request is one trace across
client and server journals -- see :mod:`repro.obs.distrib`), RESPONSE
frames echo a per-phase server timing breakdown, and an ADMIN message
family answers live metrics / health / SLO / slowest / event-tail
queries.  v1 peers negotiate down at HELLO and see none of it.

The wire layer is a pure transport: for the same request stream the
verdicts are byte-identical to in-process admission (the parity tests
pin this down), so every guarantee of the engine seam -- determinism
across shard counts, executors, and kernels -- survives the socket.
"""

from repro.net.client import AdmissionClient, WireResult
from repro.net.loadgen import LoadGenerator, LoadgenConfig, LoadReport
from repro.net.protocol import (
    ADMIN_QUERIES,
    Frame,
    FrameDecoder,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    encode_frame,
)
from repro.net.server import AdmissionServer, WireServerConfig

__all__ = [
    "ADMIN_QUERIES",
    "AdmissionClient",
    "AdmissionServer",
    "Frame",
    "FrameDecoder",
    "LoadGenerator",
    "LoadReport",
    "LoadgenConfig",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "WireServerConfig",
    "WireResult",
    "encode_frame",
]
