"""The framed, versioned admission wire protocol (pure codec layer).

Frame layout (all integers big-endian)::

    offset  size  field
    0       2     magic  b"RV"
    2       1     protocol version (uint8)
    3       1     message type (uint8)
    4       4     request id (uint32)
    8       4     payload length (uint32)
    12      len   payload: UTF-8 JSON object, sorted keys

The payload is JSON rather than a binary schema so frames stay
inspectable with one ``json.loads`` and the codec needs nothing beyond
the stdlib; the *framing* is binary so message boundaries never depend
on the payload's content (no sentinel scanning, no ambiguity about
embedded newlines).  Every function here is pure -- no sockets, no
clocks -- so the whole protocol is unit-testable byte-for-byte.

Message flow::

    client                         server
      | -- HELLO {versions} ------->  |   version negotiation
      | <------ HELLO_OK {version} -- |
      | -- REQUEST {usage} --------->  |   (pipelining: many in flight)
      | <------ RESPONSE {verdict} -- |
      | <------ ERROR {code} -------- |   OVERLOADED keeps the conn alive
      | -- PING -------------------->  |
      | <------ PONG ---------------- |
      | -- ADMIN {query} ----------->  |   v2: live introspection
      | <------ ADMIN_OK {data} ----- |

Version history:

* **v1** -- HELLO / REQUEST / RESPONSE / ERROR / PING as above.
* **v2** -- adds distributed tracing and live introspection.  REQUEST
  frames may carry an optional ``"trace"`` object (trace id + parent
  span id, see :func:`trace_context_to_payload`); RESPONSE frames may
  carry an optional ``"timing"`` object (per-phase server breakdown,
  see :func:`timing_to_payload`); and the ADMIN/ADMIN_OK message family
  queries a live server for metrics, health, SLOs, slowest spans, and
  the event tail.  Both extras are *optional keys on existing frames*,
  so a v1 peer negotiated down via HELLO keeps working unchanged.

Error codes are part of the protocol surface (:data:`ERR_OVERLOADED`
maps the service's :class:`repro.errors.ServiceOverloadedError` onto the
wire; :data:`ERR_SHUTTING_DOWN` is the graceful-drain refusal).  All
decode failures raise :class:`repro.errors.ProtocolError`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.obs.distrib import ServerTiming, TraceContext, validate_trace_id
from repro.geometry.box import Box
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import UsageLicense
from repro.licenses.permission import Permission
from repro.online.session import IssuanceOutcome

__all__ = [
    "ADMIN_QUERIES",
    "ERR_BAD_REQUEST",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_SHUTTING_DOWN",
    "ERR_UNSUPPORTED_VERSION",
    "Frame",
    "FrameDecoder",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "MSG_ADMIN",
    "MSG_ADMIN_OK",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_HELLO_OK",
    "MSG_PING",
    "MSG_PONG",
    "MSG_REQUEST",
    "MSG_RESPONSE",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "admin_payload",
    "admin_query_from_payload",
    "decode_frame",
    "encode_frame",
    "error_payload",
    "hello_payload",
    "negotiate_version",
    "outcome_from_payload",
    "outcome_to_payload",
    "timing_from_payload",
    "timing_to_payload",
    "trace_context_from_payload",
    "trace_context_to_payload",
    "usage_from_payload",
    "usage_to_payload",
]

#: Two magic bytes opening every frame ("Repro Validation").
MAGIC = b"RV"
#: The protocol version this library speaks natively.
PROTOCOL_VERSION = 2
#: Every version this codec can decode (newest preferred in negotiation).
SUPPORTED_VERSIONS: Tuple[int, ...] = (1, 2)
#: Hard ceiling on one frame's payload; a length field beyond this is
#: treated as stream corruption, not an allocation request.
MAX_PAYLOAD_BYTES = 1 << 20

_HEADER = struct.Struct(">2sBBII")
#: Bytes of the fixed frame header preceding the payload.
HEADER_SIZE = _HEADER.size

# ---------------------------------------------------------------------------
# Message types
# ---------------------------------------------------------------------------
MSG_HELLO = 0x01
MSG_HELLO_OK = 0x02
MSG_REQUEST = 0x10
MSG_RESPONSE = 0x11
MSG_ERROR = 0x12
MSG_PING = 0x20
MSG_PONG = 0x21
MSG_ADMIN = 0x30
MSG_ADMIN_OK = 0x31

_KNOWN_TYPES = frozenset(
    {
        MSG_HELLO,
        MSG_HELLO_OK,
        MSG_REQUEST,
        MSG_RESPONSE,
        MSG_ERROR,
        MSG_PING,
        MSG_PONG,
        MSG_ADMIN,
        MSG_ADMIN_OK,
    }
)

# ---------------------------------------------------------------------------
# Error codes carried by MSG_ERROR payloads
# ---------------------------------------------------------------------------
#: Admission refused: the in-flight window or a shard queue is full.
#: Retryable -- the connection stays alive.
ERR_OVERLOADED = 1
#: The request payload did not decode into a valid usage license.
ERR_BAD_REQUEST = 2
#: HELLO offered no version the server speaks.
ERR_UNSUPPORTED_VERSION = 3
#: The server is draining; no new admissions are accepted.
ERR_SHUTTING_DOWN = 4
#: The server hit an unexpected internal failure serving this request.
ERR_INTERNAL = 5

#: Human-readable names, used in error payloads and reports.
ERROR_NAMES: Dict[int, str] = {
    ERR_OVERLOADED: "overloaded",
    ERR_BAD_REQUEST: "bad_request",
    ERR_UNSUPPORTED_VERSION: "unsupported_version",
    ERR_SHUTTING_DOWN: "shutting_down",
    ERR_INTERNAL: "internal",
}


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame."""

    version: int
    msg_type: int
    request_id: int
    payload: Dict[str, object]


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def encode_frame(
    msg_type: int,
    request_id: int,
    payload: Optional[Dict[str, object]] = None,
    *,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one frame to bytes (header + sorted-key JSON payload)."""
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type:#x}")
    if not 0 <= request_id <= 0xFFFFFFFF:
        raise ProtocolError(f"request id {request_id} outside uint32 range")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"cannot encode protocol version {version}")
    try:
        body = json.dumps(
            payload or {}, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable payload: {exc}") from exc
    if len(body) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"payload of {len(body)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame ceiling"
        )
    return _HEADER.pack(MAGIC, version, msg_type, request_id, len(body)) + body


def decode_frame(buffer: bytes) -> Tuple[Optional[Frame], int]:
    """Decode one frame from the head of ``buffer``.

    Returns ``(frame, bytes_consumed)``; ``(None, 0)`` means the buffer
    holds only an *incomplete* frame (feed more bytes and retry).
    Corruption -- bad magic, an unknown version or type, an oversized
    length field, undecodable payload JSON -- raises
    :class:`repro.errors.ProtocolError`.
    """
    if len(buffer) < HEADER_SIZE:
        return None, 0
    magic, version, msg_type, request_id, length = _HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); the stream "
            f"is corrupt or the peer is not speaking this protocol"
        )
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type:#x}")
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame declares a {length}-byte payload, over the "
            f"{MAX_PAYLOAD_BYTES}-byte ceiling -- treating as corruption"
        )
    end = HEADER_SIZE + length
    if len(buffer) < end:
        return None, 0
    raw = buffer[HEADER_SIZE:end]
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return Frame(version, msg_type, request_id, payload), end


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte-chunk stream.

    Feed whatever the transport hands you; complete frames come back in
    order.  Call :meth:`finish` at EOF -- leftover bytes there mean the
    peer died mid-frame, which is a :class:`ProtocolError` (a truncated
    stream must never be silently mistaken for a clean close).

    Examples
    --------
    >>> wire = encode_frame(MSG_PING, 7) + encode_frame(MSG_PING, 8)
    >>> decoder = FrameDecoder()
    >>> [f.request_id for f in decoder.feed(wire[:15])]
    [7]
    >>> [f.request_id for f in decoder.feed(wire[15:])]
    [8]
    >>> decoder.finish()
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame, consumed = decode_frame(bytes(self._buffer))
            if frame is None:
                return frames
            del self._buffer[:consumed]
            frames.append(frame)

    @property
    def pending_bytes(self) -> int:
        """Return how many unconsumed (partial-frame) bytes are buffered."""
        return len(self._buffer)

    def finish(self) -> None:
        """Assert a clean end of stream (no partial frame buffered)."""
        if self._buffer:
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buffer)} "
                f"trailing byte(s)"
            )


# ---------------------------------------------------------------------------
# Version negotiation
# ---------------------------------------------------------------------------
def hello_payload(
    *, client: str = "repro", versions: Sequence[int] = SUPPORTED_VERSIONS
) -> Dict[str, object]:
    """Build the client HELLO payload offering ``versions``."""
    return {"client": client, "versions": sorted(set(versions))}


def negotiate_version(offered: Iterable[object]) -> int:
    """Pick the highest mutually supported version from a HELLO offer."""
    usable = [
        version
        for version in offered
        if isinstance(version, int) and version in SUPPORTED_VERSIONS
    ]
    if not usable:
        raise ProtocolError(
            f"no mutually supported protocol version in offer "
            f"{list(offered)!r} (supported: "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return max(usable)


def error_payload(code: int, detail: str) -> Dict[str, object]:
    """Build a MSG_ERROR payload."""
    return {
        "code": code,
        "error": ERROR_NAMES.get(code, "unknown"),
        "detail": detail,
    }


# ---------------------------------------------------------------------------
# Usage-license codec (schema-free: the box travels extent-by-extent)
# ---------------------------------------------------------------------------
_SCALARS = (int, float, str)


def _extent_to_payload(extent: Union[Interval, DiscreteSet]) -> Dict[str, object]:
    if isinstance(extent, Interval):
        for bound in (extent.low, extent.high):
            if isinstance(bound, bool) or not isinstance(bound, _SCALARS):
                raise ProtocolError(
                    f"interval bound {bound!r} is not wire-encodable "
                    f"(int/float/str only)"
                )
        return {"kind": "interval", "low": extent.low, "high": extent.high}
    atoms = sorted(extent.atoms, key=repr)
    for atom in atoms:
        if isinstance(atom, bool) or not isinstance(atom, _SCALARS):
            raise ProtocolError(
                f"discrete atom {atom!r} is not wire-encodable "
                f"(int/float/str only)"
            )
    return {"kind": "discrete", "atoms": atoms}


def _extent_from_payload(entry: object) -> Union[Interval, DiscreteSet]:
    if not isinstance(entry, dict):
        raise ProtocolError(f"malformed box extent: {entry!r}")
    kind = entry.get("kind")
    if kind == "interval":
        if "low" not in entry or "high" not in entry:
            raise ProtocolError(f"interval extent missing bounds: {entry!r}")
        return Interval(entry["low"], entry["high"])
    if kind == "discrete":
        atoms = entry.get("atoms")
        if not isinstance(atoms, list) or not atoms:
            raise ProtocolError(
                f"discrete extent needs a non-empty atom list: {entry!r}"
            )
        return DiscreteSet(atoms)
    raise ProtocolError(f"unknown extent kind {kind!r}")


def usage_to_payload(usage: UsageLicense) -> Dict[str, object]:
    """Serialize a usage license for a MSG_REQUEST frame.

    The box is shipped extent-by-extent (interval bounds / discrete
    leaf atoms), so -- unlike :func:`repro.licenses.rel.license_to_dict`
    -- no shared :class:`~repro.licenses.schema.ConstraintSchema` object
    is needed on the other side of the wire.
    """
    return {
        "usage_id": usage.license_id,
        "content_id": usage.content_id,
        "permission": usage.permission.value,
        "count": usage.count,
        "box": [_extent_to_payload(extent) for extent in usage.box.extents],
    }


def usage_from_payload(payload: Dict[str, object]) -> UsageLicense:
    """Rebuild the usage license carried by a MSG_REQUEST frame."""
    try:
        usage_id = payload["usage_id"]
        content_id = payload["content_id"]
        permission = Permission(payload["permission"])
        count = payload["count"]
        extents_raw = payload["box"]
    except KeyError as exc:
        raise ProtocolError(f"request payload missing field {exc}") from exc
    except ValueError as exc:
        raise ProtocolError(f"unknown permission in request: {exc}") from exc
    if not isinstance(usage_id, str) or not isinstance(content_id, str):
        raise ProtocolError("usage_id/content_id must be strings")
    if isinstance(count, bool) or not isinstance(count, int):
        raise ProtocolError(f"count must be an integer, got {count!r}")
    if not isinstance(extents_raw, list) or not extents_raw:
        raise ProtocolError("request box must be a non-empty extent list")
    from repro.errors import GeometryError, LicenseError

    try:
        box = Box([_extent_from_payload(entry) for entry in extents_raw])
        return UsageLicense(
            license_id=usage_id,
            content_id=content_id,
            permission=permission,
            box=box,
            count=count,
        )
    except (GeometryError, LicenseError) as exc:
        raise ProtocolError(f"invalid usage license on the wire: {exc}") from exc


# ---------------------------------------------------------------------------
# Verdict codec
# ---------------------------------------------------------------------------
def outcome_to_payload(outcome: IssuanceOutcome) -> Dict[str, object]:
    """Serialize a verdict for a MSG_RESPONSE frame."""
    return {
        "usage_id": outcome.usage_id,
        "count": outcome.count,
        "license_set": list(outcome.license_set),
        "accepted": outcome.accepted,
        "reason": outcome.rejection_reason,
        "detail": outcome.rejection_detail,
    }


def outcome_from_payload(payload: Dict[str, object]) -> IssuanceOutcome:
    """Rebuild the verdict carried by a MSG_RESPONSE frame."""
    try:
        usage_id = payload["usage_id"]
        count = payload["count"]
        license_set = payload["license_set"]
        accepted = payload["accepted"]
    except KeyError as exc:
        raise ProtocolError(f"response payload missing field {exc}") from exc
    if not isinstance(usage_id, str):
        raise ProtocolError("response usage_id must be a string")
    if isinstance(count, bool) or not isinstance(count, int):
        raise ProtocolError(f"response count must be an integer, got {count!r}")
    if not isinstance(accepted, bool):
        raise ProtocolError("response accepted flag must be a boolean")
    if not isinstance(license_set, list) or any(
        isinstance(i, bool) or not isinstance(i, int) for i in license_set
    ):
        raise ProtocolError("response license_set must be a list of ints")
    reason = payload.get("reason")
    detail = payload.get("detail")
    if reason is not None and not isinstance(reason, str):
        raise ProtocolError("response reason must be a string or null")
    if detail is not None and not isinstance(detail, str):
        raise ProtocolError("response detail must be a string or null")
    return IssuanceOutcome(
        usage_id,
        count,
        tuple(license_set),
        accepted,
        reason,
        rejection_detail=detail,
    )


# ---------------------------------------------------------------------------
# Trace-context codec (v2: optional "trace" key on MSG_REQUEST payloads)
# ---------------------------------------------------------------------------
def trace_context_to_payload(context: TraceContext) -> Dict[str, object]:
    """Serialize a trace context for embedding under ``payload["trace"]``."""
    return {"trace_id": context.trace_id, "span_id": context.span_id}


def trace_context_from_payload(
    payload: Dict[str, object]
) -> Optional[TraceContext]:
    """Extract the optional trace context from a MSG_REQUEST payload.

    Returns ``None`` when the request carries no ``"trace"`` key (v1
    clients, or tracing disabled).  A present-but-malformed context --
    wrong container type, missing ids, ids that fail
    :func:`repro.obs.distrib.validate_trace_id` -- raises
    :class:`~repro.errors.ProtocolError`: a corrupt context must be
    rejected loudly, never silently dropped into the journals.
    """
    entry = payload.get("trace")
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise ProtocolError(
            f"trace context must be a JSON object, got {type(entry).__name__}"
        )
    try:
        trace_id = entry["trace_id"]
        span_id = entry["span_id"]
    except KeyError as exc:
        raise ProtocolError(f"trace context missing field {exc}") from exc
    return TraceContext(
        validate_trace_id(trace_id, label="trace_id"),
        validate_trace_id(span_id, label="span_id"),
    )


# ---------------------------------------------------------------------------
# Server-timing codec (v2: optional "timing" key on MSG_RESPONSE payloads)
# ---------------------------------------------------------------------------
_TIMING_PHASES = ("queue_us", "match_us", "admission_us", "revalidate_us")


def timing_to_payload(timing: ServerTiming) -> Dict[str, object]:
    """Serialize the per-request server-side phase breakdown."""
    return timing.to_dict()


def timing_from_payload(payload: Dict[str, object]) -> Optional[ServerTiming]:
    """Extract the optional timing echo from a MSG_RESPONSE payload.

    Returns ``None`` when absent (v1 servers, or timing echo disabled);
    raises :class:`~repro.errors.ProtocolError` on a malformed entry.
    """
    entry = payload.get("timing")
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise ProtocolError(
            f"timing echo must be a JSON object, got {type(entry).__name__}"
        )
    values: Dict[str, int] = {}
    for phase in _TIMING_PHASES:
        value = entry.get(phase)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ProtocolError(
                f"timing phase {phase} must be a non-negative integer, "
                f"got {value!r}"
            )
        values[phase] = value
    shard_id = entry.get("shard_id")
    if isinstance(shard_id, bool) or not isinstance(shard_id, int):
        raise ProtocolError(f"timing shard_id must be an integer, got {shard_id!r}")
    kernel = entry.get("kernel")
    if not isinstance(kernel, str) or not kernel:
        raise ProtocolError(f"timing kernel must be a non-empty string, got {kernel!r}")
    return ServerTiming(shard_id=shard_id, kernel=kernel, **values)


# ---------------------------------------------------------------------------
# Admin codec (v2: MSG_ADMIN / MSG_ADMIN_OK live-introspection family)
# ---------------------------------------------------------------------------
#: Queries a live server answers over the admission port.
ADMIN_QUERIES: Tuple[str, ...] = ("metrics", "health", "slo", "slowest", "events")

#: Ceiling on admin "limit" parameters (slowest-N / event-tail length),
#: so one query cannot ask the server to serialize an unbounded reply.
MAX_ADMIN_LIMIT = 1000


def admin_payload(query: str, *, limit: Optional[int] = None) -> Dict[str, object]:
    """Build a MSG_ADMIN payload for ``query``.

    ``limit`` bounds list-shaped replies (top-N slowest spans, event
    tail); it is meaningless for the snapshot queries and rejected there.
    """
    if query not in ADMIN_QUERIES:
        raise ProtocolError(
            f"unknown admin query {query!r} "
            f"(expected one of: {', '.join(ADMIN_QUERIES)})"
        )
    payload: Dict[str, object] = {"query": query}
    if limit is not None:
        if isinstance(limit, bool) or not isinstance(limit, int) or limit < 1:
            raise ProtocolError(f"admin limit must be a positive integer, got {limit!r}")
        if limit > MAX_ADMIN_LIMIT:
            raise ProtocolError(
                f"admin limit {limit} exceeds the ceiling of {MAX_ADMIN_LIMIT}"
            )
        if query not in ("slowest", "events"):
            raise ProtocolError(f"admin query {query!r} takes no limit")
        payload["limit"] = limit
    return payload


def admin_query_from_payload(
    payload: Dict[str, object]
) -> Tuple[str, Optional[int]]:
    """Validate a MSG_ADMIN payload; returns ``(query, limit)``.

    Round-trips :func:`admin_payload` and raises
    :class:`~repro.errors.ProtocolError` on anything else.
    """
    query = payload.get("query")
    if not isinstance(query, str) or query not in ADMIN_QUERIES:
        raise ProtocolError(
            f"unknown admin query {query!r} "
            f"(expected one of: {', '.join(ADMIN_QUERIES)})"
        )
    limit = payload.get("limit")
    if limit is not None:
        if isinstance(limit, bool) or not isinstance(limit, int) or limit < 1:
            raise ProtocolError(f"admin limit must be a positive integer, got {limit!r}")
        if limit > MAX_ADMIN_LIMIT:
            raise ProtocolError(
                f"admin limit {limit} exceeds the ceiling of {MAX_ADMIN_LIMIT}"
            )
        if query not in ("slowest", "events"):
            raise ProtocolError(f"admin query {query!r} takes no limit")
    return query, limit
