"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GeometryError(ReproError):
    """Raised for invalid geometric objects or operations.

    Examples: an interval whose lower bound exceeds its upper bound, or a
    box operation between boxes of different dimensionality.
    """


class DimensionMismatchError(GeometryError):
    """Raised when two geometric objects have incompatible dimensions."""


class SchemaError(ReproError):
    """Raised when license constraints do not match their declared schema."""


class LicenseError(ReproError):
    """Raised for malformed licenses (bad counts, unknown permissions...)."""


class RegionError(LicenseError):
    """Raised for unknown region names or malformed region taxonomies."""


class LogError(ReproError):
    """Raised for malformed log records or inconsistent log operations."""


class ValidationError(ReproError):
    """Raised when a validation routine is invoked with inconsistent inputs.

    Note: a *failed* validation (an aggregate constraint violation) is not an
    error -- it is reported through :class:`repro.validation.report.ValidationReport`.
    This exception covers misuse, e.g. an aggregate array whose length does
    not match the number of licenses in the tree.
    """


class GroupingError(ReproError):
    """Raised for inconsistent group structures (e.g. a log record whose
    license set spans two disconnected groups, which Theorem 1 forbids)."""


class SerializationError(ReproError):
    """Raised when (de)serializing licenses or logs fails."""


class WorkloadError(ReproError):
    """Raised for invalid workload-generator configurations."""


class AnalysisError(ReproError):
    """Raised for misused analysis/experiment utilities (bad repeat
    counts, malformed experiment sweeps)."""


class LintError(ReproError):
    """Raised by :mod:`repro.lint` for misconfiguration: malformed
    ``[tool.reprolint]`` tables, unknown rule ids, duplicate rule
    registrations.  Rule *violations* are not errors -- they are
    reported as :class:`repro.lint.findings.Finding` records."""


class ServiceError(ReproError):
    """Raised for misconfigured or misused validation services
    (:mod:`repro.service`): bad shard/batch parameters, submissions to a
    closed service, unknown executor backends."""


class RunRegistryError(ReproError):
    """Raised by :mod:`repro.obs.runs` for run-registry failures:
    malformed or truncated registry records, unknown run ids or kinds,
    attribution over records that share no comparable fields."""


class ProtocolError(ReproError):
    """Raised by :mod:`repro.net.protocol` for malformed wire traffic:
    bad magic bytes, truncated or oversized frames, unsupported protocol
    versions, undecodable payloads.  A peer speaking the protocol
    correctly never triggers this -- it marks byte-level corruption or a
    version mismatch, both of which poison the framing and require the
    connection to be torn down."""


class TransportError(ReproError):
    """Raised by :mod:`repro.net.client` for transport-level failures:
    the connection dropped mid-request, the server closed during drain,
    or a request could not be completed after the configured retries."""


class RequestTimeoutError(TransportError):
    """Raised when a wire request exceeded its client-side deadline.

    Carries the request id and the timeout so callers (and the load
    generator's accounting) can distinguish a slow server from a dead
    one."""

    def __init__(self, request_id: int, timeout: float):
        super().__init__(
            f"request {request_id} timed out after {timeout:.3f}s"
        )
        self.request_id = request_id
        self.timeout = timeout


class WireOverloadedError(TransportError):
    """Raised when the server answered ``OVERLOADED`` on every attempt.

    The wire-level face of :class:`ServiceOverloadedError`: the server
    kept the connection alive but refused admission because its in-flight
    window (or a shard queue) was full, and the client's bounded
    retry-with-jitter budget ran out."""

    def __init__(self, request_id: int, attempts: int):
        super().__init__(
            f"request {request_id} still overloaded after {attempts} attempt(s)"
        )
        self.request_id = request_id
        self.attempts = attempts


class ServiceOverloadedError(ServiceError):
    """Raised when a shard's bounded admission queue is full.

    Explicit backpressure: the caller must drain (or slow down) and retry
    rather than let queues grow without bound.  Carries the shard id and
    its queue depth so clients and load-shedding policies can react.
    """

    def __init__(self, shard_id: int, depth: int):
        super().__init__(
            f"shard {shard_id} queue is full ({depth} pending requests); "
            f"drain the service before submitting more"
        )
        self.shard_id = shard_id
        self.depth = depth
