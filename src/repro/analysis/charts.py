"""Terminal (ASCII) charts for experiment series.

Offline environments have no plotting stack, but the paper's figures are
log-scale line charts whose *shape* is the result.  A horizontal
log-scale bar chart per data point makes that shape visible directly in
the terminal::

    Figure 7 (log scale)
    N=8   baseline  |############                448.3 µs
          grouped   |#####                        64.8 µs
    N=18  baseline  |######################        1.03 s
          grouped   |######                      166.5 µs
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import format_seconds

__all__ = ["bar_chart", "timing_chart"]

_BAR_WIDTH = 40


def _bar(value: float, low: float, high: float, log_scale: bool) -> str:
    """Render one bar scaled into ``[1, _BAR_WIDTH]`` characters."""
    if value <= 0 or high <= low:
        return "#"
    if log_scale:
        fraction = (math.log10(value) - math.log10(low)) / (
            math.log10(high) - math.log10(low)
        )
    else:
        fraction = (value - low) / (high - low)
    fraction = min(max(fraction, 0.0), 1.0)
    return "#" * max(1, round(fraction * _BAR_WIDTH))


def bar_chart(
    series: "Dict[str, Sequence[Tuple[object, float]]]",
    title: str = "",
    log_scale: bool = True,
    value_format=format_seconds,
    x_prefix: str = "N=",
) -> str:
    """Render named series of ``(x, value)`` points as grouped bars.

    All series must share the same x values (missing points are skipped).
    Non-positive values render as a minimal bar with their raw value.
    ``x_prefix`` labels the x column (``N=`` for problem sizes; run
    trend charts pass ``""`` and use run ids as x values directly).
    """
    xs: List[object] = []
    for points in series.values():
        for x, _value in points:
            if x not in xs:
                xs.append(x)
    values = [
        value
        for points in series.values()
        for _x, value in points
        if value > 0 and value == value  # filter NaN and non-positives
    ]
    if not values:
        return title or "(no data)"
    low, high = min(values), max(values)
    label_width = max(len(name) for name in series)
    x_width = max(6, max(len(f"{x_prefix}{x}") for x in xs) + 1)
    lines = [f"{title} ({'log' if log_scale else 'linear'} scale)"] if title else []
    for x in xs:
        first = True
        for name, points in series.items():
            match = [value for px, value in points if px == x]
            if not match:
                continue
            value = match[0]
            prefix = (
                f"{x_prefix + str(x):<{x_width}}" if first else " " * x_width
            )
            first = False
            if value != value:  # NaN
                lines.append(f"{prefix}{name:<{label_width}}  (not run)")
                continue
            bar = _bar(value, low, high, log_scale)
            lines.append(
                f"{prefix}{name:<{label_width}}  |{bar:<{_BAR_WIDTH}} "
                f"{value_format(value)}"
            )
    return "\n".join(lines)


def timing_chart(rows, title: str = "Figure 7") -> str:
    """Convenience: render Figure-7-shaped rows (baseline vs proposed)."""
    series = {
        "baseline V_T": [(row.n, row.baseline_vt) for row in rows],
        "proposed V_T+D_T": [(row.n, row.grouped_total) for row in rows],
    }
    return bar_chart(series, title=title, log_scale=True)
