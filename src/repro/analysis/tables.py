"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers keep the formatting consistent across figures and the CLI.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Render a duration with a sensible unit (s / ms / µs)."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} µs"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["n", "gain"], [[5, 3.1]], title="Eq. 3"))
    Eq. 3
    n | gain
    --+-----
    5 | 3.1
    """
    cells = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[column]) for row in cells)) if cells else len(header)
        for column, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
