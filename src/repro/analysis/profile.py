"""Workload profiling: the shape statistics behind the experiments.

Understanding *why* the grouped validation wins on a workload requires a
few distributions the raw figures do not show: how large the instance
match sets are, how issuances spread over groups, and how bushy the
validation tree gets.  :func:`profile_workload` gathers them into one
report used by examples and by anyone tuning the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.logstore.log import ValidationLog
from repro.licenses.pool import LicensePool
from repro.validation.tree import ValidationTree

__all__ = ["WorkloadProfile", "profile_workload"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape statistics of one (pool, log) workload."""

    n_licenses: int
    n_records: int
    total_counts: int
    distinct_sets: int
    #: Histogram of |S| over log records: {set size: record count}.
    set_size_histogram: Dict[int, int]
    #: Group sizes (ascending discovery order).
    group_sizes: Tuple[int, ...]
    #: Issued counts landing in each group, aligned with group_sizes.
    counts_per_group: Tuple[int, ...]
    tree_nodes: int
    tree_depth: int

    @property
    def mean_set_size(self) -> float:
        """Return the average match-set size over records."""
        if self.n_records == 0:
            return 0.0
        weighted = sum(size * count for size, count in self.set_size_histogram.items())
        return weighted / self.n_records

    @property
    def multi_license_fraction(self) -> float:
        """Return the fraction of records matching 2+ licenses -- the
        regime where the paper's problem is non-trivial."""
        if self.n_records == 0:
            return 0.0
        multi = sum(
            count for size, count in self.set_size_histogram.items() if size >= 2
        )
        return multi / self.n_records

    def render(self) -> str:
        """Return a compact multi-line human-readable summary."""
        histogram = ", ".join(
            f"|S|={size}: {count}"
            for size, count in sorted(self.set_size_histogram.items())
        )
        lines = [
            f"licenses: {self.n_licenses}; groups: {len(self.group_sizes)} "
            f"{list(self.group_sizes)}",
            f"records: {self.n_records} ({self.total_counts} counts, "
            f"{self.distinct_sets} distinct sets)",
            f"match-set sizes: {histogram or '(none)'}",
            f"mean |S|: {self.mean_set_size:.2f}; multi-license records: "
            f"{100 * self.multi_license_fraction:.1f}%",
            f"counts per group: {list(self.counts_per_group)}",
            f"validation tree: {self.tree_nodes} nodes, depth {self.tree_depth}",
        ]
        return "\n".join(lines)


def profile_workload(pool: LicensePool, log: ValidationLog) -> WorkloadProfile:
    """Profile a pool + log pair (see :class:`WorkloadProfile`)."""
    structure = form_groups(OverlapGraph.from_pool(pool))
    lookup = structure.group_lookup()
    histogram: Dict[int, int] = {}
    counts_per_group = [0] * structure.count
    for record in log:
        size = len(record.license_set)
        histogram[size] = histogram.get(size, 0) + 1
        group_id = lookup[next(iter(record.license_set))]
        counts_per_group[group_id] += record.count
    tree = ValidationTree.from_log(log)
    return WorkloadProfile(
        n_licenses=len(pool),
        n_records=len(log),
        total_counts=log.total_count,
        distinct_sets=log.distinct_sets,
        set_size_histogram=histogram,
        group_sizes=structure.sizes,
        counts_per_group=tuple(counts_per_group),
        tree_nodes=tree.node_count(),
        tree_depth=tree.depth(),
    )
