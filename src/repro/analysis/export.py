"""CSV export of experiment series.

The ASCII tables are for eyeballs; these writers produce the same series
as CSV so results can be re-plotted or diffed across machines.  One writer
per figure, all sharing :func:`write_csv`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.analysis.experiments import (
    Fig6Row,
    Fig7Row,
    Fig8Row,
    Fig9Row,
    Fig10Row,
)

__all__ = [
    "write_csv",
    "figure6_csv",
    "figure7_csv",
    "figure8_csv",
    "figure9_csv",
    "figure10_csv",
]

PathLike = Union[str, Path]


def write_csv(path: PathLike, headers: Sequence[str], rows: Iterable[Sequence]) -> int:
    """Write rows to ``path``; return the number of data rows written."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def figure6_csv(rows: List[Fig6Row], path: PathLike) -> int:
    """Export the Figure 6 series."""
    return write_csv(
        path,
        ["n", "groups", "group_sizes"],
        [[row.n, row.groups, "+".join(map(str, row.sizes))] for row in rows],
    )


def figure7_csv(rows: List[Fig7Row], path: PathLike) -> int:
    """Export the Figure 7 series (seconds)."""
    return write_csv(
        path,
        ["n", "baseline_vt_s", "grouped_vt_s", "division_dt_s", "grouped_total_s"],
        [
            [row.n, row.baseline_vt, row.grouped_vt, row.division_dt, row.grouped_total]
            for row in rows
        ],
    )


def figure8_csv(rows: List[Fig8Row], path: PathLike) -> int:
    """Export the Figure 8 series."""
    return write_csv(
        path,
        ["n", "theoretical_gain", "experimental_gain"],
        [[row.n, row.theoretical_gain, row.experimental_gain] for row in rows],
    )


def figure9_csv(rows: List[Fig9Row], path: PathLike) -> int:
    """Export the Figure 9 series (seconds)."""
    return write_csv(
        path,
        ["n", "insert_one_s", "division_dt_s", "ratio"],
        [[row.n, row.insert_one, row.division_dt, row.ratio] for row in rows],
    )


def figure10_csv(rows: List[Fig10Row], path: PathLike) -> int:
    """Export the Figure 10 series."""
    return write_csv(
        path,
        [
            "n",
            "original_nodes",
            "divided_nodes",
            "original_bytes",
            "divided_bytes",
        ],
        [
            [
                row.n,
                row.original.total_nodes,
                row.divided.total_nodes,
                row.original.model_bytes,
                row.divided.model_bytes,
            ]
            for row in rows
        ],
    )
