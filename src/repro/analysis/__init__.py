"""Experiment harness: timing, storage accounting, figure regeneration."""

from repro.analysis.experiments import (
    DEFAULT_BASELINE_CAP,
    DEFAULT_SWEEP,
    ExperimentSuite,
    Fig6Row,
    Fig7Row,
    Fig8Row,
    Fig9Row,
    Fig10Row,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
)
from repro.analysis.charts import bar_chart, timing_chart
from repro.analysis.export import (
    figure10_csv,
    figure6_csv,
    figure7_csv,
    figure8_csv,
    figure9_csv,
    write_csv,
)
from repro.analysis.profile import WorkloadProfile, profile_workload
from repro.analysis.storage import (
    NODE_COST_BYTES,
    StorageStats,
    grouped_storage,
    python_tree_bytes,
    tree_storage,
)
from repro.analysis.tables import format_seconds, render_table
from repro.analysis.timing import Stopwatch, time_callable

__all__ = [
    "DEFAULT_BASELINE_CAP",
    "DEFAULT_SWEEP",
    "ExperimentSuite",
    "Fig10Row",
    "Fig6Row",
    "Fig7Row",
    "Fig8Row",
    "Fig9Row",
    "NODE_COST_BYTES",
    "StorageStats",
    "Stopwatch",
    "WorkloadProfile",
    "bar_chart",
    "timing_chart",
    "figure10_csv",
    "figure6_csv",
    "figure7_csv",
    "figure8_csv",
    "figure9_csv",
    "profile_workload",
    "write_csv",
    "format_seconds",
    "grouped_storage",
    "python_tree_bytes",
    "render_figure10",
    "render_figure6",
    "render_figure7",
    "render_figure8",
    "render_figure9",
    "render_table",
    "time_callable",
    "tree_storage",
]
