"""Storage accounting for validation trees (Figure 10).

The paper's storage claim: dividing the validation tree adds only the ``g``
new root nodes -- subtrees are shared -- so the divided trees occupy
essentially the same space as the original.  We report both a node count
and an estimated byte footprint using a fixed per-node cost model, plus the
actual interpreter-level footprint via :func:`sys.getsizeof` for the
curious.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable

from repro.core.grouped_tree import GroupedValidationTree
from repro.validation.tree import TreeNode, ValidationTree

__all__ = ["StorageStats", "tree_storage", "grouped_storage", "NODE_COST_BYTES"]

#: Cost model for one tree node in a compact (C-like) implementation:
#: 4-byte license index + 8-byte count + 8-byte child-list pointer.
NODE_COST_BYTES = 20


@dataclass(frozen=True)
class StorageStats:
    """Storage footprint of one or more validation trees."""

    #: Non-root nodes (the paper's storage unit).
    nodes: int
    #: Root nodes (1 for the original tree, g after division).
    roots: int

    @property
    def total_nodes(self) -> int:
        """Return nodes + roots."""
        return self.nodes + self.roots

    @property
    def model_bytes(self) -> int:
        """Return the cost-model footprint (``NODE_COST_BYTES`` per node,
        roots included)."""
        return self.total_nodes * NODE_COST_BYTES


def _python_bytes(nodes: Iterable[TreeNode]) -> int:
    """Actual interpreter footprint of the node objects and child lists."""
    total = 0
    for node in nodes:
        total += sys.getsizeof(node) + sys.getsizeof(node.children)
    return total


def tree_storage(tree: ValidationTree) -> StorageStats:
    """Measure a single (original) validation tree."""
    return StorageStats(nodes=tree.node_count(), roots=1)


def grouped_storage(grouped: GroupedValidationTree) -> StorageStats:
    """Measure the divided trees: same shared nodes, ``g`` roots."""
    return StorageStats(
        nodes=grouped.node_count(), roots=grouped.structure.count
    )


def python_tree_bytes(tree: ValidationTree) -> int:
    """Interpreter-level byte footprint of one tree (root included)."""
    return _python_bytes([tree.root]) + _python_bytes(tree.iter_nodes())
