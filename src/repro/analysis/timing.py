"""Lightweight timing utilities for the experiment harness.

The figure-level experiments (:mod:`repro.analysis.experiments`) need
wall-clock measurements of multi-second pipelines; pytest-benchmark handles
the statistically careful micro-benchmarks in ``benchmarks/``.  These
helpers cover the former.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple

from repro.errors import AnalysisError

__all__ = ["Stopwatch", "time_callable"]


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Stopwatch() as watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_callable(
    fn: Callable[[], Any], repeats: int = 1
) -> Tuple[float, Any]:
    """Run ``fn`` ``repeats`` times; return ``(best seconds, last result)``.

    Taking the minimum across repeats filters scheduler noise, the standard
    practice for wall-clock micro-timing.
    """
    if repeats < 1:
        raise AnalysisError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result
