"""Experiment runners regenerating every figure of the paper's Section 5.

Each ``figure*`` function sweeps the number of redistribution licenses
``N``, produces one row per ``N``, and the companion ``render_*`` helper
prints the same series the paper plots:

* Figure 6 -- number of groups vs N.
* Figure 7 -- validation time: original tree (``V_T`` baseline) vs the
  proposed grouped method (``V_T`` and ``V_T + D_T``).
* Figure 8 -- theoretical (Eq. 3) vs experimental gain.
* Figure 9 -- single-record insertion time vs tree-division time ``D_T``.
* Figure 10 -- storage: original tree vs divided trees.

Scale note (see EXPERIMENTS.md): the baseline checks ``2^N - 1`` equations,
so pure-Python sweeps cap the baseline N lower than the paper's Java N=35;
the exponential-vs-flat *shape* is the reproduced result.  Default sweeps
use a reduced log volume (``records_per_license``) so the whole suite runs
in minutes; pass ``None`` to use the paper's full 630·N records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.storage import (
    StorageStats,
    grouped_storage,
    tree_storage,
)
from repro.analysis.tables import format_seconds, render_table
from repro.analysis.timing import time_callable
from repro.core.gain import equations_without_grouping
from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.core.validator import GroupedValidator
from repro.logstore.record import LogRecord
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import GeneratedWorkload, WorkloadGenerator

__all__ = [
    "ExperimentSuite",
    "Fig6Row",
    "Fig7Row",
    "Fig8Row",
    "Fig9Row",
    "Fig10Row",
    "DEFAULT_SWEEP",
    "DEFAULT_BASELINE_CAP",
]

#: N values swept by default; chosen so the exponential baseline stays
#: tractable in pure Python while the shape is unmistakable.
DEFAULT_SWEEP: Tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16)

#: Largest N for which the 2^N-equation baseline is run by default.
DEFAULT_BASELINE_CAP = 18


@dataclass(frozen=True)
class Fig6Row:
    """One point of Figure 6."""

    n: int
    groups: int
    sizes: Tuple[int, ...]


@dataclass(frozen=True)
class Fig7Row:
    """One point of Figure 7 (seconds)."""

    n: int
    baseline_vt: float
    grouped_vt: float
    division_dt: float

    @property
    def grouped_total(self) -> float:
        """Return ``V_T + D_T`` for the proposed method."""
        return self.grouped_vt + self.division_dt


@dataclass(frozen=True)
class Fig8Row:
    """One point of Figure 8."""

    n: int
    theoretical_gain: float
    experimental_gain: float


@dataclass(frozen=True)
class Fig9Row:
    """One point of Figure 9 (seconds)."""

    n: int
    insert_one: float
    division_dt: float

    @property
    def ratio(self) -> float:
        """Return D_T as a multiple of one record insertion (the paper
        reports 3-4x)."""
        if self.insert_one == 0:
            return float("inf")
        return self.division_dt / self.insert_one


@dataclass(frozen=True)
class Fig10Row:
    """One point of Figure 10."""

    n: int
    original: StorageStats
    divided: StorageStats


class ExperimentSuite:
    """Workload-caching runner for all Section 5 experiments.

    Parameters
    ----------
    n_values:
        The sweep over the number of redistribution licenses.
    seed:
        Workload RNG seed.
    records_per_license:
        Log records per license (paper: 630).  The default 60 keeps the
        full suite interactive; results scale linearly in tree size.
    baseline_cap:
        Do not run the ``2^N`` baseline beyond this N (rows above the cap
        report ``float('nan')`` baseline times and gain).
    config_overrides:
        Extra :class:`WorkloadConfig` fields applied to every generated
        workload (e.g. a sparser ``license_extent_fraction`` for the
        Figure 6 sweep).
    """

    def __init__(
        self,
        n_values: Sequence[int] = DEFAULT_SWEEP,
        seed: int = 0,
        records_per_license: Optional[int] = 60,
        baseline_cap: int = DEFAULT_BASELINE_CAP,
        config_overrides: Optional[Dict[str, object]] = None,
    ):
        self.n_values = tuple(n_values)
        self.seed = seed
        self.records_per_license = records_per_license
        self.baseline_cap = baseline_cap
        self.config_overrides = dict(config_overrides or {})
        self._workloads: Dict[int, GeneratedWorkload] = {}

    # ------------------------------------------------------------------
    # Workload management
    # ------------------------------------------------------------------
    def workload(self, n: int) -> GeneratedWorkload:
        """Return the (cached) workload for ``n`` licenses."""
        if n not in self._workloads:
            records = (
                None
                if self.records_per_license is None
                else self.records_per_license * n
            )
            config = WorkloadConfig(
                n_licenses=n,
                seed=self.seed,
                n_records=records,
                **self.config_overrides,  # type: ignore[arg-type]
            )
            self._workloads[n] = WorkloadGenerator(config).generate()
        return self._workloads[n]

    # ------------------------------------------------------------------
    # Figure 6: number of groups vs N
    # ------------------------------------------------------------------
    def figure6(self) -> List[Fig6Row]:
        """Group counts across the sweep."""
        rows = []
        for n in self.n_values:
            workload = self.workload(n)
            structure = form_groups(OverlapGraph.from_pool(workload.pool))
            rows.append(Fig6Row(n, structure.count, structure.sizes))
        return rows

    # ------------------------------------------------------------------
    # Figure 7: validation time
    # ------------------------------------------------------------------
    def figure7(self, repeats: int = 1) -> List[Fig7Row]:
        """Validation-time comparison across the sweep."""
        rows = []
        for n in self.n_values:
            workload = self.workload(n)
            aggregates = workload.aggregates
            boxes = workload.pool.boxes()

            if n <= self.baseline_cap:
                baseline_tree = ValidationTree.from_log(workload.log)
                validator = TreeValidator(aggregates)
                baseline_vt, _ = time_callable(
                    lambda: validator.validate(baseline_tree), repeats
                )
            else:
                baseline_vt = float("nan")

            # D_T: group identification (overlap graph + DFS) + division +
            # remapping, exactly the paper's definition.  A fresh tree is
            # built outside the timed region (construction is C_T, Fig. 9).
            def divide():
                tree = ValidationTree.from_log(workload.log)
                grouped_validator = GroupedValidator(boxes, aggregates)
                return grouped_validator.divide(tree)

            tree_for_division = ValidationTree.from_log(workload.log)

            def timed_division():
                grouped_validator = GroupedValidator(boxes, aggregates)
                return grouped_validator.divide(tree_for_division)

            division_dt, grouped = time_callable(timed_division, 1)
            grouped_vt, _ = time_callable(lambda: grouped.validate(), repeats)
            rows.append(Fig7Row(n, baseline_vt, grouped_vt, division_dt))
        return rows

    # ------------------------------------------------------------------
    # Figure 8: theoretical vs experimental gain
    # ------------------------------------------------------------------
    def figure8(self, fig7_rows: Optional[List[Fig7Row]] = None) -> List[Fig8Row]:
        """Gain comparison; reuses Figure 7 timings when provided."""
        timings = fig7_rows if fig7_rows is not None else self.figure7()
        rows = []
        for timing in timings:
            workload = self.workload(timing.n)
            validator = GroupedValidator(workload.pool.boxes(), workload.aggregates)
            if timing.grouped_vt > 0 and timing.baseline_vt == timing.baseline_vt:
                experimental = timing.baseline_vt / timing.grouped_vt
            else:
                experimental = float("nan")
            rows.append(Fig8Row(timing.n, validator.theoretical_gain, experimental))
        return rows

    # ------------------------------------------------------------------
    # Figure 9: insertion vs division time
    # ------------------------------------------------------------------
    def figure9(self, insert_samples: int = 200) -> List[Fig9Row]:
        """Single-record insertion time vs division time ``D_T``."""
        rows = []
        for n in self.n_values:
            workload = self.workload(n)
            tree = ValidationTree.from_log(workload.log)
            records = [workload.log[i % len(workload.log)]
                       for i in range(insert_samples)]

            def insert_all(records: List[LogRecord] = records) -> None:
                for record in records:
                    tree.insert(record)

            total_insert, _ = time_callable(insert_all, 1)
            insert_one = total_insert / max(len(records), 1)

            fresh = ValidationTree.from_log(workload.log)
            boxes = workload.pool.boxes()
            aggregates = workload.aggregates

            def timed_division():
                grouped_validator = GroupedValidator(boxes, aggregates)
                return grouped_validator.divide(fresh)

            division_dt, _ = time_callable(timed_division, 1)
            rows.append(Fig9Row(n, insert_one, division_dt))
        return rows

    # ------------------------------------------------------------------
    # Figure 10: storage
    # ------------------------------------------------------------------
    def figure10(self) -> List[Fig10Row]:
        """Storage before and after division."""
        rows = []
        for n in self.n_values:
            workload = self.workload(n)
            tree = ValidationTree.from_log(workload.log)
            original = tree_storage(tree)
            validator = GroupedValidator(workload.pool.boxes(), workload.aggregates)
            grouped = validator.divide(tree)
            rows.append(Fig10Row(n, original, grouped_storage(grouped)))
        return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_figure6(rows: List[Fig6Row]) -> str:
    """Render Figure 6 as a table."""
    return render_table(
        ["N", "groups", "group sizes"],
        [[row.n, row.groups, "+".join(map(str, row.sizes))] for row in rows],
        title="Figure 6: number of groups vs number of redistribution licenses",
    )


def render_figure7(rows: List[Fig7Row]) -> str:
    """Render Figure 7 as a table."""
    return render_table(
        ["N", "baseline V_T", "proposed V_T", "D_T", "proposed V_T+D_T"],
        [
            [
                row.n,
                format_seconds(row.baseline_vt),
                format_seconds(row.grouped_vt),
                format_seconds(row.division_dt),
                format_seconds(row.grouped_total),
            ]
            for row in rows
        ],
        title="Figure 7: validation time, original tree vs proposed method",
    )


def render_figure8(rows: List[Fig8Row]) -> str:
    """Render Figure 8 as a table."""
    return render_table(
        ["N", "theoretical gain (Eq. 3)", "experimental gain"],
        [
            [row.n, f"{row.theoretical_gain:.2f}", f"{row.experimental_gain:.2f}"]
            for row in rows
        ],
        title="Figure 8: theoretical vs experimental gain",
    )


def render_figure9(rows: List[Fig9Row]) -> str:
    """Render Figure 9 as a table."""
    return render_table(
        ["N", "insert 1 record", "division D_T", "D_T / insert"],
        [
            [
                row.n,
                format_seconds(row.insert_one),
                format_seconds(row.division_dt),
                f"{row.ratio:.1f}x",
            ]
            for row in rows
        ],
        title="Figure 9: insertion time vs division time",
    )


def render_figure10(rows: List[Fig10Row]) -> str:
    """Render Figure 10 as a table."""
    return render_table(
        ["N", "original nodes", "divided nodes", "original bytes", "divided bytes"],
        [
            [
                row.n,
                row.original.total_nodes,
                row.divided.total_nodes,
                row.original.model_bytes,
                row.divided.model_bytes,
            ]
            for row in rows
        ],
        title="Figure 10: storage, original tree vs divided trees",
    )
