"""Grouping composed with the zeta-transform engine.

The paper's grouping is *engine-agnostic*: Theorem 2 shrinks the equation
set regardless of how each group's equations are evaluated.  This module
composes it with the dense subset-sum engine
(:class:`~repro.validation.zeta.ZetaValidator`) instead of the validation
tree: per group, remap the aggregated log counts into local masks and run
the ``O(N_k · 2^{N_k})`` DP.

Two payoffs over the ungrouped zeta engine:

* the dense tables shrink from ``2^N`` to ``Σ 2^{N_k}`` entries, lifting
  the memory cap -- N = 60 licenses in six groups of ten need six 1 KiB
  tables instead of an impossible 2^60 one;
* each table transform is ``N_k`` passes instead of ``N``.

Verdicts always match the grouped tree validator (tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence

from repro.errors import GroupingError, ValidationError
from repro.core.grouping import GroupStructure, form_groups
from repro.core.overlap import OverlapGraph
from repro.core.remap import globalize_mask, position_array, remapped_aggregates
from repro.geometry.box import Box
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.validation.report import ValidationReport, Violation, make_report
from repro.validation.zeta import ZetaValidator

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.instrument import Instrumentation

__all__ = ["GroupedZetaValidator"]


class GroupedZetaValidator:
    """Per-group dense subset-sum validation (grouping x zeta).

    Examples
    --------
    >>> from repro.workloads.scenarios import example1, example1_log
    >>> validator = GroupedZetaValidator.from_pool(example1().pool)
    >>> validator.validate(example1_log()).is_valid
    True
    """

    engine_name = "grouped-zeta"

    def __init__(self, boxes: Sequence[Box], aggregates: Sequence[int]):
        if len(boxes) != len(aggregates):
            raise ValidationError(
                f"{len(boxes)} boxes but {len(aggregates)} aggregates"
            )
        if not boxes:
            raise ValidationError("need at least one redistribution license")
        self._aggregates = list(aggregates)
        self._structure: GroupStructure = form_groups(OverlapGraph.from_boxes(boxes))
        self._positions = [
            position_array(self._structure, k)
            for k in range(self._structure.count)
        ]
        self._engines = [
            ZetaValidator(remapped_aggregates(aggregates, self._structure, k))
            for k in range(self._structure.count)
        ]

    @classmethod
    def from_pool(cls, pool: LicensePool) -> "GroupedZetaValidator":
        """Build from a license pool."""
        return cls(pool.boxes(), pool.aggregate_array())

    @property
    def structure(self) -> GroupStructure:
        """Return the group partition."""
        return self._structure

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _split_counts(
        self, counts_by_set: Dict[FrozenSet[int], int]
    ) -> List[Dict[int, int]]:
        """Remap global set counts into per-group local-mask counts."""
        per_group: List[Dict[int, int]] = [
            {} for _ in range(self._structure.count)
        ]
        for license_set, count in counts_by_set.items():
            group_ids = {self._structure.group_of(index) for index in license_set}
            if len(group_ids) != 1:
                raise GroupingError(
                    f"set {sorted(license_set)} spans groups "
                    f"{sorted(g + 1 for g in group_ids)} (Corollary 1.1 violated)"
                )
            group_id = group_ids.pop()
            position = self._positions[group_id]
            local_mask = 0
            for index in license_set:
                local_mask |= 1 << (position[index] - 1)
            bucket = per_group[group_id]
            bucket[local_mask] = bucket.get(local_mask, 0) + count
        return per_group

    def validate(
        self,
        log: ValidationLog,
        instrumentation: Optional["Instrumentation"] = None,
    ) -> ValidationReport:
        """Validate a log: one dense DP per group."""
        return self.validate_counts(
            log.counts_by_set(), instrumentation=instrumentation
        )

    def validate_counts(
        self,
        counts_by_set: Dict[FrozenSet[int], int],
        instrumentation: Optional["Instrumentation"] = None,
    ) -> ValidationReport:
        """Validate aggregated ``{set: count}`` data.

        ``instrumentation`` (optional
        :class:`repro.obs.instrument.Instrumentation`) receives one
        ``group_validate`` span per group with its ``equations_checked``
        count -- the per-group breakdown of the paper's Eq. 3 gain.
        """
        per_group = self._split_counts(counts_by_set)
        violations: List[Violation] = []
        checked = 0
        for group_id, (engine, counts) in enumerate(zip(self._engines, per_group)):
            if instrumentation is None:
                report = engine.validate_counts(counts)
            else:
                with instrumentation.span(
                    "group_validate", group_id=group_id
                ) as span:
                    report = engine.validate_counts(counts)
                    span.set_attr(
                        "equations_checked", report.equations_checked
                    )
                instrumentation.count(
                    "equations_checked", report.equations_checked
                )
            checked += report.equations_checked
            for violation in report.violations:
                global_mask = globalize_mask(
                    self._structure, group_id, violation.mask
                )
                violations.append(
                    Violation(global_mask, violation.lhs, violation.rhs)
                )
        return make_report(self.engine_name, checked, violations)
