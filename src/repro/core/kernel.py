"""Dense incremental headroom kernel: O(1) admission, delta revalidation.

The serving hot path asks two questions per admitted request:

* *headroom* -- ``min_{S ⊇ T} (A⟨S⟩ - C⟨S⟩)`` for the matched set ``T``
  (how many more counts the set can absorb), and
* *revalidation* -- "does every equation of this group still hold?"
  after the batch's inserts.

The validation-tree path answers both by enumeration: one tree-walk
subset sum per superset for headroom (``2^{N_k - |T|}`` walks) and a
full Algorithm 2 sweep (``2^{N_k} - 1`` walks) per dirty revalidation.
This module trades memory for that time.  Per group it keeps two dense
NumPy int64 tables over the group's local universe, indexed by mask:

``C[mask]``
    The subset-sums ``C⟨mask⟩`` -- the LHS of every validation equation,
    i.e. the log's counts already pushed through the zeta transform
    (:mod:`repro.validation.zeta` computes the same table in bulk).
``H[mask]``
    The superset-minimum of the slack plane:
    ``H[mask] = min_{S ⊇ mask} (A⟨S⟩ - C⟨S⟩)``.

With ``H`` resident, admission headroom is **one array lookup** and
group validity is ``N_k`` singleton lookups (the singleton cones cover
every non-empty mask).  Violation extraction -- needed only when a
check fails -- recovers the exact offending masks from the ``A - C``
plane (``C > A`` positions), byte-identical to the tree sweep.

Incremental updates stay cheap because counts only ever grow, so slack
only ever shrinks.  When a record with local mask ``T`` and ``count``
lands:

1. ``C[S] += count`` for every ``S ⊇ T`` -- a vectorized add over the
   ``2^{N_k - |T|}`` masks of ``T``'s superset cone.
2. ``H[S] -= count`` for every ``S ⊇ T``: each such ``S`` has its whole
   superset cone inside ``T``'s, so *every* equation under its min
   tightened by exactly ``count`` -- the min drops by ``count``, no
   transform rebuild needed.
3. For masks outside the cone the exact fixup is
   ``H[m] = min(H[m], H[m | T])`` (their cone splits into an unchanged
   part, already folded into the old ``H[m]``, and the part inside
   ``T``'s cone, whose min is the freshly updated ``H[m | T]``).  One
   in-place minimum sweep per bit of ``T`` realizes it: sweeping bits
   ``b ∈ T`` in any order folds ``min_{U ⊆ T∖m} H[m | U]`` into
   ``H[m]``, and the intermediate ``U ⊂ T∖m`` terms are dominated by
   the ``U = ∅`` term, leaving exactly ``min(H[m], H[m | T])``.

Steps 1-2 touch only the restricted cone (``O(2^{N_k - |T|})`` masks,
plus ``O(N_k · 2^{N_k - |T|})`` to materialize its index vector on a
cache miss); step 3 is ``|T|`` vectorized half-table minimums
(``O(|T| · 2^{N_k - 1})`` word ops at memory-bandwidth speed).  The
tree walk this replaces pays a pointer-chasing tree traversal *per
superset equation*, so the kernel wins by orders of magnitude on
paper-scale groups -- see ``benchmarks/bench_kernel.py``.

Memory is the limit: three resident int64 tables (``C``, ``H``, and the
static RHS ``A``) cost ``3 * 8 * 2^{N_k}`` bytes, so construction
refuses universes beyond a cap (default
:data:`repro.validation.limits.DEFAULT_KERNEL_CAP`, ~24 MiB/group);
:class:`repro.core.incremental.GroupSlice` falls back to the tree walk
above it.  REP007 note: this module is an allowlisted enumeration
primitive -- the full-lattice sweeps live *here* so the serving layers
above never re-grow a ``2^N`` loop.
"""

from __future__ import annotations

import os
from itertools import count as _monotonic_count
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.errors import ValidationError
from repro.validation.limits import (
    DEFAULT_KERNEL_CAP,
    DENSE_TABLE_MAX_N,
    dense_table_bytes,
)
from repro.validation.report import Violation
from repro.validation.zeta import subset_sums_dense

__all__ = [
    "DenseHeadroomKernel",
    "KERNEL_DENSE",
    "KERNEL_NAMES",
    "KERNEL_TREE",
    "KernelPlane",
    "KernelPlaneAllocator",
]

#: Strategy name for the existing validation-tree walk (the default).
KERNEL_TREE = "tree"
#: Strategy name for the dense table kernel of this module.
KERNEL_DENSE = "dense"
#: Recognized ``kernel=`` strategy names, in preference order.
KERNEL_NAMES = (KERNEL_TREE, KERNEL_DENSE)

#: Bound on the cone-index cache (one int64 vector of ``2^{N - |T|}``
#: entries per distinct inserted mask; admission traffic repeats masks
#: heavily, so a small cache removes the index-materialization cost).
_CONE_CACHE_LIMIT = 64

_I64 = np.int64

#: Process-unique suffix source for shared-memory plane names (a plain
#: monotonic counter -- no ambient entropy; uniqueness across processes
#: comes from the creator's pid baked into the name).
_PLANE_SEQUENCE = _monotonic_count()


class KernelPlane:
    """One named dense ``int64`` plane: heap- or shared-memory-backed.

    The resident-worker executor (:mod:`repro.service.resident`) needs
    the dense kernel's ``C``/``H`` tables visible from two processes at
    once: the worker that owns the shard *writes* them, while the
    coordinator serves admin/monitor reads (kernel occupancy, future
    snapshots) zero-copy -- without round-tripping the worker.  A plane
    wraps either a plain heap array (``shared=False``, the default used
    everywhere workers are off) or a ``multiprocessing.shared_memory``
    segment exposed as the same ndarray view, so
    :class:`DenseHeadroomKernel` is oblivious to the backing.

    Lifecycle discipline (see DESIGN.md "Serving architecture"): the
    *creator* (the coordinator) both closes and unlinks; *attachers*
    (workers) only close.  Cross-process reads of a live plane may
    observe a torn batch mid-update -- fine for monitoring, never used
    for admission decisions (those happen in the owning worker only).
    """

    def __init__(
        self,
        array: NDArray[np.int64],
        *,
        name: Optional[str] = None,
        segment: Optional[shared_memory.SharedMemory] = None,
        owner: bool = False,
    ):
        self.ndarray = array
        self.name = name
        self._segment = segment
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def heap(cls, length: int) -> "KernelPlane":
        """Allocate a plain in-process plane (the no-workers fallback)."""
        return cls(np.zeros(length, dtype=_I64))

    @classmethod
    def create(cls, name: str, length: int) -> "KernelPlane":
        """Create (and own) a shared-memory plane, zero-filled."""
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=length * 8
        )
        array = np.ndarray((length,), dtype=_I64, buffer=segment.buf)
        array[:] = 0
        return cls(array, name=name, segment=segment, owner=True)

    @classmethod
    def attach(cls, name: str, length: int) -> "KernelPlane":
        """Attach to an existing shared plane by name (worker side)."""
        segment = shared_memory.SharedMemory(name=name)
        array = np.ndarray((length,), dtype=_I64, buffer=segment.buf)
        return cls(array, name=name, segment=segment, owner=False)

    # ------------------------------------------------------------------
    # Accessors / lifecycle
    # ------------------------------------------------------------------
    @property
    def shared(self) -> bool:
        """Return whether this plane lives in shared memory."""
        return self._segment is not None

    @property
    def length(self) -> int:
        """Return the number of int64 slots."""
        return int(self.ndarray.shape[0])

    def close(self) -> None:
        """Drop this process's mapping (idempotent).  The creator also
        unlinks the segment so the name disappears system-wide."""
        if self._closed or self._segment is None:
            self._closed = True
            return
        self._closed = True
        # The ndarray view borrows the segment's buffer; drop it first
        # so SharedMemory.close() does not complain about exports.
        self.ndarray = np.array((), dtype=_I64)
        self._segment.close()
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segment = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        backing = f"shm:{self.name}" if self.shared else "heap"
        return f"KernelPlane({backing}, length={self.length})"


class KernelPlaneAllocator:
    """Allocate named ``C``/``H`` plane pairs for a service's dense groups.

    The coordinator owns one allocator per resident-backed service: it
    creates uniquely named shared segments (``repro-<pid>-<seq>-g<id>-c``
    etc.), hands the ndarray views into the coordinator's own
    :class:`DenseHeadroomKernel` instances, publishes the names through
    :class:`repro.service.shard.ShardSpec` so workers can attach, and
    unlinks everything on :meth:`close`.  With ``shared=False`` it
    degrades to plain heap planes -- the zero-cost path used when no
    worker processes exist.
    """

    def __init__(self, shared: bool = True):
        self._shared = shared
        self._prefix = f"repro-{os.getpid()}-{next(_PLANE_SEQUENCE)}"
        self._pairs: Dict[int, Tuple[KernelPlane, KernelPlane]] = {}
        self._closed = False

    @property
    def shared(self) -> bool:
        """Return whether pairs are backed by shared memory."""
        return self._shared

    def pair_for(
        self, group_id: int, length: int
    ) -> Tuple[KernelPlane, KernelPlane]:
        """Create (once) and return the ``(C, H)`` planes for a group."""
        if self._closed:
            raise ValidationError("plane allocator is closed")
        existing = self._pairs.get(group_id)
        if existing is not None:
            return existing
        if self._shared:
            pair = (
                KernelPlane.create(f"{self._prefix}-g{group_id}-c", length),
                KernelPlane.create(f"{self._prefix}-g{group_id}-h", length),
            )
        else:
            pair = (KernelPlane.heap(length), KernelPlane.heap(length))
        self._pairs[group_id] = pair
        return pair

    def names(self) -> Dict[int, Tuple[str, str]]:
        """Return ``{group_id: (C_name, H_name)}`` for shared pairs
        (empty when heap-backed -- nothing to attach to)."""
        return {
            group_id: (c.name, h.name)
            for group_id, (c, h) in sorted(self._pairs.items())
            if c.name is not None and h.name is not None
        }

    def close(self) -> None:
        """Close and (as creator) unlink every allocated plane."""
        if self._closed:
            return
        self._closed = True
        for c_plane, h_plane in self._pairs.values():
            c_plane.close()
            h_plane.close()


class DenseHeadroomKernel:
    """Resident subset-sum / superset-min tables for one group.

    All masks are *local*: bit ``j - 1`` encodes the group's local
    license ``j`` (the caller owns the global->local remapping, exactly
    as with the validation-tree path).

    Examples
    --------
    >>> kernel = DenseHeadroomKernel([100, 50, 60])
    >>> kernel.headroom(0b011)          # min slack over {1,2}'s cone
    150
    >>> kernel.insert(0b011, 140)       # returns cone masks touched
    2
    >>> kernel.headroom(0b011)
    10
    >>> kernel.is_valid()
    True
    >>> kernel.insert(0b100, 70)        # overshoot license 3 (A = 60)
    4
    >>> kernel.is_valid()
    False
    >>> [(v.mask, v.lhs, v.rhs) for v in kernel.violations()]
    [(4, 70, 60)]
    """

    engine_name = "dense-kernel"

    def __init__(
        self,
        aggregates: Sequence[int],
        max_n: int = DEFAULT_KERNEL_CAP,
        planes: Optional[Tuple[KernelPlane, KernelPlane]] = None,
        adopt: bool = False,
    ):
        if not aggregates:
            raise ValidationError("aggregate array must be non-empty")
        if any(a < 0 for a in aggregates):
            raise ValidationError(
                f"aggregates must be non-negative: {list(aggregates)!r}"
            )
        if adopt and planes is None:
            raise ValidationError(
                "adopt=True requires externally allocated planes"
            )
        n = len(aggregates)
        cap = min(max_n, DENSE_TABLE_MAX_N)
        if n > cap:
            raise ValidationError(
                f"N={n} exceeds the dense-kernel cap max_n={cap} "
                f"({dense_table_bytes(n, tables=3)} bytes of resident "
                f"tables needed); use the validation-tree walk instead"
            )
        self._n = n
        self._size = 1 << n
        self._universe = self._size - 1
        #: RHS plane ``A⟨mask⟩`` (static): dense subset sums over the
        #: singleton aggregates, shared arithmetic with the zeta engine.
        #: Always heap-local -- it never mutates, so every process can
        #: rebuild it identically from the aggregates alone.
        self._rhs: NDArray[np.int64] = subset_sums_dense(
            {1 << j: int(aggregates[j]) for j in range(n)}, n
        )
        self._counts: NDArray[np.int64]
        self._head: NDArray[np.int64]
        if planes is not None:
            c_plane, h_plane = planes
            if c_plane.length != self._size or h_plane.length != self._size:
                raise ValidationError(
                    f"plane length {c_plane.length}/{h_plane.length} does "
                    f"not match dense table size {self._size} (N={n})"
                )
            #: LHS plane ``C⟨mask⟩`` and headroom plane ``H`` live in the
            #: caller-allocated planes (possibly shared memory).  With
            #: ``adopt=True`` the current contents ARE the live state --
            #: the attach side of a resident worker whose coordinator
            #: already replayed the preload log into the tables.
            self._counts = c_plane.ndarray
            self._head = h_plane.ndarray
            if not adopt:
                self._counts[:] = 0
                self._head[:] = self._rhs
                self._superset_min_inplace(self._head)
        else:
            #: LHS plane ``C⟨mask⟩`` (subset sums of the log, current).
            self._counts = np.zeros(self._size, dtype=_I64)
            #: Headroom plane ``H[mask] = min_{S ⊇ mask} (A⟨S⟩ - C⟨S⟩)``.
            self._head = self._rhs.copy()
            self._superset_min_inplace(self._head)
        self._records = 0
        self._masks_touched_total = 0
        self._last_update_touched = 0
        self._cone_cache: Dict[int, NDArray[np.int64]] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Return the local universe size ``N_k``."""
        return self._n

    @property
    def records_inserted(self) -> int:
        """Return how many records this kernel has absorbed."""
        return self._records

    @property
    def masks_touched_total(self) -> int:
        """Return the cumulative count of cone entries updated by
        :meth:`insert` -- the kernel's actual incremental work, the
        quantity the per-update span attributes report."""
        return self._masks_touched_total

    @property
    def last_update_touched(self) -> int:
        """Return the cone size (``2^{N_k - |T|}``) of the last insert."""
        return self._last_update_touched

    @property
    def table_bytes(self) -> int:
        """Return the resident size of the three dense tables."""
        return dense_table_bytes(self._n, tables=3)

    def occupancy(self) -> Dict[str, int]:
        """Return live occupancy read straight off the planes.

        ``min_slack`` is ``H[∅]`` (the global equation-slack minimum)
        and ``total_count`` is ``C⟨universe⟩`` (every admitted count).
        On shared planes this is the coordinator's zero-copy monitor
        read: values may be torn mid-batch (monitoring only, never an
        admission input -- see the class docstring of
        :class:`KernelPlane`).
        """
        return {
            "n": self._n,
            "min_slack": int(self._head[0]),
            "total_count": int(self._counts[self._universe]),
            "table_bytes": self.table_bytes,
        }

    def lhs(self, mask: int) -> int:
        """Return the current subset-sum ``C⟨mask⟩`` (equation LHS)."""
        self._check_mask(mask)
        return int(self._counts[mask])

    def rhs(self, mask: int) -> int:
        """Return the aggregate sum ``A⟨mask⟩`` (equation RHS)."""
        self._check_mask(mask)
        return int(self._rhs[mask])

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, mask: int, count: int) -> int:
        """Fold one record (local ``mask``, ``count``) into the tables.

        Returns the number of cone masks touched (``2^{N_k - |T|}``),
        which observability layers attribute to the update span.  Only
        the superset cone of ``mask`` is rewritten in the ``C``/``H``
        planes (plus the per-bit minimum broadcast that re-establishes
        the superset-min invariant outside the cone -- see the module
        docstring for the exactness argument).
        """
        self._check_mask(mask)
        if count < 0:
            raise ValidationError(f"count must be non-negative, got {count}")
        cone = self._cone(mask)
        self._counts[cone] += count
        # Every equation under H[S ⊇ mask]'s min tightened by exactly
        # `count`, so the cone's minima drop by `count` -- no rebuild.
        self._head[cone] -= count
        # Exact fixup for masks outside the cone:
        #   H[m] = min(H[m], H[m | mask])
        # realized as one in-place half-table minimum per bit of `mask`.
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            bit = low.bit_length() - 1
            shaped = self._head.reshape(
                1 << (self._n - bit - 1), 2, 1 << bit
            )
            np.minimum(shaped[:, 0, :], shaped[:, 1, :], out=shaped[:, 0, :])
        touched = int(cone.size)
        self._records += 1
        self._masks_touched_total += touched
        self._last_update_touched = touched
        return touched

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def headroom(self, mask: int) -> int:
        """Return the largest extra count issuable against ``mask`` --
        ``min_{S ⊇ mask} (A⟨S⟩ - C⟨S⟩)`` floored at 0 -- as a single
        ``H`` lookup."""
        self._check_mask(mask)
        slack = int(self._head[mask])
        return slack if slack > 0 else 0

    def headroom_many(self, masks: Sequence[int]) -> List[int]:
        """Vectorized :meth:`headroom` for a whole admission batch.

        One fancy-indexed gather replaces per-request Python dispatch;
        the returned list matches ``masks`` positionally.
        """
        if not masks:
            return []
        index = np.asarray(masks, dtype=_I64)
        if index.min() < 1 or index.max() > self._universe:
            raise ValidationError(
                f"mask batch {list(masks)!r} outside universe N={self._n}"
            )
        return [int(v) for v in np.maximum(self._head[index], 0)]

    def min_slack(self) -> int:
        """Return ``min`` slack over every non-empty mask.

        The ``N_k`` singleton cones cover all non-empty masks, so this
        is ``min_j H[1 << j]`` -- the whole-group feasibility probe.
        """
        singletons = self._head[[1 << j for j in range(self._n)]]
        return int(singletons.min())

    def is_valid(self) -> bool:
        """Return whether every validation equation currently holds."""
        return self.min_slack() >= 0

    def violations(self) -> List[Violation]:
        """Return every violated equation, sorted by mask.

        Extraction sweeps the dense ``A - C`` plane -- the only
        full-lattice read on this path, and it runs *only* after a
        failed :meth:`is_valid` probe.
        """
        bad = np.nonzero(self._counts > self._rhs)[0]
        return [
            Violation(int(m), int(self._counts[m]), int(self._rhs[m]))
            for m in bad
            if m  # mask 0 is the empty set: C⟨∅⟩ = 0 ≤ 0 always
        ]

    def validate(self) -> Tuple[List[Violation], int]:
        """Return ``(violations, equations_examined)``.

        The probe costs ``N_k`` singleton lookups; only a failed probe
        pays the ``2^{N_k} - 1``-mask extraction sweep.  The second
        element reports the *actual* comparisons made so the monitor's
        Equation-3 efficiency indicator reflects real work rather than
        the tree path's as-if sweep.
        """
        if self.is_valid():
            return [], self._n
        return self.violations(), self._n + self._universe

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_mask(self, mask: int) -> None:
        if mask == 0 or mask & ~self._universe:
            raise ValidationError(
                f"mask {mask:#b} out of range for N={self._n}"
            )

    def _cone(self, mask: int) -> NDArray[np.int64]:
        """Return the index vector of ``mask``'s superset cone.

        Entry ``f`` of the vector is ``mask`` with the ``f``-th free-bit
        pattern distributed over the universe bits outside ``mask``, so
        the vector enumerates exactly ``{S : S ⊇ mask}`` in an order
        where compact index ``f`` preserves the superset lattice of the
        free bits.  Cached per mask (bounded): admission streams repeat
        matched sets heavily.
        """
        cached = self._cone_cache.get(mask)
        if cached is not None:
            return cached
        free_positions = [
            j for j in range(self._n) if not mask & (1 << j)
        ]
        compact = np.arange(1 << len(free_positions), dtype=_I64)
        spread = np.full(compact.shape, mask, dtype=_I64)
        for offset, position in enumerate(free_positions):
            spread |= ((compact >> offset) & 1) << position
        if len(self._cone_cache) >= _CONE_CACHE_LIMIT:
            self._cone_cache.pop(next(iter(self._cone_cache)))
        self._cone_cache[mask] = spread
        return spread

    def _superset_min_inplace(self, table: NDArray[np.int64]) -> None:
        """Fold ``table`` into its superset-minimum transform:
        ``table[mask] = min_{S ⊇ mask} table_in[S]`` -- the min-analogue
        of the zeta transform's per-bit plane sweep."""
        for bit in range(self._n):
            shaped = table.reshape(1 << (self._n - bit - 1), 2, 1 << bit)
            np.minimum(shaped[:, 0, :], shaped[:, 1, :], out=shaped[:, 0, :])

    def check_invariants(self) -> None:
        """Recompute both tables from scratch and compare (debug oracle).

        Sweeps the full lattice, so it lives behind the REP007
        allowlist with the rest of this module; tests call it after
        adversarial insert interleavings.

        Raises
        ------
        ValidationError
            If either resident table drifted from its definition.
        """
        slack = self._rhs - self._counts
        expected = slack.copy()
        self._superset_min_inplace(expected)
        drift = np.nonzero(expected != self._head)[0]
        if drift.size:
            mask = int(drift[0])
            raise ValidationError(
                f"dense kernel H-table drift at mask {mask:#b}: "
                f"stored {int(self._head[mask])}, "
                f"recomputed {int(expected[mask])}"
            )
        for mask in range(1, 1 << self._n):
            low = mask & -mask
            rest = mask ^ low
            if int(self._rhs[mask]) != int(self._rhs[rest]) + int(
                self._rhs[low]
            ):
                raise ValidationError(
                    f"dense kernel RHS table drift at mask {mask:#b}"
                )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DenseHeadroomKernel(n={self._n}, records={self._records}, "
            f"bytes={self.table_bytes})"
        )
