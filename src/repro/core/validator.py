"""End-to-end grouped validation (the paper's proposed method).

:class:`GroupedValidator` is the library's headline API.  Given a pool of
redistribution licenses it runs, once, the geometric pipeline of Section 3:

1. overlap graph over the license hyper-rectangles (Section 3.2),
2. group formation by DFS (Algorithm 3),

and then, per offline validation run over a log:

3. build the original validation tree (Algorithm 1),
4. divide it into per-group trees (Algorithm 4),
5. remap indexes and aggregate arrays (Algorithm 5),
6. validate each group with Algorithm 2.

Total equations checked: ``Σ_k (2^{N_k} - 1)`` instead of ``2^N - 1``.
"""

from __future__ import annotations

import logging
from typing import Iterable, List, Optional, Sequence

from repro.errors import GroupingError, ValidationError
from repro.core.gain import (
    equations_with_grouping,
    equations_without_grouping,
    gain_for_structure,
)
from repro.core.grouped_tree import GroupedValidationTree
from repro.core.grouping import GroupStructure, form_groups
from repro.core.overlap import OverlapGraph
from repro.geometry.box import Box
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.validation.capacity import headroom as _headroom
from repro.validation.bitset import mask_from_indexes
from repro.validation.report import ValidationReport
from repro.validation.tree import ValidationTree

__all__ = ["GroupedValidator"]

logger = logging.getLogger(__name__)


class GroupedValidator:
    """Grouped (divided-tree) offline aggregate validation.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1, example1_log
    >>> scenario = example1()
    >>> validator = GroupedValidator.from_pool(scenario.pool)
    >>> validator.structure.sizes       # groups {1,2,4} and {3,5}
    (3, 2)
    >>> round(validator.theoretical_gain, 1)
    3.1
    >>> validator.validate(example1_log()).is_valid
    True
    """

    def __init__(self, boxes: Sequence[Box], aggregates: Sequence[int]):
        if len(boxes) != len(aggregates):
            raise ValidationError(
                f"{len(boxes)} boxes but {len(aggregates)} aggregates"
            )
        if not boxes:
            raise ValidationError("need at least one redistribution license")
        self._aggregates = list(aggregates)
        self._graph = OverlapGraph.from_boxes(boxes)
        self._structure = form_groups(self._graph)
        logger.debug(
            "grouped validator: N=%d, %d overlap edge(s), %d group(s) %s",
            len(aggregates),
            self._graph.edge_count(),
            self._structure.count,
            list(self._structure.sizes),
        )

    @classmethod
    def from_pool(cls, pool: LicensePool) -> "GroupedValidator":
        """Build from a license pool (boxes + aggregate array)."""
        return cls(pool.boxes(), pool.aggregate_array())

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Return the number of redistribution licenses ``N``."""
        return len(self._aggregates)

    @property
    def graph(self) -> OverlapGraph:
        """Return the overlap graph."""
        return self._graph

    @property
    def structure(self) -> GroupStructure:
        """Return the group partition (Algorithm 3 output)."""
        return self._structure

    @property
    def aggregates(self) -> List[int]:
        """Return a copy of the aggregate array ``A``."""
        return list(self._aggregates)

    @property
    def equations_required(self) -> int:
        """Return ``Σ_k (2^{N_k} - 1)`` -- the grouped equation count."""
        return equations_with_grouping(self._structure.sizes)

    @property
    def equations_baseline(self) -> int:
        """Return ``2^N - 1`` -- the ungrouped equation count."""
        return equations_without_grouping(self.n)

    @property
    def theoretical_gain(self) -> float:
        """Return the paper's Equation 3 gain."""
        return gain_for_structure(self._structure)

    # ------------------------------------------------------------------
    # Validation pipeline
    # ------------------------------------------------------------------
    def build(self, log: ValidationLog) -> GroupedValidationTree:
        """Build the original tree from ``log``, divide and remap it.

        (Steps 3-5 of the pipeline; exposed separately so benchmarks can
        time construction vs. division vs. validation, as Figures 7 and 9
        of the paper do.)
        """
        tree = ValidationTree.from_log(log)
        return self.divide(tree)

    def divide(self, tree: ValidationTree) -> GroupedValidationTree:
        """Divide and remap an already-built original tree (consumes it)."""
        return GroupedValidationTree.from_tree(tree, self._aggregates, self._structure)

    def validate(
        self, log: ValidationLog, stop_at_first: bool = False
    ) -> ValidationReport:
        """Full offline validation of a log with the proposed method."""
        report = self.build(log).validate(stop_at_first=stop_at_first)
        if report.is_valid:
            logger.info(
                "validation OK: %d equations over %d records",
                report.equations_checked,
                len(log),
            )
        else:
            logger.warning(
                "validation FAILED: %d violation(s), worst excess %d",
                len(report.violations),
                max(v.excess for v in report.violations),
            )
        return report

    def explain(self) -> str:
        """Return a human-readable summary of the geometric analysis.

        Covers the overlap graph, the discovered groups, and the equation
        arithmetic of Eq. 3 -- the narrative of Section 3 for *this* pool.
        """
        lines = [
            f"{self.n} redistribution licenses; overlap graph has "
            f"{self._graph.edge_count()} edge(s)",
            f"groups ({self._structure.count}): "
            + ", ".join(
                "{" + ", ".join(f"LD{i}" for i in sorted(group)) + "}"
                for group in self._structure.groups
            ),
            f"validation equations: 2^{self.n} - 1 = "
            f"{self.equations_baseline:,} without grouping; "
            + " + ".join(
                f"(2^{size} - 1)" for size in self._structure.sizes
            )
            + f" = {self.equations_required:,} with grouping",
            f"theoretical gain (Eq. 3): {self.theoretical_gain:,.1f}x",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Headroom (group-restricted, per Theorem 2)
    # ------------------------------------------------------------------
    def headroom(self, log: ValidationLog, license_set: Iterable[int]) -> int:
        """Return the largest count issuable against ``license_set`` now.

        The superset enumeration is restricted to the set's own group: by
        Theorem 2 the cross-group equations are sums of per-group ones, so
        they can never be the binding constraint.  This turns an
        ``O(2^(N-|S|))`` scan into ``O(2^(N_k-|S|))``.

        Raises
        ------
        GroupingError
            If ``license_set`` spans two groups -- such a set can never be
            produced by instance matching (Corollary 1.1).
        """
        members = sorted(set(license_set))
        if not members:
            raise ValidationError("license set must be non-empty")
        group_ids = {self._structure.group_of(index) for index in members}
        if len(group_ids) != 1:
            raise GroupingError(
                f"set {members} spans groups "
                f"{sorted(g + 1 for g in group_ids)}; instance matching can "
                f"never produce a cross-group set (Corollary 1.1)"
            )
        group_id = group_ids.pop()
        tree = ValidationTree.from_log(log)
        return _headroom(
            tree,
            self._aggregates,
            mask_from_indexes(members),
            universe_mask=self._structure.masks()[group_id],
        )
