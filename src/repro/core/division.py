"""Division of the validation tree into per-group trees (Algorithm 4).

Corollary 1.1 guarantees that no log record mixes licenses from two
different groups, so every branch of the validation tree stays within one
group, and in particular every *child of the root* belongs to exactly one
group.  Algorithm 4 therefore only needs to re-link the root's children:
child node ``T'`` with license index in group ``j`` becomes a child of the
new root ``root_j``.  Subtrees are **shared, not copied** -- which is why
the paper's Figure 10 finds the divided trees occupy essentially the same
storage as the original.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import GroupingError
from repro.core.grouping import GroupStructure
from repro.validation.tree import TreeNode, ValidationTree

__all__ = ["divide_tree", "verify_partition"]


def divide_tree(
    tree: ValidationTree, structure: GroupStructure
) -> List[ValidationTree]:
    """Split ``tree`` into one validation tree per group (Algorithm 4).

    The input tree's root children are re-parented under fresh per-group
    roots; subtree nodes are shared with the input tree (no copies).  The
    input tree object should be considered consumed: its root keeps its old
    child list, but subsequent index remapping (Algorithm 5) mutates the
    shared nodes.

    Returns
    -------
    list[ValidationTree]
        One tree per group, in group order.  Groups with no log records
        yield empty trees.

    Raises
    ------
    GroupingError
        If a root child's index is outside the structure's universe.
    """
    lookup = structure.group_lookup()
    roots = [TreeNode() for _ in range(structure.count)]
    for child in tree.root.children:
        try:
            group_id = lookup[child.index]
        except KeyError:
            raise GroupingError(
                f"tree has license index {child.index} outside the "
                f"group structure (N={structure.n})"
            ) from None
        roots[group_id].children.append(child)
    # Children arrive in ascending index order from the ordered source
    # tree, and ascending order is preserved under a stable re-partition.
    return [ValidationTree(root) for root in roots]


def verify_partition(tree: ValidationTree, structure: GroupStructure) -> None:
    """Check Corollary 1.1 against an actual tree: no branch may contain
    license indexes from two different groups.

    This is the structural invariant Algorithm 4 relies on.  Logs produced
    by instance matching always satisfy it (the licenses of a match set
    mutually overlap, hence share a group); hand-crafted logs might not.

    Raises
    ------
    GroupingError
        On the first branch spanning two groups, or on an out-of-range
        index.
    """
    lookup = structure.group_lookup()
    stack = [(child, None) for child in tree.root.children]
    while stack:
        node, inherited_group = stack.pop()
        try:
            group_id = lookup[node.index]
        except KeyError:
            raise GroupingError(
                f"tree has license index {node.index} outside the "
                f"group structure (N={structure.n})"
            ) from None
        if inherited_group is not None and group_id != inherited_group:
            raise GroupingError(
                f"branch mixes groups {inherited_group + 1} and {group_id + 1} "
                f"at license index {node.index}; such a set has C[S] = 0 by "
                f"Corollary 1.1 and cannot come from instance matching"
            )
        stack.extend((child, group_id) for child in node.children)
