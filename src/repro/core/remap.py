"""Index remapping of divided trees (Algorithm 5).

After division, the ``k``-th tree still carries *global* license indexes,
but Algorithm 2 requires indexes ``1..N_k`` (its equation counter encodes
exactly ``N_k`` bit positions).  Algorithm 5 computes the ``position_k``
array -- the ``p``-th smallest member of group ``k`` gets local index ``p``
-- rewrites every node, and derives the per-group aggregate array ``A_k``
from the global array ``A``.

Because ``position_k`` is monotone over the group's (ascending) global
indexes, the rewrite preserves the tree's ordered-children invariant.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import GroupingError
from repro.core.grouping import GroupStructure
from repro.validation.tree import ValidationTree

__all__ = [
    "globalize_mask",
    "local_to_global",
    "position_array",
    "remap_tree_inplace",
    "remapped_aggregates",
]


def position_array(structure: GroupStructure, group_id: int) -> Dict[int, int]:
    """Return the paper's ``position_k``: global index -> local index.

    (The paper stores it as a length-N array with zeros for non-members;
    a dict keyed by the members is the natural Python shape.)

    >>> from repro.core.grouping import GroupStructure
    >>> s = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
    >>> position_array(s, 1)
    {3: 1, 5: 2}
    """
    members = structure.sorted_members(group_id)
    return {global_index: p for p, global_index in enumerate(members, start=1)}


def local_to_global(structure: GroupStructure, group_id: int) -> Tuple[int, ...]:
    """Return the inverse of ``position_k``: ``result[p-1]`` is the global
    index of local index ``p``.  Used to translate per-group violations
    back into global license sets."""
    return structure.sorted_members(group_id)


def globalize_mask(structure: GroupStructure, group_id: int, local_mask: int) -> int:
    """Translate a group-local bitmask back into the global index space.

    The inverse of the per-group remapping for equation masks: bit ``p-1``
    of ``local_mask`` becomes bit ``j-1`` where ``j`` is the ``p``-th
    smallest member of the group.  Used to report per-group violations in
    global license indexes.

    >>> from repro.core.grouping import GroupStructure
    >>> s = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
    >>> bin(globalize_mask(s, 1, 0b11))      # local {1,2} -> global {3,5}
    '0b10100'
    """
    globals_of = structure.sorted_members(group_id)
    if local_mask >> len(globals_of):
        raise GroupingError(
            f"local mask {local_mask:#b} exceeds group size {len(globals_of)}"
        )
    global_mask = 0
    position = 0
    while local_mask:
        if local_mask & 1:
            global_mask |= 1 << (globals_of[position] - 1)
        local_mask >>= 1
        position += 1
    return global_mask


def remapped_aggregates(
    aggregates: Sequence[int], structure: GroupStructure, group_id: int
) -> List[int]:
    """Return ``A_k``: the aggregate array of group ``k`` in local order
    (the ``A_k[p] = A[j]`` assignment inside Algorithm 5)."""
    members = structure.sorted_members(group_id)
    if members and members[-1] > len(aggregates):
        raise GroupingError(
            f"group references license {members[-1]} but only "
            f"{len(aggregates)} aggregates were provided"
        )
    return [aggregates[global_index - 1] for global_index in members]


def remap_tree_inplace(
    tree: ValidationTree, structure: GroupStructure, group_id: int
) -> None:
    """Rewrite every node index of a divided tree to its local index.

    Mutates ``tree`` (the nodes are shared with the pre-division tree, which
    Algorithm 5 likewise consumes).  Idempotence is *not* guaranteed --
    remapping twice would corrupt indexes -- so
    :class:`repro.core.grouped_tree.GroupedValidationTree` performs it
    exactly once at construction.

    Raises
    ------
    GroupingError
        If a node's index is not a member of the given group (the tree was
        divided against a different structure).
    """
    position = position_array(structure, group_id)
    for node in tree.iter_nodes():
        try:
            node.index = position[node.index]
        except KeyError:
            raise GroupingError(
                f"node index {node.index} is not in group {group_id + 1} "
                f"({sorted(structure.groups[group_id])})"
            ) from None
