"""Disjoint-set union (union-find) substrate for dynamic grouping.

Section 5.A of the paper discusses what happens to the group count when a
new redistribution license arrives: it stays the same (connects into one
group), increases (connects to none) or decreases (bridges several).
Recomputing components from scratch on every arrival is O(N²); a
union-find keeps additions nearly O(α(N)) per overlap edge, which
:class:`repro.core.dynamic.DynamicGrouper` builds on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Set

__all__ = ["UnionFind"]


class UnionFind:
    """Union-find with path compression and union by size.

    Elements are arbitrary hashables, created lazily on first use.

    Examples
    --------
    >>> dsu = UnionFind()
    >>> dsu.union(1, 2)
    True
    >>> dsu.connected(1, 2)
    True
    >>> dsu.union(1, 2)   # already together
    False
    """

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._components = 0

    def add(self, element: Hashable) -> bool:
        """Register an element as its own singleton set.

        Returns ``True`` if the element was new.
        """
        if element in self._parent:
            return False
        self._parent[element] = element
        self._size[element] = 1
        self._components += 1
        return True

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the sets containing ``left`` and ``right``.

        Returns ``True`` if a merge happened (they were separate).
        """
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return False
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        self._components -= 1
        return True

    def connected(self, left: Hashable, right: Hashable) -> bool:
        """Return ``True`` if both elements are in the same set."""
        return self.find(left) == self.find(right)

    def component_size(self, element: Hashable) -> int:
        """Return the size of the set containing ``element``."""
        return self._size[self.find(element)]

    @property
    def component_count(self) -> int:
        """Return the number of disjoint sets."""
        return self._components

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def components(self) -> Iterator[Set[Hashable]]:
        """Yield every disjoint set (order: by first-seen representative)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        yield from by_root.values()

    def sorted_components(self) -> List[frozenset]:
        """Return components as frozensets ordered by smallest member --
        the same discovery order Algorithm 3 produces for 1-based license
        indexes."""
        return sorted((frozenset(c) for c in self.components()), key=min)
