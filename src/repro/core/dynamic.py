"""Dynamic group maintenance as licenses are acquired (paper Section 5.A).

The paper's Figure 6 discussion: when a distributor acquires a new
redistribution license ``L_D^{N+1}``,

* the group count **stays the same** if it overlaps licenses of exactly
  one existing group,
* **increases** if it overlaps no existing license,
* **decreases** if it bridges two or more groups.

:class:`DynamicGrouper` maintains the partition incrementally with a
union-find: adding a license costs one overlap test per existing license
plus near-constant-time unions, instead of recomputing components from the
full adjacency matrix.  The resulting partition always equals a fresh
Algorithm 3 run (property-tested), so the grouped validation pipeline can
consume its :meth:`structure` directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import GroupingError
from repro.core.grouping import GroupStructure
from repro.core.unionfind import UnionFind
from repro.geometry.box import Box
from repro.licenses.license import RedistributionLicense
from repro.licenses.pool import LicensePool

__all__ = ["DynamicGrouper"]


class DynamicGrouper:
    """Incrementally maintained overlap groups over a growing license set.

    Examples
    --------
    >>> from repro.workloads.scenarios import figure2_pool
    >>> grouper = DynamicGrouper()
    >>> for lic in figure2_pool():
    ...     _ = grouper.add(lic.box)
    >>> grouper.group_count
    2
    """

    def __init__(self) -> None:
        self._boxes: List[Box] = []
        self._dsu = UnionFind()

    @classmethod
    def from_pool(cls, pool: LicensePool) -> "DynamicGrouper":
        """Seed a grouper with every license already in a pool."""
        grouper = cls()
        for lic in pool:
            grouper.add(lic.box)
        return grouper

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, box: "Box | RedistributionLicense") -> Tuple[int, int]:
        """Add a license (by box) and return ``(index, group_count)``.

        ``index`` is the new license's 1-based index; ``group_count`` is
        the partition size after the addition, so callers can observe the
        paper's same/increase/decrease trichotomy directly.
        """
        if isinstance(box, RedistributionLicense):
            box = box.box
        if self._boxes and self._boxes[0].dimensions != box.dimensions:
            raise GroupingError(
                f"license has {box.dimensions} constraint axes, "
                f"grouper tracks {self._boxes[0].dimensions}"
            )
        self._boxes.append(box)
        index = len(self._boxes)
        self._dsu.add(index)
        for other_index, other_box in enumerate(self._boxes[:-1], start=1):
            if box.overlaps(other_box):
                self._dsu.union(index, other_index)
        return index, self._dsu.component_count

    def extend(self, pool: LicensePool) -> None:
        """Add every license of a pool in order."""
        for lic in pool:
            self.add(lic.box)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Return the number of licenses tracked."""
        return len(self._boxes)

    @property
    def group_count(self) -> int:
        """Return the current number of groups."""
        return self._dsu.component_count

    def group_of(self, index: int) -> int:
        """Return the 0-based group id of a 1-based license index
        (consistent with :meth:`structure`'s ordering)."""
        if not 1 <= index <= self.n:
            raise GroupingError(f"license index {index} out of range 1..{self.n}")
        representative = self._dsu.find(index)
        for group_id, group in enumerate(self._dsu.sorted_components()):
            if representative in group or index in group:
                return group_id
        raise GroupingError(f"internal error: index {index} not in any component")

    def same_group(self, left: int, right: int) -> bool:
        """Return ``True`` if two licenses currently share a group."""
        for index in (left, right):
            if not 1 <= index <= self.n:
                raise GroupingError(
                    f"license index {index} out of range 1..{self.n}"
                )
        return self._dsu.connected(left, right)

    def structure(self) -> GroupStructure:
        """Snapshot the partition as a :class:`GroupStructure` (ordered by
        smallest member, like Algorithm 3)."""
        if self.n == 0:
            raise GroupingError("no licenses added yet")
        return GroupStructure(tuple(self._dsu.sorted_components()), self.n)

    def classify_addition(self, box: Box) -> str:
        """Predict the paper's trichotomy for ``box`` WITHOUT adding it.

        Returns ``"same"`` (connects into exactly one group),
        ``"increase"`` (connects to none) or ``"decrease"`` (bridges
        two or more groups).
        """
        touched = set()
        for index, other_box in enumerate(self._boxes, start=1):
            if box.overlaps(other_box):
                touched.add(self._dsu.find(index))
        if not touched:
            return "increase"
        if len(touched) == 1:
            return "same"
        return "decrease"
