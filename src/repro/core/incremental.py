"""Incremental offline validation with per-group dirty tracking.

An extension built on Theorem 2: because validation decomposes over the
disconnected groups, a new log record only perturbs the equations of *its
own group*.  A validation authority that revalidates periodically can
therefore keep one remapped tree per group, insert records incrementally,
and on each validation pass re-run Algorithm 2 only for the groups that
received records since the previous pass -- ``Σ_{dirty k} (2^{N_k} - 1)``
equations instead of even the grouped total.

The cached verdicts of clean groups stay valid because their trees and
aggregates are untouched.  Results always equal a from-scratch
:class:`repro.core.validator.GroupedValidator` run (tested).

:class:`GroupSlice` is the reusable unit of this design: one group's
remapped tree, validator, and dirty flag behind insert / headroom /
revalidate operations.  :class:`IncrementalValidator` composes one slice
per group; the serving layer (:mod:`repro.service`) hands each shard the
slices of its assigned groups so independent groups validate concurrently
without sharing any mutable state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GroupingError, ValidationError
from repro.core.grouping import GroupStructure, form_groups
from repro.core.kernel import (
    KERNEL_DENSE,
    KERNEL_NAMES,
    KERNEL_TREE,
    DenseHeadroomKernel,
    KernelPlane,
)
from repro.core.overlap import OverlapGraph
from repro.core.remap import globalize_mask, position_array, remapped_aggregates
from repro.geometry.box import Box
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord
from repro.validation.capacity import headroom as _headroom
from repro.validation.limits import DEFAULT_KERNEL_CAP
from repro.validation.report import ValidationReport, Violation, make_report
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.instrument import Instrumentation

__all__ = ["GroupSlice", "IncrementalValidator"]


class GroupSlice:
    """One group's equation state: remapped tree + validator + dirty flag.

    All public methods speak *global* license indexes; the slice owns the
    global->local remapping (Algorithm 5) internally.  A slice never
    touches state outside its group, so distinct slices can be mutated
    from different threads or processes without synchronization
    (Theorem 2: their equation systems are disjoint).

    ``kernel`` selects the equation-state engine behind the slice:

    * ``"tree"`` (default) -- the validation tree of [10] with
      enumerated headroom queries and Algorithm 2 revalidation;
    * ``"dense"`` -- the resident-table
      :class:`repro.core.kernel.DenseHeadroomKernel` (O(1) admission
      lookups, delta revalidation), *when* ``N_k <= kernel_cap``.
      Larger groups fall back to the tree walk -- dense tables cost
      ``3 * 8 * 2^{N_k}`` bytes -- and :attr:`kernel_fallback` reports
      the downgrade so the serving layer can count it.

    Verdicts, headroom values, and violation masks are identical for
    both engines (property-tested); only the cost model differs.

    Examples
    --------
    >>> from repro.core.grouping import GroupStructure
    >>> s = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
    >>> gslice = GroupSlice(s, [100, 50, 60, 50, 25], 0)
    >>> gslice.headroom([1, 2])
    150
    >>> gslice.insert([1, 2], 140)
    >>> gslice.headroom([1, 2])
    10
    >>> report, checked = gslice.revalidate()
    >>> report.is_valid, checked
    (True, 7)
    >>> gslice.revalidate()[1]      # clean slice: cached verdict, no work
    0
    """

    def __init__(
        self,
        structure: GroupStructure,
        aggregates: Sequence[int],
        group_id: int,
        kernel: str = KERNEL_TREE,
        kernel_cap: int = DEFAULT_KERNEL_CAP,
        planes: Optional[Tuple[KernelPlane, KernelPlane]] = None,
        adopt_planes: bool = False,
    ):
        if kernel not in KERNEL_NAMES:
            raise ValidationError(
                f"unknown kernel {kernel!r}; choose from "
                f"{', '.join(KERNEL_NAMES)}"
            )
        self.group_id = group_id
        self._structure = structure
        self._position: Dict[int, int] = position_array(structure, group_id)
        self._local_aggregates = remapped_aggregates(aggregates, structure, group_id)
        self._universe = (1 << len(self._local_aggregates)) - 1
        self._requested_kernel = kernel
        self._kernel: Optional[DenseHeadroomKernel] = None
        self._validator: Optional[TreeValidator] = None
        self._tree: Optional[ValidationTree] = None
        if kernel == KERNEL_DENSE and len(self._local_aggregates) <= kernel_cap:
            self._kernel = DenseHeadroomKernel(
                self._local_aggregates,
                max_n=kernel_cap,
                planes=planes,
                adopt=adopt_planes,
            )
        else:
            self._validator = TreeValidator(self._local_aggregates)
            self._tree = ValidationTree()
        self._dirty = False
        self._cached: Optional[ValidationReport] = None
        self._records = 0
        self._version = 0
        self._touched_since_reval = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Return ``N_k``, the number of licenses in this group."""
        return len(self._local_aggregates)

    @property
    def dirty(self) -> bool:
        """Return whether inserts arrived since the last revalidation."""
        return self._dirty

    @property
    def records_inserted(self) -> int:
        """Return how many records this slice has absorbed."""
        return self._records

    @property
    def kernel_name(self) -> str:
        """Return the *active* engine: ``"dense"`` or ``"tree"``."""
        return KERNEL_DENSE if self._kernel is not None else KERNEL_TREE

    @property
    def kernel_fallback(self) -> bool:
        """Return whether the dense kernel was requested but the group
        exceeded the cap, downgrading this slice to the tree walk."""
        return (
            self._requested_kernel == KERNEL_DENSE and self._kernel is None
        )

    @property
    def version(self) -> int:
        """Return the mutation counter (bumped by every insert).

        Lets batch admission reuse a vectorized headroom prefetch for as
        long as the slice is untouched, re-querying only after an
        interleaved insert -- verdicts stay byte-identical to strictly
        sequential processing.
        """
        return self._version

    @property
    def masks_touched(self) -> int:
        """Return dense-table masks rewritten since the last
        revalidation (0 on the tree path) -- the per-update work the
        revalidate span attributes report."""
        return self._touched_since_reval

    def kernel_occupancy(self) -> Optional[Dict[str, int]]:
        """Return the dense kernel's live occupancy (``None`` on the tree
        path).  When the kernel sits on shared planes this reads the
        worker-maintained tables directly -- the coordinator's zero-copy
        monitor view (see :meth:`DenseHeadroomKernel.occupancy`)."""
        if self._kernel is None:
            return None
        return self._kernel.occupancy()

    def localize(self, members: Iterable[int]) -> Tuple[int, ...]:
        """Translate global license indexes to this group's local indexes.

        Raises
        ------
        GroupingError
            If any index lies outside the group (a cross-group set, which
            instance matching can never produce -- Corollary 1.1).  The
            message lists *every* out-of-group index, not just the first
            one the lookup tripped over.
        """
        try:
            return tuple(sorted(self._position[index] for index in members))
        except KeyError:
            missing = sorted(
                {index for index in members if index not in self._position}
            )
            raise GroupingError(
                f"licenses {missing} are not in group {self.group_id + 1} "
                f"({sorted(self._structure.groups[self.group_id])})"
            ) from None

    def _local_mask(self, local: Sequence[int]) -> int:
        """Return the local bitmask of already-localized indexes."""
        mask = 0
        for index in local:
            mask |= 1 << (index - 1)
        return mask

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def insert(self, members: Iterable[int], count: int) -> None:
        """Insert one record (global indexes); marks the slice dirty."""
        local = self.localize(members)
        if self._kernel is not None:
            if not local:
                raise ValidationError("cannot insert an empty license set")
            touched = self._kernel.insert(self._local_mask(local), count)
            self._touched_since_reval += touched
        else:
            assert self._tree is not None
            self._tree.insert_set(local, count)
        self._dirty = True
        self._cached = None
        self._records += 1
        self._version += 1

    def headroom(self, members: Iterable[int]) -> int:
        """Return the largest count issuable against ``members`` now.

        On the dense kernel this is a single ``H``-table lookup (O(1));
        on the tree path the superset enumeration runs over this group's
        local universe -- ``O(2^(N_k - |S|))`` equations, the
        group-restricted query of Theorem 2.  Both return the same
        value.
        """
        local = self.localize(members)
        mask = self._local_mask(local)
        if self._kernel is not None:
            return self._kernel.headroom(mask)
        assert self._tree is not None
        return _headroom(self._tree, self._local_aggregates, mask)

    def headroom_batch(
        self, members_batch: Sequence[Iterable[int]]
    ) -> List[int]:
        """Return :meth:`headroom` for many sets against the *current*
        state, positionally.

        On the dense kernel the whole batch is answered by one
        vectorized ``H`` gather; the tree path degrades to a per-set
        loop.  Callers interleaving inserts must invalidate against
        :attr:`version` to preserve sequential semantics.
        """
        if self._kernel is not None:
            masks = [
                self._local_mask(self.localize(members))
                for members in members_batch
            ]
            return self._kernel.headroom_many(masks)
        return [self.headroom(members) for members in members_batch]

    def revalidate(
        self, instrumentation: Optional["Instrumentation"] = None
    ) -> Tuple[ValidationReport, int]:
        """Run Algorithm 2 over this group if dirty; else reuse the cache.

        Returns ``(report, equations_checked_now)`` where the counter is 0
        on a cache hit.  Violation masks are *local*; use
        :meth:`globalize_violation` to translate them.

        ``instrumentation`` (optional
        :class:`repro.obs.instrument.Instrumentation`) gets one
        ``revalidate`` span per actual validation run, attributed with
        ``group_id``/``equations_checked``/``dirty``/``kernel`` (plus
        ``masks_touched`` on the dense path -- the kernel's real
        incremental work since the last pass, so the Eq.-3 efficiency
        telemetry stays truthful), and a ``revalidation_cache_hits``
        counter for skipped clean passes.
        """
        if self._dirty or self._cached is None:
            if instrumentation is None:
                self._cached = self._run_validation()
            else:
                touched_before = self._touched_since_reval
                with instrumentation.span(
                    "revalidate",
                    group_id=self.group_id,
                    dirty=True,
                    kernel=self.kernel_name,
                ) as span:
                    self._cached = self._run_validation()
                    span.set_attr(
                        "equations_checked", self._cached.equations_checked
                    )
                    if self._kernel is not None:
                        span.set_attr("masks_touched", touched_before)
                instrumentation.count(
                    "equations_checked", self._cached.equations_checked
                )
                if self._kernel is not None:
                    instrumentation.count(
                        "kernel_masks_touched", touched_before
                    )
            self._dirty = False
            self._touched_since_reval = 0
            return self._cached, self._cached.equations_checked
        if instrumentation is not None:
            instrumentation.count("revalidation_cache_hits")
        return self._cached, 0

    def _run_validation(self) -> ValidationReport:
        """Run the active engine's full-group check and report it.

        Tree path: Algorithm 2 over every ``2^{N_k} - 1`` equation.
        Dense path: an ``N_k``-probe feasibility check against the
        resident ``H`` table, with the exact offending masks recovered
        from the ``A - C`` plane only when the probe fails.  Violations
        (masks, LHS, RHS) are identical either way; only
        ``equations_checked`` differs, reporting each engine's real
        work.
        """
        if self._kernel is not None:
            violations, examined = self._kernel.validate()
            return make_report(self._kernel.engine_name, examined, violations)
        assert self._validator is not None and self._tree is not None
        return self._validator.validate(self._tree)

    def globalize_violation(self, violation: Violation) -> Violation:
        """Translate a local-mask violation into global license indexes."""
        mask = globalize_mask(self._structure, self.group_id, violation.mask)
        return Violation(mask, violation.lhs, violation.rhs)


class IncrementalValidator:
    """Grouped validation with incremental inserts and dirty revalidation.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> validator = IncrementalValidator.from_pool(example1().pool)
    >>> validator.record({1, 2}, 800)   # returns the touched group id
    0
    >>> validator.validate().is_valid
    True
    >>> validator.validate().equations_checked   # nothing dirty anymore
    0
    """

    engine_name = "incremental-grouped"

    def __init__(
        self,
        boxes: Sequence[Box],
        aggregates: Sequence[int],
        kernel: str = KERNEL_TREE,
        kernel_cap: int = DEFAULT_KERNEL_CAP,
    ):
        if len(boxes) != len(aggregates):
            raise ValidationError(
                f"{len(boxes)} boxes but {len(aggregates)} aggregates"
            )
        if not boxes:
            raise ValidationError("need at least one redistribution license")
        self._aggregates = list(aggregates)
        self._structure: GroupStructure = form_groups(
            OverlapGraph.from_boxes(boxes)
        )
        self._slices: List[GroupSlice] = [
            GroupSlice(
                self._structure,
                self._aggregates,
                k,
                kernel=kernel,
                kernel_cap=kernel_cap,
            )
            for k in range(self._structure.count)
        ]
        self._records = 0

    @classmethod
    def from_pool(
        cls,
        pool: LicensePool,
        kernel: str = KERNEL_TREE,
        kernel_cap: int = DEFAULT_KERNEL_CAP,
    ) -> "IncrementalValidator":
        """Build from a license pool (``kernel`` selects each slice's
        equation engine -- see :class:`GroupSlice`)."""
        return cls(
            pool.boxes(),
            pool.aggregate_array(),
            kernel=kernel,
            kernel_cap=kernel_cap,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def structure(self) -> GroupStructure:
        """Return the (static) group partition."""
        return self._structure

    @property
    def records_inserted(self) -> int:
        """Return how many log records have been inserted."""
        return self._records

    @property
    def dirty_groups(self) -> Tuple[int, ...]:
        """Return the 0-based ids of groups awaiting revalidation."""
        return tuple(
            k for k, gslice in enumerate(self._slices) if gslice.dirty
        )

    def slices(self) -> Tuple[GroupSlice, ...]:
        """Return the per-group slices (shared, mutable -- callers taking
        a slice take responsibility for serializing access to it)."""
        return tuple(self._slices)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record(self, license_set: Iterable[int], count: int) -> int:
        """Insert one issuance; return the 0-based group id it landed in.

        Raises
        ------
        GroupingError
            If the set spans two groups (impossible for sets produced by
            instance matching -- Corollary 1.1 -- so it flags corrupt
            logs).
        """
        members = sorted(set(license_set))
        if not members:
            raise ValidationError("license set must be non-empty")
        group_ids = {self._structure.group_of(index) for index in members}
        if len(group_ids) != 1:
            raise GroupingError(
                f"set {members} spans groups {sorted(g + 1 for g in group_ids)}; "
                f"instance matching can never produce a cross-group set"
            )
        group_id = group_ids.pop()
        self._slices[group_id].insert(members, count)
        self._records += 1
        return group_id

    def append(self, record: LogRecord) -> int:
        """Insert a :class:`LogRecord`."""
        return self.record(record.license_set, record.count)

    def replay(self, log: ValidationLog) -> None:
        """Insert every record of an existing log."""
        for record in log:
            self.append(record)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self, instrumentation: Optional["Instrumentation"] = None
    ) -> ValidationReport:
        """Revalidate dirty groups, reuse cached verdicts for clean ones.

        The returned report's ``equations_checked`` counts only the
        equations evaluated by *this* call -- the incremental cost.
        Violations cover all groups (cached and fresh), translated to
        global license indexes.  ``instrumentation`` is forwarded to each
        slice's :meth:`GroupSlice.revalidate`.
        """
        checked_now = 0
        violations: List[Violation] = []
        for gslice in self._slices:
            report, checked = gslice.revalidate(instrumentation)
            checked_now += checked
            violations.extend(
                gslice.globalize_violation(violation)
                for violation in report.violations
            )
        return make_report(self.engine_name, checked_now, violations)

    def is_valid(self) -> bool:
        """Validate (incrementally) and return the verdict."""
        return self.validate().is_valid
