"""Incremental offline validation with per-group dirty tracking.

An extension built on Theorem 2: because validation decomposes over the
disconnected groups, a new log record only perturbs the equations of *its
own group*.  A validation authority that revalidates periodically can
therefore keep one remapped tree per group, insert records incrementally,
and on each validation pass re-run Algorithm 2 only for the groups that
received records since the previous pass -- ``Σ_{dirty k} (2^{N_k} - 1)``
equations instead of even the grouped total.

The cached verdicts of clean groups stay valid because their trees and
aggregates are untouched.  Results always equal a from-scratch
:class:`repro.core.validator.GroupedValidator` run (tested).

:class:`GroupSlice` is the reusable unit of this design: one group's
remapped tree, validator, and dirty flag behind insert / headroom /
revalidate operations.  :class:`IncrementalValidator` composes one slice
per group; the serving layer (:mod:`repro.service`) hands each shard the
slices of its assigned groups so independent groups validate concurrently
without sharing any mutable state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GroupingError, ValidationError
from repro.core.grouping import GroupStructure, form_groups
from repro.core.overlap import OverlapGraph
from repro.core.remap import globalize_mask, position_array, remapped_aggregates
from repro.geometry.box import Box
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord
from repro.validation.capacity import headroom as _headroom
from repro.validation.report import ValidationReport, Violation, make_report
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.instrument import Instrumentation

__all__ = ["GroupSlice", "IncrementalValidator"]


class GroupSlice:
    """One group's equation state: remapped tree + validator + dirty flag.

    All public methods speak *global* license indexes; the slice owns the
    global->local remapping (Algorithm 5) internally.  A slice never
    touches state outside its group, so distinct slices can be mutated
    from different threads or processes without synchronization
    (Theorem 2: their equation systems are disjoint).

    Examples
    --------
    >>> from repro.core.grouping import GroupStructure
    >>> s = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
    >>> gslice = GroupSlice(s, [100, 50, 60, 50, 25], 0)
    >>> gslice.headroom([1, 2])
    150
    >>> gslice.insert([1, 2], 140)
    >>> gslice.headroom([1, 2])
    10
    >>> report, checked = gslice.revalidate()
    >>> report.is_valid, checked
    (True, 7)
    >>> gslice.revalidate()[1]      # clean slice: cached verdict, no work
    0
    """

    def __init__(
        self,
        structure: GroupStructure,
        aggregates: Sequence[int],
        group_id: int,
    ):
        self.group_id = group_id
        self._structure = structure
        self._position: Dict[int, int] = position_array(structure, group_id)
        self._local_aggregates = remapped_aggregates(aggregates, structure, group_id)
        self._validator = TreeValidator(self._local_aggregates)
        self._tree = ValidationTree()
        self._universe = (1 << len(self._local_aggregates)) - 1
        self._dirty = False
        self._cached: Optional[ValidationReport] = None
        self._records = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Return ``N_k``, the number of licenses in this group."""
        return len(self._local_aggregates)

    @property
    def dirty(self) -> bool:
        """Return whether inserts arrived since the last revalidation."""
        return self._dirty

    @property
    def records_inserted(self) -> int:
        """Return how many records this slice has absorbed."""
        return self._records

    def localize(self, members: Iterable[int]) -> Tuple[int, ...]:
        """Translate global license indexes to this group's local indexes.

        Raises
        ------
        GroupingError
            If any index lies outside the group (a cross-group set, which
            instance matching can never produce -- Corollary 1.1).
        """
        try:
            return tuple(sorted(self._position[index] for index in members))
        except KeyError as exc:
            raise GroupingError(
                f"license {exc.args[0]} is not in group {self.group_id + 1} "
                f"({sorted(self._structure.groups[self.group_id])})"
            ) from None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def insert(self, members: Iterable[int], count: int) -> None:
        """Insert one record (global indexes); marks the slice dirty."""
        self._tree.insert_set(self.localize(members), count)
        self._dirty = True
        self._cached = None
        self._records += 1

    def headroom(self, members: Iterable[int]) -> int:
        """Return the largest count issuable against ``members`` now.

        Superset enumeration runs over this group's local universe --
        ``O(2^(N_k - |S|))`` equations, the group-restricted query of
        Theorem 2.
        """
        local = self.localize(members)
        mask = 0
        for index in local:
            mask |= 1 << (index - 1)
        return _headroom(self._tree, self._local_aggregates, mask)

    def revalidate(
        self, instrumentation: Optional["Instrumentation"] = None
    ) -> Tuple[ValidationReport, int]:
        """Run Algorithm 2 over this group if dirty; else reuse the cache.

        Returns ``(report, equations_checked_now)`` where the counter is 0
        on a cache hit.  Violation masks are *local*; use
        :meth:`globalize_violation` to translate them.

        ``instrumentation`` (optional
        :class:`repro.obs.instrument.Instrumentation`) gets one
        ``revalidate`` span per actual Algorithm 2 run, attributed with
        ``group_id``/``equations_checked``/``dirty``, plus a
        ``revalidation_cache_hits`` counter for skipped clean passes.
        """
        if self._dirty or self._cached is None:
            if instrumentation is None:
                self._cached = self._validator.validate(self._tree)
            else:
                with instrumentation.span(
                    "revalidate", group_id=self.group_id, dirty=True
                ) as span:
                    self._cached = self._validator.validate(self._tree)
                    span.set_attr(
                        "equations_checked", self._cached.equations_checked
                    )
                instrumentation.count(
                    "equations_checked", self._cached.equations_checked
                )
            self._dirty = False
            return self._cached, self._cached.equations_checked
        if instrumentation is not None:
            instrumentation.count("revalidation_cache_hits")
        return self._cached, 0

    def globalize_violation(self, violation: Violation) -> Violation:
        """Translate a local-mask violation into global license indexes."""
        mask = globalize_mask(self._structure, self.group_id, violation.mask)
        return Violation(mask, violation.lhs, violation.rhs)


class IncrementalValidator:
    """Grouped validation with incremental inserts and dirty revalidation.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> validator = IncrementalValidator.from_pool(example1().pool)
    >>> validator.record({1, 2}, 800)   # returns the touched group id
    0
    >>> validator.validate().is_valid
    True
    >>> validator.validate().equations_checked   # nothing dirty anymore
    0
    """

    engine_name = "incremental-grouped"

    def __init__(self, boxes: Sequence[Box], aggregates: Sequence[int]):
        if len(boxes) != len(aggregates):
            raise ValidationError(
                f"{len(boxes)} boxes but {len(aggregates)} aggregates"
            )
        if not boxes:
            raise ValidationError("need at least one redistribution license")
        self._aggregates = list(aggregates)
        self._structure: GroupStructure = form_groups(
            OverlapGraph.from_boxes(boxes)
        )
        self._slices: List[GroupSlice] = [
            GroupSlice(self._structure, self._aggregates, k)
            for k in range(self._structure.count)
        ]
        self._records = 0

    @classmethod
    def from_pool(cls, pool: LicensePool) -> "IncrementalValidator":
        """Build from a license pool."""
        return cls(pool.boxes(), pool.aggregate_array())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def structure(self) -> GroupStructure:
        """Return the (static) group partition."""
        return self._structure

    @property
    def records_inserted(self) -> int:
        """Return how many log records have been inserted."""
        return self._records

    @property
    def dirty_groups(self) -> Tuple[int, ...]:
        """Return the 0-based ids of groups awaiting revalidation."""
        return tuple(
            k for k, gslice in enumerate(self._slices) if gslice.dirty
        )

    def slices(self) -> Tuple[GroupSlice, ...]:
        """Return the per-group slices (shared, mutable -- callers taking
        a slice take responsibility for serializing access to it)."""
        return tuple(self._slices)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record(self, license_set: Iterable[int], count: int) -> int:
        """Insert one issuance; return the 0-based group id it landed in.

        Raises
        ------
        GroupingError
            If the set spans two groups (impossible for sets produced by
            instance matching -- Corollary 1.1 -- so it flags corrupt
            logs).
        """
        members = sorted(set(license_set))
        if not members:
            raise ValidationError("license set must be non-empty")
        group_ids = {self._structure.group_of(index) for index in members}
        if len(group_ids) != 1:
            raise GroupingError(
                f"set {members} spans groups {sorted(g + 1 for g in group_ids)}; "
                f"instance matching can never produce a cross-group set"
            )
        group_id = group_ids.pop()
        self._slices[group_id].insert(members, count)
        self._records += 1
        return group_id

    def append(self, record: LogRecord) -> int:
        """Insert a :class:`LogRecord`."""
        return self.record(record.license_set, record.count)

    def replay(self, log: ValidationLog) -> None:
        """Insert every record of an existing log."""
        for record in log:
            self.append(record)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self, instrumentation: Optional["Instrumentation"] = None
    ) -> ValidationReport:
        """Revalidate dirty groups, reuse cached verdicts for clean ones.

        The returned report's ``equations_checked`` counts only the
        equations evaluated by *this* call -- the incremental cost.
        Violations cover all groups (cached and fresh), translated to
        global license indexes.  ``instrumentation`` is forwarded to each
        slice's :meth:`GroupSlice.revalidate`.
        """
        checked_now = 0
        violations: List[Violation] = []
        for gslice in self._slices:
            report, checked = gslice.revalidate(instrumentation)
            checked_now += checked
            violations.extend(
                gslice.globalize_violation(violation)
                for violation in report.violations
            )
        return make_report(self.engine_name, checked_now, violations)

    def is_valid(self) -> bool:
        """Validate (incrementally) and return the verdict."""
        return self.validate().is_valid
