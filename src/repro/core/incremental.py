"""Incremental offline validation with per-group dirty tracking.

An extension built on Theorem 2: because validation decomposes over the
disconnected groups, a new log record only perturbs the equations of *its
own group*.  A validation authority that revalidates periodically can
therefore keep one remapped tree per group, insert records incrementally,
and on each validation pass re-run Algorithm 2 only for the groups that
received records since the previous pass -- ``Σ_{dirty k} (2^{N_k} - 1)``
equations instead of even the grouped total.

The cached verdicts of clean groups stay valid because their trees and
aggregates are untouched.  Results always equal a from-scratch
:class:`repro.core.validator.GroupedValidator` run (tested).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import GroupingError, ValidationError
from repro.core.grouping import GroupStructure, form_groups
from repro.core.overlap import OverlapGraph
from repro.core.remap import globalize_mask, position_array, remapped_aggregates
from repro.geometry.box import Box
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord
from repro.validation.report import ValidationReport, Violation, make_report
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

__all__ = ["IncrementalValidator"]


class IncrementalValidator:
    """Grouped validation with incremental inserts and dirty revalidation.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> validator = IncrementalValidator.from_pool(example1().pool)
    >>> validator.record({1, 2}, 800)   # returns the touched group id
    0
    >>> validator.validate().is_valid
    True
    >>> validator.validate().equations_checked   # nothing dirty anymore
    0
    """

    engine_name = "incremental-grouped"

    def __init__(self, boxes: Sequence[Box], aggregates: Sequence[int]):
        if len(boxes) != len(aggregates):
            raise ValidationError(
                f"{len(boxes)} boxes but {len(aggregates)} aggregates"
            )
        if not boxes:
            raise ValidationError("need at least one redistribution license")
        self._aggregates = list(aggregates)
        self._structure: GroupStructure = form_groups(
            OverlapGraph.from_boxes(boxes)
        )
        count = self._structure.count
        self._positions: List[Dict[int, int]] = [
            position_array(self._structure, k) for k in range(count)
        ]
        self._validators: List[TreeValidator] = [
            TreeValidator(remapped_aggregates(self._aggregates, self._structure, k))
            for k in range(count)
        ]
        self._trees: List[ValidationTree] = [ValidationTree() for _ in range(count)]
        self._dirty: List[bool] = [False] * count
        self._cached: List[Optional[ValidationReport]] = [None] * count
        self._records = 0

    @classmethod
    def from_pool(cls, pool: LicensePool) -> "IncrementalValidator":
        """Build from a license pool."""
        return cls(pool.boxes(), pool.aggregate_array())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def structure(self) -> GroupStructure:
        """Return the (static) group partition."""
        return self._structure

    @property
    def records_inserted(self) -> int:
        """Return how many log records have been inserted."""
        return self._records

    @property
    def dirty_groups(self) -> Tuple[int, ...]:
        """Return the 0-based ids of groups awaiting revalidation."""
        return tuple(k for k, dirty in enumerate(self._dirty) if dirty)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def record(self, license_set: Iterable[int], count: int) -> int:
        """Insert one issuance; return the 0-based group id it landed in.

        Raises
        ------
        GroupingError
            If the set spans two groups (impossible for sets produced by
            instance matching -- Corollary 1.1 -- so it flags corrupt
            logs).
        """
        members = sorted(set(license_set))
        if not members:
            raise ValidationError("license set must be non-empty")
        group_ids = {self._structure.group_of(index) for index in members}
        if len(group_ids) != 1:
            raise GroupingError(
                f"set {members} spans groups {sorted(g + 1 for g in group_ids)}; "
                f"instance matching can never produce a cross-group set"
            )
        group_id = group_ids.pop()
        position = self._positions[group_id]
        local = tuple(sorted(position[index] for index in members))
        self._trees[group_id].insert_set(local, count)
        self._dirty[group_id] = True
        self._cached[group_id] = None
        self._records += 1
        return group_id

    def append(self, record: LogRecord) -> int:
        """Insert a :class:`LogRecord`."""
        return self.record(record.license_set, record.count)

    def replay(self, log: ValidationLog) -> None:
        """Insert every record of an existing log."""
        for record in log:
            self.append(record)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Revalidate dirty groups, reuse cached verdicts for clean ones.

        The returned report's ``equations_checked`` counts only the
        equations evaluated by *this* call -- the incremental cost.
        Violations cover all groups (cached and fresh), translated to
        global license indexes.
        """
        checked_now = 0
        violations: List[Violation] = []
        for group_id in range(self._structure.count):
            if self._dirty[group_id] or self._cached[group_id] is None:
                report = self._validators[group_id].validate(self._trees[group_id])
                checked_now += report.equations_checked
                self._cached[group_id] = report
                self._dirty[group_id] = False
            cached = self._cached[group_id]
            assert cached is not None
            violations.extend(
                self._globalize(violation, group_id) for violation in cached.violations
            )
        return make_report(self.engine_name, checked_now, violations)

    def _globalize(self, violation: Violation, group_id: int) -> Violation:
        global_mask = globalize_mask(self._structure, group_id, violation.mask)
        return Violation(global_mask, violation.lhs, violation.rhs)

    def is_valid(self) -> bool:
        """Validate (incrementally) and return the verdict."""
        return self.validate().is_valid
