"""The paper's contribution: geometric redundancy elimination for license
validation (overlap graph, grouping, tree division, grouped validation)."""

from repro.core.division import divide_tree, verify_partition
from repro.core.dynamic import DynamicGrouper
from repro.core.incremental import IncrementalValidator
from repro.core.gain import (
    equations_with_grouping,
    equations_without_grouping,
    gain_bounds,
    gain_for_structure,
    theoretical_gain,
)
from repro.core.grouped_tree import GroupedValidationTree
from repro.core.kernel import (
    KERNEL_DENSE,
    KERNEL_NAMES,
    KERNEL_TREE,
    DenseHeadroomKernel,
)
from repro.core.grouped_zeta import GroupedZetaValidator
from repro.core.grouping import (
    GroupStructure,
    form_groups,
    form_groups_networkx,
    form_groups_paper_literal,
)
from repro.core.overlap import OverlapGraph, overlap_adjacency
from repro.core.unionfind import UnionFind
from repro.core.remap import (
    globalize_mask,
    local_to_global,
    position_array,
    remap_tree_inplace,
    remapped_aggregates,
)
from repro.core.validator import GroupedValidator

__all__ = [
    "DenseHeadroomKernel",
    "DynamicGrouper",
    "GroupStructure",
    "GroupedValidationTree",
    "GroupedValidator",
    "GroupedZetaValidator",
    "IncrementalValidator",
    "KERNEL_DENSE",
    "KERNEL_NAMES",
    "KERNEL_TREE",
    "OverlapGraph",
    "UnionFind",
    "divide_tree",
    "equations_with_grouping",
    "equations_without_grouping",
    "form_groups",
    "form_groups_networkx",
    "form_groups_paper_literal",
    "gain_bounds",
    "gain_for_structure",
    "globalize_mask",
    "local_to_global",
    "overlap_adjacency",
    "position_array",
    "remap_tree_inplace",
    "remapped_aggregates",
    "theoretical_gain",
    "verify_partition",
]
