"""Overlap graph of redistribution licenses (Section 3.2 / Figure 3).

Two redistribution licenses *overlap* when every constraint axis overlaps
-- geometrically, when their hyper-rectangles intersect.  The paper encodes
the pairwise relation as an ``N x N`` adjacency matrix ``Adj`` and treats
licenses as vertices of an undirected graph; connected components of that
graph are the *groups* that make validation equations separable.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import networkx as nx

from repro.errors import GroupingError
from repro.geometry.box import Box
from repro.licenses.pool import LicensePool

__all__ = ["OverlapGraph", "overlap_adjacency"]


def overlap_adjacency(boxes: Sequence[Box]) -> List[List[int]]:
    """Return the paper's adjacency matrix ``Adj`` for license boxes.

    ``Adj[i][j] == 1`` iff boxes ``i`` and ``j`` (0-based here) overlap on
    every axis.  The diagonal is 0, matching Figure 3 of the paper.
    """
    n = len(boxes)
    adjacency = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if boxes[i].overlaps(boxes[j]):
                adjacency[i][j] = 1
                adjacency[j][i] = 1
    return adjacency


class OverlapGraph:
    """The undirected overlap graph over a pool's licenses.

    Vertices are **1-based** license indexes (matching ``L_D^i``); edges are
    the pairwise-overlap relation.

    Examples
    --------
    >>> from repro.workloads.scenarios import figure2_pool
    >>> graph = OverlapGraph.from_pool(figure2_pool())
    >>> sorted(graph.neighbors(2))
    [1, 4]
    """

    def __init__(self, adjacency: Sequence[Sequence[int]]):
        n = len(adjacency)
        for row_number, row in enumerate(adjacency):
            if len(row) != n:
                raise GroupingError(
                    f"adjacency matrix must be square; row {row_number} "
                    f"has {len(row)} entries, expected {n}"
                )
            if row[row_number]:
                raise GroupingError(
                    f"adjacency diagonal must be 0 (row {row_number})"
                )
        for i in range(n):
            for j in range(i + 1, n):
                if adjacency[i][j] != adjacency[j][i]:
                    raise GroupingError(
                        f"adjacency must be symmetric; mismatch at ({i}, {j})"
                    )
        self._adjacency = [list(row) for row in adjacency]
        self._n = n

    @classmethod
    def from_boxes(cls, boxes: Sequence[Box]) -> "OverlapGraph":
        """Build the graph from license constraint boxes."""
        return cls(overlap_adjacency(boxes))

    @classmethod
    def from_pool(cls, pool: LicensePool) -> "OverlapGraph":
        """Build the graph from a license pool."""
        return cls.from_boxes(pool.boxes())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Return the number of vertices (licenses)."""
        return self._n

    @property
    def adjacency(self) -> List[List[int]]:
        """Return a copy of the adjacency matrix (0-based rows/cols)."""
        return [list(row) for row in self._adjacency]

    def are_overlapping(self, i: int, j: int) -> bool:
        """Return ``True`` if licenses ``i`` and ``j`` (1-based) overlap."""
        self._check_vertex(i)
        self._check_vertex(j)
        return bool(self._adjacency[i - 1][j - 1])

    def neighbors(self, i: int) -> Iterator[int]:
        """Yield the 1-based neighbors of license ``i``."""
        self._check_vertex(i)
        for j, connected in enumerate(self._adjacency[i - 1], start=1):
            if connected:
                yield j

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once as ``(i, j)`` with ``i < j``."""
        for i in range(self._n):
            row = self._adjacency[i]
            for j in range(i + 1, self._n):
                if row[j]:
                    yield (i + 1, j + 1)

    def edge_count(self) -> int:
        """Return the number of undirected edges."""
        return sum(1 for _ in self.edges())

    def to_networkx(self) -> nx.Graph:
        """Export to a :class:`networkx.Graph` with 1-based node labels.

        Used by the cross-check in :mod:`repro.core.grouping` and handy for
        users who want to visualize the overlap structure.
        """
        graph = nx.Graph()
        graph.add_nodes_from(range(1, self._n + 1))
        graph.add_edges_from(self.edges())
        return graph

    def _check_vertex(self, i: int) -> None:
        if not 1 <= i <= self._n:
            raise GroupingError(f"vertex {i} out of range 1..{self._n}")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"OverlapGraph(n={self._n}, edges={self.edge_count()})"
