"""Theoretical performance gain of the grouped validation (Equation 3).

Without grouping, validation needs ``2^N - 1`` equations.  With groups of
sizes ``N_1 .. N_g`` it needs ``Σ_k (2^{N_k} - 1)``.  The paper's
approximate gain::

    G ≈ (2^N - 1) / Σ_k (2^{N_k} - 1)

ranges from 1 (a single group: no structure to exploit) up to
``(2^N - 1) / N`` (N singleton groups).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GroupingError
from repro.core.grouping import GroupStructure

__all__ = [
    "equations_without_grouping",
    "equations_with_grouping",
    "theoretical_gain",
    "gain_bounds",
]


def equations_without_grouping(n: int) -> int:
    """Return ``2^N - 1``: equations the original validation tree checks."""
    if n < 1:
        raise GroupingError(f"need at least one license, got n={n}")
    return (1 << n) - 1


def equations_with_grouping(group_sizes: Sequence[int]) -> int:
    """Return ``Σ_k (2^{N_k} - 1)``: equations after division."""
    if not group_sizes:
        raise GroupingError("need at least one group")
    if any(size < 1 for size in group_sizes):
        raise GroupingError(f"group sizes must be positive: {group_sizes!r}")
    return sum((1 << size) - 1 for size in group_sizes)


def theoretical_gain(group_sizes: Sequence[int]) -> float:
    """Return the paper's Equation 3 gain for a partition into groups.

    >>> round(theoretical_gain([3, 2]), 1)   # the paper's worked example
    3.1
    """
    n = sum(group_sizes)
    return equations_without_grouping(n) / equations_with_grouping(group_sizes)


def gain_for_structure(structure: GroupStructure) -> float:
    """Equation 3 evaluated on a concrete :class:`GroupStructure`."""
    return theoretical_gain(structure.sizes)


def gain_bounds(n: int) -> tuple:
    """Return ``(min, max)`` achievable gains for ``n`` licenses.

    The minimum is 1 (one connected group); the maximum is
    ``(2^n - 1) / n`` (all licenses pairwise non-overlapping).
    """
    total = equations_without_grouping(n)
    return (1.0, total / n)
