"""Group formation: connected components of the overlap graph (Algorithm 3).

The paper identifies *disconnected groups* of redistribution licenses by
depth-first search over the overlap graph: each connected component is one
group, groups are discovered in ascending order of their smallest license
index, and the arrays ``Group`` (membership rows) and ``GroupSize`` record
the result.

Implementation note: the paper's ``Depth_first(i, k)`` subroutine scans
neighbors only for ``j > i`` ("for j=i+1 to N"), which misses components
reachable through a *lower-indexed* neighbor of an interior vertex (e.g.
edges {1-3, 2-3}: starting at 1 visits 3, but 3 never looks back at 2).
We implement the textbook DFS over all neighbors -- the result the paper's
figures clearly intend -- and cross-check against networkx's
``connected_components`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx

from repro.errors import GroupingError
from repro.core.overlap import OverlapGraph

__all__ = [
    "GroupStructure",
    "form_groups",
    "form_groups_networkx",
    "form_groups_paper_literal",
]


@dataclass(frozen=True)
class GroupStructure:
    """The outcome of Algorithm 3: a partition of licenses into groups.

    Attributes
    ----------
    groups:
        Tuple of frozensets of 1-based license indexes, ordered by each
        group's smallest member (the discovery order of Algorithm 3).
    n:
        Total number of licenses.
    """

    groups: Tuple[FrozenSet[int], ...]
    n: int

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.groups:
            if not group:
                raise GroupingError("groups must be non-empty")
            if group & seen:
                raise GroupingError(f"groups are not disjoint: {sorted(group & seen)}")
            seen |= group
        if seen != set(range(1, self.n + 1)):
            raise GroupingError(
                f"groups must partition 1..{self.n}, got {sorted(seen)}"
            )

    # -- paper-notation views -------------------------------------------
    @property
    def count(self) -> int:
        """Return ``g``, the number of groups."""
        return len(self.groups)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Return the paper's ``GroupSize`` array: ``N_k`` per group."""
        return tuple(len(group) for group in self.groups)

    def membership_matrix(self) -> List[List[int]]:
        """Return the paper's ``Group`` array: ``N`` rows of ``N`` 0/1
        entries; row ``k`` marks the members of group ``k+1`` (unused rows
        are all zeros, as in Algorithm 3)."""
        matrix = [[0] * self.n for _ in range(self.n)]
        for row, group in enumerate(self.groups):
            for index in group:
                matrix[row][index - 1] = 1
        return matrix

    def group_of(self, index: int) -> int:
        """Return the 0-based group id holding 1-based license ``index``."""
        for group_id, group in enumerate(self.groups):
            if index in group:
                return group_id
        raise GroupingError(f"license index {index} out of range 1..{self.n}")

    def group_lookup(self) -> Dict[int, int]:
        """Return a ``{license index: group id}`` dict for bulk lookups."""
        lookup: Dict[int, int] = {}
        for group_id, group in enumerate(self.groups):
            for index in group:
                lookup[index] = group_id
        return lookup

    def masks(self) -> Tuple[int, ...]:
        """Return each group as a bitmask over the global index space."""
        out = []
        for group in self.groups:
            mask = 0
            for index in group:
                mask |= 1 << (index - 1)
            out.append(mask)
        return tuple(out)

    def sorted_members(self, group_id: int) -> Tuple[int, ...]:
        """Return group members ascending (the local-index order used by
        Algorithm 5's ``position`` array)."""
        return tuple(sorted(self.groups[group_id]))


def form_groups(graph: OverlapGraph) -> GroupStructure:
    """Run Algorithm 3: DFS group formation over the overlap graph.

    Returns groups ordered by smallest member index, exactly as the
    paper's loop ``for i = 1..N: if Visited[i] = 0`` discovers them.
    """
    n = graph.n
    visited = [False] * (n + 1)  # 1-based
    groups: List[FrozenSet[int]] = []
    for start in range(1, n + 1):
        if visited[start]:
            continue
        # Iterative DFS (the paper recurses; large N would blow the stack).
        members = []
        stack = [start]
        visited[start] = True
        while stack:
            vertex = stack.pop()
            members.append(vertex)
            for neighbor in graph.neighbors(vertex):
                if not visited[neighbor]:
                    visited[neighbor] = True
                    stack.append(neighbor)
        groups.append(frozenset(members))
    return GroupStructure(tuple(groups), n)


def form_groups_paper_literal(graph: OverlapGraph) -> GroupStructure:
    """Algorithm 3 exactly as printed, including its forward-only scan.

    The paper's ``Depth_first(i, k)`` subroutine iterates ``for j = i+1 to
    N``, so a vertex never revisits *lower-indexed* neighbours.  On most
    graphs (in particular all of the paper's figures) this coincides with
    connected components, but on e.g. edges ``{1-3, 2-3}`` vertex 2 is
    only reachable from 1 through the higher-indexed 3, and the literal
    algorithm splits one component into two.

    Kept for scholarship: ``tests/core/test_grouping.py`` demonstrates the
    divergence, and :func:`form_groups` implements the intended semantics
    (cross-checked against networkx).

    Note: the result may violate the connected-component invariant, so it
    is returned as a raw tuple of frozensets, NOT a validated
    :class:`GroupStructure` substitute for the pipeline.
    """
    n = graph.n
    visited = [False] * (n + 1)
    groups: List[FrozenSet[int]] = []

    def depth_first(vertex: int, members: List[int]) -> None:
        members.append(vertex)
        visited[vertex] = True
        # The paper's scan starts at j = i+1: forward neighbours only.
        for neighbor in range(vertex + 1, n + 1):
            if graph.are_overlapping(vertex, neighbor) and not visited[neighbor]:
                depth_first(neighbor, members)

    for start in range(1, n + 1):
        if not visited[start]:
            members: List[int] = []
            depth_first(start, members)
            groups.append(frozenset(members))
    return GroupStructure(tuple(groups), n)


def form_groups_networkx(graph: OverlapGraph) -> GroupStructure:
    """Reference implementation via :func:`networkx.connected_components`.

    Must produce the same partition as :func:`form_groups`; kept as a
    cross-check and for users already holding a networkx graph.
    """
    components = nx.connected_components(graph.to_networkx())
    groups = sorted((frozenset(component) for component in components), key=min)
    return GroupStructure(tuple(groups), graph.n)
