"""The grouped validation structure: divided + remapped trees, ready to run.

This bundles the outputs of Algorithms 3-5 into one object:

* the :class:`~repro.core.grouping.GroupStructure` (who is in which group),
* one remapped :class:`~repro.validation.tree.ValidationTree` per group,
* the per-group aggregate arrays ``A_k``,

and runs the standard Algorithm 2 validator
(:class:`~repro.validation.tree_validator.TreeValidator`) on each tree,
translating per-group violations back into global license indexes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import GroupingError
from repro.core.division import divide_tree
from repro.core.gain import equations_with_grouping, gain_for_structure
from repro.core.grouping import GroupStructure
from repro.core.remap import (
    globalize_mask,
    remap_tree_inplace,
    remapped_aggregates,
)
from repro.validation.report import ValidationReport, Violation, make_report
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

__all__ = ["GroupedValidationTree"]


class GroupedValidationTree:
    """Per-group validation trees with their aggregate arrays.

    Build with :meth:`from_tree` (consumes the original tree, as the
    paper's division does) and run :meth:`validate`.
    """

    engine_name = "grouped-tree"

    def __init__(
        self,
        structure: GroupStructure,
        trees: Sequence[ValidationTree],
        group_aggregates: Sequence[Sequence[int]],
    ):
        if len(trees) != structure.count or len(group_aggregates) != structure.count:
            raise GroupingError(
                f"expected {structure.count} trees/aggregate arrays, got "
                f"{len(trees)}/{len(group_aggregates)}"
            )
        for group_id, (group, aggregates) in enumerate(
            zip(structure.groups, group_aggregates)
        ):
            if len(aggregates) != len(group):
                raise GroupingError(
                    f"group {group_id + 1}: {len(aggregates)} aggregates for "
                    f"{len(group)} licenses"
                )
        self._structure = structure
        self._trees = list(trees)
        self._aggregates = [list(aggregates) for aggregates in group_aggregates]

    @classmethod
    def from_tree(
        cls,
        tree: ValidationTree,
        aggregates: Sequence[int],
        structure: GroupStructure,
    ) -> "GroupedValidationTree":
        """Divide and remap an original validation tree (Algorithms 4 + 5).

        The input ``tree`` is consumed: its nodes are shared with (and
        mutated by) the produced per-group trees.
        """
        if structure.n != len(aggregates):
            raise GroupingError(
                f"structure covers {structure.n} licenses but "
                f"{len(aggregates)} aggregates were provided"
            )
        parts = divide_tree(tree, structure)
        group_aggregates: List[List[int]] = []
        for group_id, part in enumerate(parts):
            remap_tree_inplace(part, structure, group_id)
            group_aggregates.append(remapped_aggregates(aggregates, structure, group_id))
        return cls(structure, parts, group_aggregates)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def structure(self) -> GroupStructure:
        """Return the group structure behind the division."""
        return self._structure

    @property
    def trees(self) -> Tuple[ValidationTree, ...]:
        """Return the per-group trees (local index space)."""
        return tuple(self._trees)

    @property
    def group_aggregates(self) -> Tuple[Tuple[int, ...], ...]:
        """Return the per-group aggregate arrays ``A_k``."""
        return tuple(tuple(aggregates) for aggregates in self._aggregates)

    def node_count(self) -> int:
        """Return total stored nodes across all trees -- the storage metric
        of Figure 10 (only ``g`` extra root nodes vs. the original)."""
        return sum(tree.node_count() for tree in self._trees)

    @property
    def equations_required(self) -> int:
        """Return ``Σ_k (2^{N_k} - 1)``."""
        return equations_with_grouping(self._structure.sizes)

    @property
    def theoretical_gain(self) -> float:
        """Return the paper's Equation 3 gain for this structure."""
        return gain_for_structure(self._structure)

    def subset_sum(self, global_mask: int) -> int:
        """Return ``C⟨S⟩`` for a *global* mask through the divided trees.

        Theorem 2 in executable form: the LHS of any equation equals the
        sum of its per-group projections, so the divided structure can
        answer every global query the original tree could --
        ``C⟨S⟩ = Σ_k C⟨S ∩ G_k⟩`` with each term evaluated in its group's
        local index space.
        """
        total = 0
        for group_id, tree in enumerate(self._trees):
            members = self._structure.sorted_members(group_id)
            local_mask = 0
            for position, global_index in enumerate(members):
                if global_mask & (1 << (global_index - 1)):
                    local_mask |= 1 << position
            if local_mask:
                total += tree.subset_sum(local_mask)
        return total

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, stop_at_first: bool = False) -> ValidationReport:
        """Run Algorithm 2 on every per-group tree.

        Violations are translated back into **global** license indexes so
        the report is directly comparable with the ungrouped engines'.
        """
        violations: List[Violation] = []
        checked = 0
        for group_id, (tree, aggregates) in enumerate(
            zip(self._trees, self._aggregates)
        ):
            validator = TreeValidator(aggregates)
            report = validator.validate(tree, stop_at_first=stop_at_first)
            checked += report.equations_checked
            for violation in report.violations:
                global_mask = globalize_mask(
                    self._structure, group_id, violation.mask
                )
                violations.append(Violation(global_mask, violation.lhs, violation.rhs))
            if stop_at_first and violations:
                break
        return make_report(self.engine_name, checked, violations)
