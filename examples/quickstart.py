#!/usr/bin/env python
"""Quickstart: the paper's Example 1, end to end.

Builds the five redistribution licenses of Example 1, instance-matches the
two usage licenses, replays the Table 2 log, and runs the proposed grouped
validation -- reproducing the worked 3.1x gain.

Run:  python examples/quickstart.py
"""

from repro import GroupedValidator, LicenseFactory, LicensePool, ValidationLog
from repro.licenses.regions import WORLD
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.matching import IndexedMatcher


def main() -> None:
    # 1. Declare the constraint schema: a validity period and a region.
    schema = ConstraintSchema(
        [
            DimensionSpec.date("validity"),
            DimensionSpec.region("region", taxonomy=WORLD),
        ]
    )
    factory = LicenseFactory(schema, content_id="movie-42", permission="play")

    # 2. The distributor's five redistribution licenses (paper Example 1).
    pool = LicensePool(
        [
            factory.redistribution(
                "LD1", aggregate=2000,
                validity=("10/03/09", "20/03/09"), region=["asia", "europe"],
            ),
            factory.redistribution(
                "LD2", aggregate=1000,
                validity=("15/03/09", "25/03/09"), region=["asia"],
            ),
            factory.redistribution(
                "LD3", aggregate=3000,
                validity=("15/03/09", "30/03/09"), region=["america"],
            ),
            factory.redistribution(
                "LD4", aggregate=4000,
                validity=("15/03/09", "15/04/09"), region=["europe"],
            ),
            factory.redistribution(
                "LD5", aggregate=2000,
                validity=("25/03/09", "10/04/09"), region=["america"],
            ),
        ]
    )

    # 3. Instance-based validation: which licenses contain each usage?
    matcher = IndexedMatcher(pool)
    lu1 = factory.usage(
        "LU1", count=800, validity=("15/03/09", "19/03/09"), region=["india"]
    )
    lu2 = factory.usage(
        "LU2", count=400, validity=("21/03/09", "24/03/09"), region=["japan"]
    )
    print(f"LU1 instance-matches: {sorted(matcher.match(lu1))}   (paper: [1, 2])")
    print(f"LU2 instance-matches: {sorted(matcher.match(lu2))}   (paper: [2])")

    # 4. The offline issuance log (paper Table 2).
    log = ValidationLog()
    log.record_issuance(lu1, matcher.match(lu1))
    log.record_issuance(lu2, matcher.match(lu2))
    log.record({1, 2}, 40, "LU3")
    log.record({1, 2, 4}, 30, "LU4")
    log.record({3, 5}, 800, "LU5")
    log.record({5}, 20, "LU6")

    # 5. The paper's contribution: grouped validation.
    validator = GroupedValidator.from_pool(pool)
    print(f"\noverlap groups: {[sorted(g) for g in validator.structure.groups]}")
    print(
        f"equations: {validator.equations_baseline} -> "
        f"{validator.equations_required} "
        f"(theoretical gain {validator.theoretical_gain:.1f}x)"
    )
    report = validator.validate(log)
    print(report.summary())

    # 6. Headroom: how many more counts can still be issued against {2}?
    print(f"\nheadroom for a {{LD2}}-only license: {validator.headroom(log, {2})}")


if __name__ == "__main__":
    main()
