#!/usr/bin/env python
"""Scenario: how much revenue does naive online validation leave behind?

Section 2.1 of the paper shows that charging each issuance to a single
randomly chosen redistribution license can strand capacity.  This example
quantifies that at scale: the same stream of usage licenses is pushed
through five online policies and we compare how many permission counts each
one manages to accept before rejecting requests.

The equation-based policy is provably exact (it accepts a stream iff some
assignment of counts to licenses exists), so its acceptance total is the
ceiling the heuristics are measured against.

Run:  python examples/online_strategies.py
"""

from repro.analysis.tables import render_table
from repro.core.validator import GroupedValidator
from repro.online.session import IssuanceSession
from repro.online.strategies import (
    BestFit,
    FirstFit,
    GreedyMaxRemaining,
    LastFit,
    RandomPick,
)
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


def main() -> None:
    # Tight aggregates so capacity pressure actually bites.
    config = WorkloadConfig(
        n_licenses=8,
        seed=99,
        n_records=0,
        aggregate_range=(300, 900),
        target_groups=2,
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, 600))
    print(
        f"pool: {len(pool)} licenses, total capacity "
        f"{sum(pool.aggregate_array())}; stream: {len(stream)} usage licenses, "
        f"{sum(u.count for u in stream)} requested counts"
    )

    policies = [
        RandomPick(seed=1),
        LastFit(),
        FirstFit(),
        BestFit(),
        GreedyMaxRemaining(),
        "equation",
    ]
    rows = []
    results = {}
    for policy in policies:
        session = IssuanceSession(pool, policy)
        for usage in stream:
            session.issue(usage)
        accepted = sum(outcome.accepted for outcome in session.outcomes)
        results[session.policy_name] = session
        rows.append(
            [
                session.policy_name,
                accepted,
                len(stream) - accepted,
                session.accepted_counts,
            ]
        )

    exact = results["equation"].accepted_counts
    for row in rows:
        row.append(f"{100 * row[3] / exact:.1f}%")
    print()
    print(
        render_table(
            ["policy", "accepted", "rejected", "counts served", "vs exact"],
            rows,
            title="Online validation policies on the same issuance stream",
        )
    )

    # Every accepted log must still pass offline validation.
    validator = GroupedValidator.from_pool(pool)
    print()
    for name, session in results.items():
        report = validator.validate(session.log)
        print(f"offline re-validation of '{name}' log: "
              f"{'OK' if report.is_valid else 'VIOLATED'}")


if __name__ == "__main__":
    main()
