#!/usr/bin/env python
"""Scenario: auditing a large video platform's license logs offline.

A validation authority receives a season's worth of issuance logs for a
distributor holding 20 redistribution licenses.  The audit compares three
ways to answer "were the aggregate constraints respected?":

1. the original validation tree over all 2^20 - 1 equations ([10]),
2. the paper's grouped validation after geometric division,
3. the polynomial max-flow feasibility oracle (yes/no only).

It prints timings, the group structure, equation counts, and the Figure 10
storage comparison for this workload.

Run:  python examples/video_platform_audit.py
"""

from repro.analysis.storage import grouped_storage, tree_storage
from repro.analysis.tables import format_seconds
from repro.analysis.timing import time_callable
from repro.core.validator import GroupedValidator
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


def main() -> None:
    config = WorkloadConfig(n_licenses=20, seed=2024, n_records=4000)
    workload = WorkloadGenerator(config).generate()
    print(
        f"workload: {workload.n} redistribution licenses, "
        f"{len(workload.log)} issuances, "
        f"{workload.log.total_count} total counts"
    )

    validator = GroupedValidator.from_pool(workload.pool)
    structure = validator.structure
    print(f"groups: {structure.count} with sizes {list(structure.sizes)}")
    print(
        f"equations: {validator.equations_baseline:,} ungrouped -> "
        f"{validator.equations_required:,} grouped "
        f"(Eq. 3 gain {validator.theoretical_gain:,.0f}x)"
    )

    # 1. Baseline: all 2^20 - 1 equations on the original tree.
    tree = ValidationTree.from_log(workload.log)
    baseline = TreeValidator(workload.aggregates)
    baseline_time, baseline_report = time_callable(lambda: baseline.validate(tree))
    print(f"\n[baseline tree]  {format_seconds(baseline_time)}  "
          f"{baseline_report.summary()}")

    # 2. Proposed: divide + validate per group.
    division_time, grouped = time_callable(lambda: validator.build(workload.log))
    grouped_time, grouped_report = time_callable(grouped.validate)
    print(f"[grouped]        {format_seconds(grouped_time)} "
          f"(+ division {format_seconds(division_time)})  "
          f"{grouped_report.summary()}")
    print(f"experimental gain: {baseline_time / grouped_time:,.0f}x")

    # 3. Flow oracle (yes/no).
    oracle = FlowFeasibilityOracle(workload.aggregates)
    counts = workload.log.counts_by_mask()
    flow_time, feasible = time_callable(lambda: oracle.feasible(counts))
    print(f"[flow oracle]    {format_seconds(flow_time)}  feasible={feasible}")

    agreement = (
        baseline_report.is_valid == grouped_report.is_valid == feasible
    )
    print(f"\nall three methods agree: {agreement}")

    # Storage comparison (paper Figure 10).
    original_stats = tree_storage(ValidationTree.from_log(workload.log))
    divided_stats = grouped_storage(grouped)
    print(
        f"storage: original {original_stats.total_nodes} nodes "
        f"({original_stats.model_bytes} B) vs divided "
        f"{divided_stats.total_nodes} nodes ({divided_stats.model_bytes} B)"
    )


if __name__ == "__main__":
    main()
