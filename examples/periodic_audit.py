#!/usr/bin/env python
"""Scenario: a validation authority's periodic offline audit schedule.

The paper's offline model (Section 2.1): issuances are logged and
validated periodically, not one by one.  This example streams 600 usage
licenses against a capacity-tight pool, audits every 15 issuances, and
compares two authority implementations:

* **full** -- rebuild the grouped pipeline on every audit;
* **incremental** -- per-group trees with dirty tracking (Theorem 2 means
  an audit only needs to re-check groups that received records).

Both report the same verdicts; the incremental authority evaluates a
fraction of the equations.

Run:  python examples/periodic_audit.py
"""

from repro.analysis.tables import render_table
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.temporal import simulate_periodic_audits


def fresh_generator():
    return WorkloadGenerator(
        WorkloadConfig(
            n_licenses=10,
            seed=77,
            n_records=0,
            aggregate_range=(400, 1200),  # tight: the stream will overdraw
            target_groups=3,
        )
    )


def main() -> None:
    results = {}
    for mode in ("full", "incremental"):
        generator = fresh_generator()
        pool = generator.generate_pool()
        results[mode] = simulate_periodic_audits(
            generator, pool, n_issuances=600, audit_every=15, mode=mode,
            skew=3.0,  # popular licenses dominate: most groups stay clean
        )

    full, incremental = results["full"], results["incremental"]
    print(f"pool: 10 licenses in 3+ groups; stream: {full.total_records} issuances, "
          f"audits every 15\n")

    rows = []
    shown = 8
    for full_event, inc_event in zip(full.events[:shown], incremental.events[:shown]):
        rows.append(
            [
                full_event.after_records,
                "OK" if full_event.is_valid else "VIOLATED",
                full_event.equations_checked,
                inc_event.equations_checked,
            ]
        )
    print(
        render_table(
            ["records", "verdict", "full-pass equations", "incremental equations"],
            rows,
            title="Audit schedule (first 8 audits): full rebuild vs incremental",
        )
    )
    if len(full.events) > shown:
        print(f"... ({len(full.events) - shown} more audits)")
    print(
        f"\ntotal equations evaluated: full={full.total_equations}, "
        f"incremental={incremental.total_equations} "
        f"({full.total_equations / max(incremental.total_equations, 1):.1f}x fewer)"
    )
    violation_at = full.first_violation_at
    if violation_at is not None:
        print(f"first violation detected at record {violation_at} by both modes: "
              f"{violation_at == incremental.first_violation_at}")


if __name__ == "__main__":
    main()
