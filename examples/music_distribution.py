#!/usr/bin/env python
"""Scenario: a music distributor over-issues and gets caught offline.

A distributor acquires four redistribution licenses for an album's *play*
permission with three instance constraints (validity period, region,
device class).  It then issues a burst of usage licenses.  The offline
validation authority builds the validation tree from the logs, groups the
licenses geometrically, and runs the grouped validation -- which pinpoints
exactly which license *set* was overdrawn, something per-license
bookkeeping cannot do when issuances match several licenses at once.

Run:  python examples/music_distribution.py
"""

import random

from repro import GroupedValidator, LicenseFactory, LicensePool, ValidationLog
from repro.licenses.regions import WORLD
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.matching import IndexedMatcher
from repro.validation import FlowFeasibilityOracle


def build_pool(factory: LicenseFactory) -> LicensePool:
    """Four licenses: two overlapping Asian launches, one European, one
    world-wide premium window."""
    return LicensePool(
        [
            factory.redistribution(
                "asia-launch", aggregate=1200,
                validity=("01/06/09", "30/06/09"),
                region=["asia"], device=["phone", "tablet", "desktop"],
            ),
            factory.redistribution(
                "asia-extended", aggregate=800,
                validity=("15/06/09", "31/07/09"),
                region=["asia"], device=["phone", "tablet"],
            ),
            factory.redistribution(
                "europe-season", aggregate=1500,
                validity=("01/06/09", "31/08/09"),
                region=["europe"], device=["phone", "tablet", "desktop", "tv"],
            ),
            factory.redistribution(
                "world-premium", aggregate=500,
                validity=("01/07/09", "15/07/09"),
                region=["world"], device=["tv"],
            ),
        ]
    )


def issue_burst(factory, matcher, log, rng) -> int:
    """Issue 400 usage licenses; return how many were instance-valid."""
    regions = ["india", "japan", "china", "france", "germany", "uk"]
    devices = ["phone", "tablet", "desktop", "tv"]
    accepted = 0
    for serial in range(1, 401):
        start_day = rng.randint(1, 25)
        month = rng.choice([6, 7])
        usage = factory.usage(
            f"U{serial}",
            count=rng.randint(5, 25),
            validity=(f"{start_day:02d}/{month:02d}/09",
                      f"{min(start_day + rng.randint(0, 4), 28):02d}/{month:02d}/09"),
            region=[rng.choice(regions)],
            device=[rng.choice(devices)],
        )
        matched = matcher.match(usage)
        if matched:
            log.record_issuance(usage, matched)
            accepted += 1
    return accepted


def main() -> None:
    rng = random.Random(20090601)
    schema = ConstraintSchema(
        [
            DimensionSpec.date("validity"),
            DimensionSpec.region("region", taxonomy=WORLD),
            DimensionSpec.categorical("device"),
        ]
    )
    factory = LicenseFactory(schema, content_id="album-7", permission="play")
    pool = build_pool(factory)
    matcher = IndexedMatcher(pool)
    log = ValidationLog()

    accepted = issue_burst(factory, matcher, log, rng)
    print(f"issued {accepted} instance-valid usage licenses "
          f"({log.total_count} total play counts, {log.distinct_sets} distinct sets)")

    validator = GroupedValidator.from_pool(pool)
    print(f"overlap groups: {[sorted(g) for g in validator.structure.groups]}")
    print(f"equations to check: {validator.equations_required} "
          f"(ungrouped: {validator.equations_baseline})")

    report = validator.validate(log)
    print(report.summary())
    for violation in report.violations:
        names = ", ".join(pool[i].license_id for i in sorted(violation.license_set))
        print(f"  overdrawn set [{names}]: issued {violation.lhs}, "
              f"capacity {violation.rhs} (excess {violation.excess})")

    # Cross-check with the polynomial flow oracle.
    oracle = FlowFeasibilityOracle(pool.aggregate_array())
    feasible = oracle.feasible(log.counts_by_mask())
    print(f"flow-oracle agrees: {feasible == report.is_valid}")

    # Remediation: compute the minimal revocation and apply it.
    if not report.is_valid:
        from repro.validation.diagnosis import revocation_plan, select_revocations

        minimum, plan = revocation_plan(log.counts_by_mask(), pool.aggregate_array())
        ids, revoked = select_revocations(log, plan)
        repaired = log.without(ids)
        print(
            f"\nremediation: revoke {len(ids)} issued license(s) carrying "
            f"{revoked} counts (theoretical minimum {minimum} counts)"
        )
        print(f"after revocation: {validator.validate(repaired).summary()}")


if __name__ == "__main__":
    main()
