#!/usr/bin/env python
"""Scenario: a three-level distribution network with nested budgets.

The paper's Section 1 architecture: the owner grants redistribution
licenses to regional distributors, who generate narrower redistribution
licenses for local sub-distributors, who sell usage licenses to consumers.
Every generated license is validated at its generating node (instance
constraints nested, aggregates headroom-gated), so the offline audit at
the end finds no violations -- while a deliberately over-ambitious
sub-license gets rejected on the way.

Run:  python examples/supply_chain.py
"""

from repro.licenses.license import LicenseFactory
from repro.licenses.regions import WORLD
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.network import DistributionNetwork


def main() -> None:
    schema = ConstraintSchema(
        [
            DimensionSpec.date("validity"),
            DimensionSpec.region("region", taxonomy=WORLD),
        ]
    )
    factory = LicenseFactory(schema, content_id="series-9", permission="stream")

    network = DistributionNetwork()
    network.add_distributor("asia")
    network.add_distributor("europe")
    network.add_distributor("india-retail", parent="asia")
    network.add_distributor("japan-retail", parent="asia")

    # Owner grants (no validation; the owner licenses its own content).
    network.grant(
        "asia",
        factory.redistribution(
            "asia-2009", aggregate=5000,
            validity=("01/03/09", "30/06/09"), region=["asia"],
        ),
    )
    network.grant(
        "europe",
        factory.redistribution(
            "europe-2009", aggregate=3000,
            validity=("01/03/09", "30/06/09"), region=["europe"],
        ),
    )

    # Asia slices its budget for two retail sub-distributors.
    for name, region, budget in (
        ("india-q2", "india", 2500),
        ("japan-q2", "japan", 2000),
    ):
        sub = factory.redistribution(
            name, aggregate=budget,
            validity=("01/04/09", "30/06/09"), region=[region],
        )
        target = "india-retail" if region == "india" else "japan-retail"
        outcome = network.redistribute("asia", target, sub)
        print(f"asia -> {target}: {name} ({budget} counts) "
              f"{'accepted' if outcome.accepted else 'REJECTED'}")

    # A third slice would overdraw asia's 5000: 2500 + 2000 + 600 > 5000.
    greedy = factory.redistribution(
        "india-extra", aggregate=600,
        validity=("01/04/09", "30/06/09"), region=["india"],
    )
    outcome = network.redistribute("asia", "india-retail", greedy)
    print(f"asia -> india-retail: india-extra (600 counts) "
          f"{'accepted' if outcome.accepted else 'REJECTED'} "
          f"({outcome.rejection_reason})")

    # Retail nodes sell to consumers inside their windows.
    sold = 0
    for serial in range(1, 61):
        usage = factory.usage(
            f"c{serial}", count=50,
            validity=("10/04/09", "20/04/09"), region=["india"],
        )
        if network.sell("india-retail", usage).accepted:
            sold += 1
    print(f"india-retail sold {sold}/60 x 50 counts "
          f"(budget {2500} -> expected {2500 // 50} sales)")

    # An out-of-region sale is instance-rejected.
    stray = factory.usage(
        "stray", count=10, validity=("10/04/09", "20/04/09"), region=["france"],
    )
    outcome = network.sell("india-retail", stray)
    print(f"out-of-region sale: "
          f"{'accepted' if outcome.accepted else 'REJECTED'} "
          f"({outcome.rejection_reason})")

    # Offline audit across the whole network.
    print("\noffline audit (grouped validation at every node):")
    for name, report in network.audit_all().items():
        verdict = "no licenses" if report is None else report.summary()
        print(f"  {name:13s} {verdict}")


if __name__ == "__main__":
    main()
