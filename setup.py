"""Legacy setup shim (offline environment lacks the `wheel` package, so the
PEP 517/660 editable path is unavailable; `pip install -e .` uses this)."""

from setuptools import setup

setup()
